"""Hybrid hash join -- Section 3.7, the paper's new algorithm.

Hybrid hash is GRACE with the leftover memory put to work: memory holds the
``B`` output buffers *plus* a live hash table for bucket R0 covering the
fraction ``q = (|M| - B) / (|R|*F)`` of R.  R0 tuples never touch disk, and
S0 tuples probe the resident table during partitioning.  Only the ``1-q``
spilled remainder pays IO and a second hashing pass, so the algorithm
interpolates smoothly between GRACE (``q -> 0``) and the one-pass simple
hash (``q = 1``), dominating both across Figure 1.

The partitioning function splits the hash-value space *unevenly*: a ``q``
share to the resident class, the rest evenly over the B spill buckets --
the Section 3.3 construction of a partition compatible with ``h`` (see
:func:`repro.join.partition.hybrid_class`).

Skew handling is two-tiered.  The backstop is Section 3.3's remedy: "if we
err slightly we can always apply the hybrid hash join recursively, thereby
adding an extra pass for the overflow tuples" -- an oversized bucket pair
found in phase 2 is re-joined recursively with a depth-salted hash.  On
top of that sits the **adaptive re-split** (``adaptive=True``, following
the dynamic-hybrid-hash literature): phase 1a counts each spill bucket's
build tuples, and a bucket whose hash table would overflow the grant is
re-split into sub-buckets *before S is partitioned* -- R's hot bucket is
read back and re-hashed once (the same work static recursion pays later),
but S's hot tuples are routed straight to the sub-buckets at one extra
hash each, instead of being written to the fat bucket, read back, re-hashed
and re-written by the recursion.  The memory split is adjusted mid-join
under the Governor grant machinery: the sub-bucket output buffers are
charged against the live grant, and a constrained grant vetoes the
re-split (the bucket falls back to static recursion).  The re-split
decision point is a chaos seam: an injected ``abort`` fails it before any
IO, an injected ``midway`` fault kills it after partially writing the R
sub-files (recovery restores the single bucket file); both degrade to the
static path with identical output rows.

Under the governor the memory grant is **live**: a mid-query revocation
(:meth:`repro.governor.grant.MemoryGrant.revoke`) can shrink the budget the
level was planned against.  The join reacts at the next page boundary by
**demoting** the resident partition R0 to an *overflow spill pair* --
dumping the live hash table to disk and routing all later class-0 tuples to
the pair -- which degrades the level toward pure GRACE (``q`` effectively
0) at the honest cost of the extra moves and IO.  Demotion is correct at
any boundary: the resident table only ever grows during phase 1a, so every
S0 tuple probed before the demotion saw *all* R0 tuples it could match
(phase 1a completed first), and every S0 tuple after it goes to the
overflow pair, where phase 2 joins it against the complete dumped R0.  The
overflow pair is processed exactly like a spill bucket, including the
recursion check against the *shrunken* capacity -- the degradation ladder
of docs/ROBUSTNESS.md.

Execution comes in four flavours with identical results and counters: the
historical tuple-at-a-time loops (``batch=False``), the row-view
page-at-a-time path (``batch=True, columnar=False``), the columnar batch
path (default; the resident table stores row indices into a
:class:`~repro.join.vectorized.ColumnStore` and matches are group-gathered
buffer-to-buffer), and the batch path with a worker pool (``workers > 1``)
where the coordinator keeps all disk IO in serial order and workers handle
classification and bucket build/probe (see :mod:`repro.join.parallel`).
Recursive overflow buckets are always joined serially in the coordinator,
at their in-order sequence point.  Worker failures in phase 2 are absorbed
by :meth:`~repro.join.base.JoinAlgorithm.run_bucket_jobs` (serial retry,
identical rows and counters).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.access.hash_index import HashIndex
from repro.join.base import JoinAlgorithm, JoinSpec
from repro.join.parallel import (
    hybrid_class_chunk_task,
    join_bucket,
    make_pool,
    precomputed_classifier,
)
from repro.join.partition import (
    SpillWriter,
    hybrid_class,
    partition_fan_out,
    read_bucket,
    resplit_class,
)
from repro.join.vectorized import (
    ColumnStore,
    insert_page,
    join_bucket_columnar,
    probe_page,
)
from repro.operators.columnar import gather_columns
from repro.storage.relation import Relation, Row


class _Resplit:
    """Routing state for one adaptively re-split spill bucket."""

    __slots__ = ("sub_buckets", "r_files", "s_writer")

    def __init__(
        self, sub_buckets: int, r_files: List[str], s_writer: SpillWriter
    ) -> None:
        self.sub_buckets = sub_buckets
        self.r_files = r_files
        self.s_writer = s_writer


class HybridHashJoin(JoinAlgorithm):
    """Partitioned hash join with a memory-resident first bucket."""

    name = "hybrid-hash"

    #: Recursion backstop: 2 levels handle |R| up to ~|M|^3 / F pages;
    #: deeper than 8 means the partitioning hash has failed entirely.
    MAX_RECURSION = 8

    #: Runtime-adaptive re-split of skew-hot spill buckets between phases
    #: 1a and 1b (the E24 ablation flips this off for the static baseline).
    adaptive = True

    #: Tallies of the adaptive path, reset at the start of each execution:
    #: buckets re-split, re-splits vetoed by the memory grant, re-splits
    #: killed by an injected chaos fault.
    resplits = 0
    resplit_denied = 0
    resplit_aborts = 0

    def _classify(
        self, key: Any, q: float, buckets: int, depth: int = 0
    ) -> int:
        """Class of ``key``: 0 = resident, 1..B = spill buckets."""
        return hybrid_class(key, q, buckets, depth)

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        self.resplits = 0
        self.resplit_denied = 0
        self.resplit_aborts = 0
        if not self.batch:
            self._execute_level(spec, output, depth=0)
            return
        pool = make_pool(self.pool_workers())
        try:
            self._execute_level_batch(spec, output, depth=0, pool=pool)
        finally:
            self.finish_pool(pool)

    # -- grant-aware degradation -------------------------------------------------

    def _bucket_capacity(self, spec: JoinSpec) -> int:
        """Tuples a phase-2 hash table may hold under the *current* grant."""
        if self.guard is None or self.guard.grant is None:
            return spec.memory_tuples(spec.r.tuples_per_page)
        pages = self.guard.effective_pages(spec.memory_pages)
        return max(1, int(pages * spec.r.tuples_per_page / spec.params.fudge))

    def _degrade_now(
        self, memory: int, buckets: int, resident: HashIndex, spec: JoinSpec
    ) -> bool:
        """Whether a revoked grant can no longer hold R0's live table.

        Checked at page boundaries during phase 1.  The happy path (no
        revocation: the grant still covers the planned budget) is two
        attribute loads and a compare; only a constrained grant pays for
        the live footprint computation (table pages plus B output
        buffers -- the Section 3.7 memory layout), which also feeds the
        grant's high-water accounting.
        """
        guard = self.guard
        if guard is None or guard.grant is None:
            return False
        grant = guard.grant
        if grant.pages >= memory:
            return False
        used = spec.table_pages(len(resident), spec.r.tuples_per_page) + buckets
        grant.charge(used)
        return grant.over_budget(used)

    def _demote_resident(
        self,
        resident: HashIndex,
        spec: JoinSpec,
        depth: int,
        store: Optional[ColumnStore] = None,
    ) -> Tuple[SpillWriter, SpillWriter]:
        """Dump the live R0 table to a fresh overflow spill pair.

        Charges one move per dumped tuple plus the flush IO -- the honest
        price of giving the memory back.  The caller replaces ``resident``
        with an empty table and routes all later class-0 tuples to the
        returned writers; phase 2 then joins the pair like any spilled
        bucket.  In columnar mode the table stores row indices, so the
        dumped rows are fetched from ``store`` (same order, same charges).
        """
        base = self.scratch_name(spec, "ovf")
        ovf_r = SpillWriter(
            self.disk,
            ["%s.d%d.r" % (base, depth)],
            spec.r.tuples_per_page,
            self.counters,
        )
        ovf_s = SpillWriter(
            self.disk,
            ["%s.d%d.s" % (base, depth)],
            spec.s.tuples_per_page,
            self.counters,
        )
        for _, value in resident.items():
            ovf_r.write(0, store.row(value) if store is not None else value)
        return ovf_r, ovf_s

    # -- adaptive re-split --------------------------------------------------------

    def _plan_resplit(
        self,
        spec: JoinSpec,
        depth: int,
        count: int,
        key_load: Dict[Any, int],
        capacity: int,
    ) -> Optional[int]:
        """Sub-bucket fan-out for one hot bucket, or None to leave it alone.

        Two deterministic checks, both uncharged bookkeeping over the
        phase-1a counts: the salted re-hash must actually separate the
        bucket's keys into sub-buckets that fit the phase-2 capacity (a
        bucket dominated by one fat key is indivisible -- routing it
        would reshuffle the same overflow and then recurse anyway), and
        the IO forecast must favour routing over static recursion.
        """
        if count <= capacity or len(key_load) < 2:
            return None
        base = max(2, math.ceil(count / capacity))
        for k in (base, base + 1, 2 * base):
            loads = [0] * k
            for key, load in key_load.items():
                loads[resplit_class(key, k, depth)] += load
            if max(loads) <= capacity:
                return k if self._resplit_pays(spec, count, capacity) else None
        return None

    def _resplit_pays(self, spec: JoinSpec, count: int, capacity: int) -> bool:
        """Forecast: does routing beat static phase-2 recursion here?

        A static recursion on the fat pair is itself hybrid: it keeps
        ``q = capacity/count`` of the bucket resident and pays the spill
        round trip only on the rest.  The re-split instead re-reads and
        re-writes the whole R bucket now, double-moves the fraction a
        recursion would have kept resident, and charges every routed S
        tuple a second hash.  This mirrors the ``resplit`` term of
        :func:`repro.cost.join_model.hash_pipeline_forecast`; S's bucket
        share is forecast from the workload-wide S:R tuple ratio (phase
        1b has not run yet, so it cannot be measured).
        """
        p = spec.params
        q = capacity / count
        est_s = count * p.s_tuples / max(1, p.r_tuples)
        r_pages = count / max(1, spec.r.tuples_per_page)
        s_pages = est_s / max(1, spec.s.tuples_per_page)
        saved = (1.0 - q) * (est_s * p.move + 2.0 * s_pages * p.io_seq)
        extra = q * (est_s * p.hash + count * p.move)
        extra += 2.0 * q * r_pages * p.io_seq
        return saved > extra

    def _resplit_hot_buckets(
        self,
        spec: JoinSpec,
        r_files: List[str],
        depth: int,
        counts: List[int],
        key_counts: List[Dict[Any, int]],
    ) -> Dict[int, _Resplit]:
        """Re-split skew-hot spill buckets between phases 1a and 1b.

        A bucket whose build side exceeds the phase-2 hash-table capacity
        -- and whose per-key load forecast says splitting pays (see
        :meth:`_plan_resplit`) -- is read back, re-hashed with an
        independently salted function, and written out as sub-bucket
        files; phase 1b then routes its S tuples straight to the
        sub-buckets.  Decisions are driven purely by the phase-1a counts,
        so they are identical across the tuple / row-view / columnar /
        parallel modes.  Charges: the bucket re-read (IO), one hash per
        re-hashed R tuple, one move per tuple into the sub-bucket buffers
        plus flush IO -- paid now to save S's fat-bucket round trip.
        """
        resplit: Dict[int, _Resplit] = {}
        if not self.adaptive or depth >= self.MAX_RECURSION:
            return resplit
        capacity = self._bucket_capacity(spec)
        budget = self.effective_memory_pages(spec.memory_pages)
        guard = self.guard
        r_key = spec.r_key
        r_tpp = spec.r.tuples_per_page
        for b, r_file in enumerate(r_files):
            sub_buckets = self._plan_resplit(
                spec, depth, counts[b], key_counts[b], capacity
            )
            if sub_buckets is None:
                continue
            # Mid-join memory-split adjustment: the sub-bucket output
            # buffers must fit the *effective* budget alongside the B
            # buffers already open.  An unrevoked grant sees the planned
            # budget, so guarded and unguarded runs decide identically;
            # only a revoked grant vetoes the re-split, and the bucket
            # falls back to static phase-2 recursion.
            used = len(r_files) + sub_buckets
            if guard is not None and guard.grant is not None:
                guard.grant.charge(used)
            if used > budget:
                self.resplit_denied += 1
                continue
            fault = guard.resplit_fault() if guard is not None else None
            if fault == "abort":
                # Chaos: the decision point fails before any IO; the
                # bucket stays intact for the static path.
                self.resplit_aborts += 1
                continue
            rows = read_bucket(self.disk, r_file)
            self.disk.delete(r_file)
            sub_names = ["%s.sub%d" % (r_file, i) for i in range(sub_buckets)]
            self.counters.hash_key(len(rows))
            # The whole bucket is in memory, so group rows by sub-bucket
            # and rewrite each sub-file with a dedicated single-bucket
            # writer: every flush is a full consecutive run and stays
            # *sequential* -- matching the B == 1 flush discount a static
            # recursion would enjoy, instead of paying random IO.
            groups: List[List[Row]] = [[] for _ in range(sub_buckets)]
            for row in rows:
                groups[resplit_class(r_key(row), sub_buckets, depth)].append(
                    row
                )
            if fault == "midway":
                # Chaos: the re-split dies after partially writing the R
                # sub-files.  Recovery deletes the partial subs, rewrites
                # the bucket as one file, and falls back to static.
                half = len(rows) // 2
                written = 0
                for name, group in zip(sub_names, groups):
                    take = min(len(group), half - written)
                    if take <= 0:
                        break
                    writer = SpillWriter(
                        self.disk, [name], r_tpp, self.counters
                    )
                    try:
                        writer.write_many(0, group[:take])
                    finally:
                        writer.close()
                    written += take
                for name in sub_names:
                    self.disk.delete(name)
                redo = SpillWriter(self.disk, [r_file], r_tpp, self.counters)
                try:
                    redo.write_many(0, rows)
                finally:
                    redo.close()
                self.resplit_aborts += 1
                continue
            sub_files: List[str] = []
            for name, group in zip(sub_names, groups):
                writer = SpillWriter(self.disk, [name], r_tpp, self.counters)
                try:
                    writer.write_many(0, group)
                finally:
                    closed = writer.close()
                sub_files.extend(closed)
            s_names = [
                "%s.d%d.%d.sub%d" % (self.scratch_name(spec, "s"), depth, b, i)
                for i in range(sub_buckets)
            ]
            resplit[b] = _Resplit(
                sub_buckets,
                sub_files,
                SpillWriter(
                    self.disk, s_names, spec.s.tuples_per_page, self.counters
                ),
            )
            self.resplits += 1
        return resplit

    def _assemble_pairs(
        self,
        r_files: List[str],
        s_files: List[str],
        resplit: Dict[int, _Resplit],
        demoted: bool,
        ovf_r: Optional[SpillWriter],
        ovf_s: Optional[SpillWriter],
    ) -> List[Tuple[str, str]]:
        """The phase-2 bucket pair list, with re-split buckets expanded."""
        pairs: List[Tuple[str, str]] = []
        for b in range(len(r_files)):
            plan = resplit.get(b)
            if plan is None:
                pairs.append((r_files[b], s_files[b]))
            else:
                # The bucket's own S file stayed empty (its rows were
                # routed straight to the sub-buckets in phase 1b).
                self.disk.delete(s_files[b])
                pairs.extend(zip(plan.r_files, plan.s_writer.close()))
        if demoted:
            pairs.extend(zip(ovf_r.close(), ovf_s.close()))
        return pairs

    # -- tuple-at-a-time path ----------------------------------------------------

    def _execute_level(
        self, spec: JoinSpec, output: Relation, depth: int
    ) -> None:
        params = spec.params
        memory = self.effective_memory_pages(spec.memory_pages)
        buckets, q = partition_fan_out(
            spec.r.page_count, memory, params.fudge
        )
        r_key, s_key = spec.r_key, spec.s_key

        resident = HashIndex(self.counters, max_load=params.fudge)
        demoted = False
        ovf_r: Optional[SpillWriter] = None
        ovf_s: Optional[SpillWriter] = None

        track = self.adaptive and buckets > 0 and depth < self.MAX_RECURSION
        counts = [0] * buckets
        key_counts: List[Dict[Any, int]] = [{} for _ in range(buckets)]

        # ---- Phase 1a: partition R, building R0's table on the fly. ----
        r_writer = None
        if buckets > 0:
            r_names = [
                "%s.d%d.%d" % (self.scratch_name(spec, "r"), depth, i)
                for i in range(buckets)
            ]
            r_writer = SpillWriter(
                self.disk, r_names, spec.r.tuples_per_page, self.counters
            )
        r_tpp = max(1, spec.r.tuples_per_page)
        for i, row in enumerate(spec.r):
            if i % r_tpp == 0:
                self.checkpoint()
                if not demoted and self._degrade_now(
                    memory, buckets, resident, spec
                ):
                    ovf_r, ovf_s = self._demote_resident(resident, spec, depth)
                    resident = HashIndex(self.counters, max_load=params.fudge)
                    demoted = True
            k = r_key(row)
            cls = self._classify(k, q, buckets, depth)
            if cls == 0:
                if demoted:
                    self.counters.hash_key()
                    ovf_r.write(0, row)
                else:
                    # insert() charges the hash and the move into the table.
                    resident.insert(k, row)
            else:
                self.counters.hash_key()
                r_writer.write(cls - 1, row)
                if track:
                    b = cls - 1
                    counts[b] += 1
                    kc = key_counts[b]
                    kc[k] = kc.get(k, 0) + 1

        r_files = r_writer.close() if r_writer is not None else []
        resplit = (
            self._resplit_hot_buckets(spec, r_files, depth, counts, key_counts)
            if track
            else {}
        )

        # ---- Phase 1b: partition S, probing R0 on the fly. ----
        s_writer = None
        if buckets > 0:
            s_names = [
                "%s.d%d.%d" % (self.scratch_name(spec, "s"), depth, i)
                for i in range(buckets)
            ]
            s_writer = SpillWriter(
                self.disk, s_names, spec.s.tuples_per_page, self.counters
            )
        s_tpp = max(1, spec.s.tuples_per_page)
        for i, row in enumerate(spec.s):
            if i % s_tpp == 0:
                self.checkpoint()
                if not demoted and self._degrade_now(
                    memory, buckets, resident, spec
                ):
                    ovf_r, ovf_s = self._demote_resident(resident, spec, depth)
                    resident = HashIndex(self.counters, max_load=params.fudge)
                    demoted = True
            k = s_key(row)
            cls = self._classify(k, q, buckets, depth)
            if cls == 0:
                if demoted:
                    self.counters.hash_key()
                    ovf_s.write(0, row)
                else:
                    for r_row in resident.probe(k):
                        self.emit(output, r_row, row)
            else:
                plan = resplit.get(cls - 1) if resplit else None
                if plan is None:
                    self.counters.hash_key()
                    s_writer.write(cls - 1, row)
                else:
                    # One class hash plus one sub-bucket hash: the hot
                    # tuple goes straight to its sub-bucket, skipping the
                    # fat bucket's write/read/re-hash/re-write round trip.
                    self.counters.hash_key(2)
                    plan.s_writer.write(
                        resplit_class(k, plan.sub_buckets, depth), row
                    )

        s_files = s_writer.close() if s_writer is not None else []
        pairs = self._assemble_pairs(
            r_files, s_files, resplit, demoted, ovf_r, ovf_s
        )
        if not pairs:
            return

        # ---- Phase 2: join the spilled bucket pairs. ----
        bucket_capacity = self._bucket_capacity(spec)
        for r_file, s_file in pairs:
            self.checkpoint()
            r_rows = read_bucket(self.disk, r_file)
            s_rows = read_bucket(self.disk, s_file)
            self.disk.delete(r_file)
            self.disk.delete(s_file)

            if len(r_rows) > bucket_capacity and depth < self.MAX_RECURSION:
                # Section 3.3's overflow remedy: recurse on this bucket
                # pair with a fresh (depth-salted) partitioning -- but only
                # when partitioning can actually split it.  A bucket
                # dominated by one key is indivisible; repartitioning it
                # just rewrites the same rows, so it is processed directly
                # (the hash table runs over its budget, the honest cost of
                # an unsplittable hot key).
                if len({r_key(row) for row in r_rows}) > 1:
                    self._recurse_on_bucket(spec, output, r_rows, s_rows, depth)
                    continue

            table = HashIndex(self.counters, max_load=params.fudge)
            for row in r_rows:
                table.insert(r_key(row), row)
            for row in s_rows:
                for r_row in table.probe(s_key(row)):
                    self.emit(output, r_row, row)

    # -- batch path (optionally parallel) ----------------------------------------

    def _execute_level_batch(
        self,
        spec: JoinSpec,
        output: Relation,
        depth: int,
        pool: Optional[Any],
    ) -> None:
        params = spec.params
        memory = self.effective_memory_pages(spec.memory_pages)
        buckets, q = partition_fan_out(
            spec.r.page_count, memory, params.fudge
        )
        r_key, s_key = spec.r_key, spec.s_key
        r_ki, s_ki = spec.r_key_index, spec.s_key_index

        resident = HashIndex(self.counters, max_load=params.fudge)
        demoted = False
        ovf_r: Optional[SpillWriter] = None
        ovf_s: Optional[SpillWriter] = None
        use_columnar = self.columnar
        store: Optional[ColumnStore] = (
            ColumnStore(spec.r) if use_columnar else None
        )

        track = self.adaptive and buckets > 0 and depth < self.MAX_RECURSION
        counts = [0] * buckets
        key_counts: List[Dict[Any, int]] = [{} for _ in range(buckets)]

        classify_r: Optional[Callable[[Sequence[Any]], List[int]]] = None
        classify_s: Optional[Callable[[Sequence[Any]], List[int]]] = None
        if pool is not None and buckets > 0:
            # Worker keys come straight off the packed join-key columns.
            classify_r = precomputed_classifier(
                pool,
                [
                    list(page.column(r_ki))
                    for page in spec.r.pages
                    if len(page)
                ],
                hybrid_class_chunk_task,
                (q, buckets, depth),
            )
            classify_s = precomputed_classifier(
                pool,
                [
                    list(page.column(s_ki))
                    for page in spec.s.pages
                    if len(page)
                ],
                hybrid_class_chunk_task,
                (q, buckets, depth),
            )

        # ---- Phase 1a: partition R, building R0's table page by page. ----
        r_writer = None
        if buckets > 0:
            r_names = [
                "%s.d%d.%d" % (self.scratch_name(spec, "r"), depth, i)
                for i in range(buckets)
            ]
            r_writer = SpillWriter(
                self.disk, r_names, spec.r.tuples_per_page, self.counters
            )
        for page in spec.r.pages:
            self.checkpoint()
            if not demoted and self._degrade_now(memory, buckets, resident, spec):
                ovf_r, ovf_s = self._demote_resident(
                    resident, spec, depth, store
                )
                resident = HashIndex(self.counters, max_load=params.fudge)
                demoted = True
            n = len(page)
            if not n:
                continue
            keys = page.column(r_ki)
            if buckets == 0:
                # Everything is resident (q == 1): no classification and
                # no spill; the columnar arm indexes the key column and
                # stages the page's buffers without touching a row tuple.
                if demoted:
                    self.counters.hash_key(n)
                    ovf_r.write_many(0, page.tuples)
                elif use_columnar:
                    insert_page(resident, store, keys, page)
                else:
                    resident.insert_batch(list(zip(keys, page.tuples)))
                continue
            classes = (
                classify_r(keys)
                if classify_r is not None
                else [hybrid_class(k, q, buckets, depth) for k in keys]
            )
            pending: List[List[Row]] = [[] for _ in range(buckets)]
            spilled = 0
            if use_columnar and not demoted:
                rows: Optional[List[Row]] = None
                res_keys: List[Any] = []
                res_pos: List[int] = []
                for i, (k, cls) in enumerate(zip(keys, classes)):
                    if cls == 0:
                        res_keys.append(k)
                        res_pos.append(i)
                    else:
                        if rows is None:
                            rows = page.tuples
                        b = cls - 1
                        pending[b].append(rows[i])
                        spilled += 1
                        if track:
                            counts[b] += 1
                            kc = key_counts[b]
                            kc[k] = kc.get(k, 0) + 1
                if res_pos:
                    base = len(store)
                    resident.insert_batch(
                        zip(res_keys, range(base, base + len(res_pos)))
                    )
                    store.add_columns(
                        gather_columns(page.columns, res_pos), len(res_pos)
                    )
            else:
                page_rows = page.tuples
                to_insert: List[Tuple[Any, Row]] = []
                for k, row, cls in zip(keys, page_rows, classes):
                    if cls == 0:
                        to_insert.append((k, row))
                    else:
                        b = cls - 1
                        pending[b].append(row)
                        spilled += 1
                        if track:
                            counts[b] += 1
                            kc = key_counts[b]
                            kc[k] = kc.get(k, 0) + 1
                if demoted:
                    if to_insert:
                        self.counters.hash_key(len(to_insert))
                        ovf_r.write_many(0, [row for _, row in to_insert])
                else:
                    resident.insert_batch(to_insert)
            if spilled:
                self.counters.hash_key(spilled)
                for b, bucket_rows in enumerate(pending):
                    r_writer.write_many(b, bucket_rows)

        r_files = r_writer.close() if r_writer is not None else []
        resplit = (
            self._resplit_hot_buckets(spec, r_files, depth, counts, key_counts)
            if track
            else {}
        )

        # ---- Phase 1b: partition S, probing R0 page by page. ----
        s_writer = None
        if buckets > 0:
            s_names = [
                "%s.d%d.%d" % (self.scratch_name(spec, "s"), depth, i)
                for i in range(buckets)
            ]
            s_writer = SpillWriter(
                self.disk, s_names, spec.s.tuples_per_page, self.counters
            )
        for page in spec.s.pages:
            self.checkpoint()
            if not demoted and self._degrade_now(memory, buckets, resident, spec):
                ovf_r, ovf_s = self._demote_resident(
                    resident, spec, depth, store
                )
                resident = HashIndex(self.counters, max_load=params.fudge)
                demoted = True
            n = len(page)
            if not n:
                continue
            keys = page.column(s_ki)
            if buckets == 0:
                if demoted:
                    self.counters.hash_key(n)
                    ovf_s.write_many(0, page.tuples)
                elif use_columnar:
                    probe_page(resident, store, output, keys, page)
                else:
                    matched: List[Row] = []
                    for chain, s_row in zip(
                        resident.probe_batch(keys), page.tuples
                    ):
                        if chain:
                            matched.extend(r_row + s_row for r_row in chain)
                    output.extend_rows(matched)
                continue
            classes = (
                classify_s(keys)
                if classify_s is not None
                else [hybrid_class(k, q, buckets, depth) for k in keys]
            )
            pending = [[] for _ in range(buckets)]
            spilled = 0
            routed = 0
            sub_pending: Optional[Dict[int, List[List[Row]]]] = (
                {
                    b: [[] for _ in range(plan.sub_buckets)]
                    for b, plan in resplit.items()
                }
                if resplit
                else None
            )
            if use_columnar and not demoted:
                rows = None
                probe_keys: List[Any] = []
                probe_pos: List[int] = []
                for i, (k, cls) in enumerate(zip(keys, classes)):
                    if cls == 0:
                        probe_keys.append(k)
                        probe_pos.append(i)
                    else:
                        if rows is None:
                            rows = page.tuples
                        b = cls - 1
                        plan = resplit.get(b) if resplit else None
                        if plan is None:
                            pending[b].append(rows[i])
                            spilled += 1
                        else:
                            sub_pending[b][
                                resplit_class(k, plan.sub_buckets, depth)
                            ].append(rows[i])
                            routed += 1
                if probe_pos:
                    probe_page(
                        resident, store, output, probe_keys, page, probe_pos
                    )
            else:
                page_rows = page.tuples
                probe_keys = []
                probe_rows: List[Row] = []
                for k, row, cls in zip(keys, page_rows, classes):
                    if cls == 0:
                        probe_keys.append(k)
                        probe_rows.append(row)
                    else:
                        b = cls - 1
                        plan = resplit.get(b) if resplit else None
                        if plan is None:
                            pending[b].append(row)
                            spilled += 1
                        else:
                            sub_pending[b][
                                resplit_class(k, plan.sub_buckets, depth)
                            ].append(row)
                            routed += 1
                if demoted:
                    if probe_rows:
                        self.counters.hash_key(len(probe_rows))
                        ovf_s.write_many(0, probe_rows)
                else:
                    matched = []
                    for chain, s_row in zip(
                        resident.probe_batch(probe_keys), probe_rows
                    ):
                        if chain:
                            matched.extend(r_row + s_row for r_row in chain)
                    output.extend_rows(matched)
            if spilled or routed:
                # One class hash per spilled tuple; routed (re-split)
                # tuples pay one extra sub-bucket hash each.
                self.counters.hash_key(spilled + 2 * routed)
                for b, bucket_rows in enumerate(pending):
                    s_writer.write_many(b, bucket_rows)
                if sub_pending is not None:
                    for b in sorted(sub_pending):
                        plan = resplit[b]
                        for sub, sub_rows in enumerate(sub_pending[b]):
                            plan.s_writer.write_many(sub, sub_rows)

        s_files = s_writer.close() if s_writer is not None else []
        pairs = self._assemble_pairs(
            r_files, s_files, resplit, demoted, ovf_r, ovf_s
        )
        if not pairs:
            return

        # ---- Phase 2: join the spilled bucket pairs. ----
        # The coordinator reads and deletes every bucket in serial order;
        # recursion runs inline (it performs IO at its sequence point),
        # while plain bucket pairs either join serially or go to the pool.
        bucket_capacity = self._bucket_capacity(spec)
        r_index = spec.r.schema.index_of(spec.r_field)
        s_index = spec.s.schema.index_of(spec.s_field)
        fudge = params.fudge

        entries: List[Tuple[str, Any]] = []
        for r_file, s_file in pairs:
            self.checkpoint()
            r_rows = read_bucket(self.disk, r_file)
            s_rows = read_bucket(self.disk, s_file)
            self.disk.delete(r_file)
            self.disk.delete(s_file)

            if (
                len(r_rows) > bucket_capacity
                and depth < self.MAX_RECURSION
                and len({r_key(row) for row in r_rows}) > 1
            ):
                if pool is None:
                    self._recurse_on_bucket(
                        spec, output, r_rows, s_rows, depth, batch=True
                    )
                else:
                    # Recurse now (its IO belongs here) but emit into a
                    # side relation so bucket-ordered assembly holds.
                    side = Relation(
                        "%s~side%d" % (output.name, len(entries)),
                        output.schema,
                        output.page_bytes,
                    )
                    self._recurse_on_bucket(
                        spec, side, r_rows, s_rows, depth, batch=True
                    )
                    entries.append(("rel", side))
                continue

            if pool is None:
                if use_columnar:
                    join_bucket_columnar(
                        r_rows,
                        s_rows,
                        r_index,
                        s_index,
                        fudge,
                        self.counters,
                        output,
                    )
                else:
                    output.extend_rows(
                        join_bucket(
                            r_rows, s_rows, r_index, s_index, fudge, self.counters
                        )
                    )
            else:
                entries.append(("job", (r_rows, s_rows, r_index, s_index, fudge)))

        if pool is not None:
            results = iter(
                self.run_bucket_jobs(
                    pool,
                    [payload for kind, payload in entries if kind == "job"],
                )
            )
            for kind, payload in entries:
                if kind == "rel":
                    for page in payload.pages:
                        output.extend_rows(page.tuples)
                else:
                    rows, worker_counters = next(results)
                    self.counters.absorb(worker_counters)
                    output.extend_rows(rows)

    def _recurse_on_bucket(
        self,
        spec: JoinSpec,
        output: Relation,
        r_rows: List[Row],
        s_rows: List[Row],
        depth: int,
        batch: bool = False,
    ) -> None:
        """Re-join one overflowing bucket pair one level deeper.

        Always serial: recursion is rare (skew overflow only) and its IO
        must stay at the coordinator's in-order sequence point.  The
        sub-level plans against the *current* effective grant, so a
        revoked budget keeps shrinking the recursive fan-outs.
        """
        sub_r = Relation(
            "%s~%d" % (spec.r.name, depth + 1), spec.r.schema, spec.r.page_bytes
        )
        sub_r.extend_rows(r_rows)
        sub_s = Relation(
            "%s~%d" % (spec.s.name, depth + 1), spec.s.schema, spec.s.page_bytes
        )
        sub_s.extend_rows(s_rows)
        sub_spec = JoinSpec(
            r=sub_r,
            s=sub_s,
            r_field=spec.r_field,
            s_field=spec.s_field,
            memory_pages=self.effective_memory_pages(spec.memory_pages),
            params=spec.params,
        )
        # The sub-spec may have swapped sides if the bucket's S slice is
        # the smaller one; keep the original orientation so emitted rows
        # stay (R, S)-ordered.
        if sub_spec.r is not sub_r:
            sub_spec.r, sub_spec.s = sub_r, sub_s
            sub_spec.r_field, sub_spec.s_field = spec.r_field, spec.s_field
        if batch:
            self._execute_level_batch(sub_spec, output, depth + 1, pool=None)
        else:
            self._execute_level(sub_spec, output, depth + 1)


__all__ = ["HybridHashJoin"]
