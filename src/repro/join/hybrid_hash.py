"""Hybrid hash join -- Section 3.7, the paper's new algorithm.

Hybrid hash is GRACE with the leftover memory put to work: memory holds the
``B`` output buffers *plus* a live hash table for bucket R0 covering the
fraction ``q = (|M| - B) / (|R|*F)`` of R.  R0 tuples never touch disk, and
S0 tuples probe the resident table during partitioning.  Only the ``1-q``
spilled remainder pays IO and a second hashing pass, so the algorithm
interpolates smoothly between GRACE (``q -> 0``) and the one-pass simple
hash (``q = 1``), dominating both across Figure 1.

The partitioning function splits the hash-value space *unevenly*: a ``q``
share to the resident class, the rest evenly over the B spill buckets --
the Section 3.3 construction of a partition compatible with ``h``.

Skew handling follows Section 3.3's remedy: "if we err slightly we can
always apply the hybrid hash join recursively, thereby adding an extra pass
for the overflow tuples."  When a spilled R-bucket's hash table would
exceed the memory grant, the bucket pair is re-joined recursively with a
depth-salted hash, so pathological key distributions degrade gracefully
instead of overflowing memory.
"""

from __future__ import annotations

from typing import Any, List

from repro.access.hash_index import HashIndex
from repro.join.base import JoinAlgorithm, JoinSpec
from repro.join.partition import (
    SpillWriter,
    partition_fan_out,
    partition_hash,
    read_bucket,
)
from repro.storage.relation import Relation, Row

#: Resolution of the hash-value space split between R0 and the spill
#: buckets (Section 3.3: partition the set of hash values, not the tuples).
_HASH_SPACE = 1 << 20


class HybridHashJoin(JoinAlgorithm):
    """Partitioned hash join with a memory-resident first bucket."""

    name = "hybrid-hash"

    #: Recursion backstop: 2 levels handle |R| up to ~|M|^3 / F pages;
    #: deeper than 8 means the partitioning hash has failed entirely.
    MAX_RECURSION = 8

    def _classify(
        self, key: Any, q: float, buckets: int, depth: int = 0
    ) -> int:
        """Class of ``key``: 0 = resident, 1..B = spill buckets.

        The hash is salted with ``depth`` so a recursive re-partition of
        an overflowing bucket actually splits it.
        """
        u = (partition_hash((depth, key)) % _HASH_SPACE) / _HASH_SPACE
        if u < q or buckets == 0:
            return 0
        return 1 + min(buckets - 1, int((u - q) / (1.0 - q) * buckets))

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        self._execute_level(spec, output, depth=0)

    def _execute_level(
        self, spec: JoinSpec, output: Relation, depth: int
    ) -> None:
        params = spec.params
        buckets, q = partition_fan_out(
            spec.r.page_count, spec.memory_pages, params.fudge
        )
        r_key, s_key = spec.r_key, spec.s_key

        resident = HashIndex(self.counters, max_load=params.fudge)

        # ---- Phase 1a: partition R, building R0's table on the fly. ----
        r_writer = None
        if buckets > 0:
            r_files = [
                "%s.d%d.%d" % (self.scratch_name(spec, "r"), depth, i)
                for i in range(buckets)
            ]
            r_writer = SpillWriter(
                self.disk, r_files, spec.r.tuples_per_page, self.counters
            )
        for row in spec.r:
            cls = self._classify(r_key(row), q, buckets, depth)
            if cls == 0:
                # insert() charges the hash and the move into the table.
                resident.insert(r_key(row), row)
            else:
                self.counters.hash_key()
                r_writer.write(cls - 1, row)

        # ---- Phase 1b: partition S, probing R0 on the fly. ----
        s_writer = None
        if buckets > 0:
            s_files = [
                "%s.d%d.%d" % (self.scratch_name(spec, "s"), depth, i)
                for i in range(buckets)
            ]
            s_writer = SpillWriter(
                self.disk, s_files, spec.s.tuples_per_page, self.counters
            )
        for row in spec.s:
            cls = self._classify(s_key(row), q, buckets, depth)
            if cls == 0:
                for r_row in resident.probe(s_key(row)):
                    self.emit(output, r_row, row)
            else:
                self.counters.hash_key()
                s_writer.write(cls - 1, row)

        if buckets == 0:
            return
        r_files = r_writer.close()
        s_files = s_writer.close()

        # ---- Phase 2: join the spilled bucket pairs. ----
        bucket_capacity = spec.memory_tuples(spec.r.tuples_per_page)
        for r_file, s_file in zip(r_files, s_files):
            r_rows = read_bucket(self.disk, r_file)
            s_rows = read_bucket(self.disk, s_file)
            self.disk.delete(r_file)
            self.disk.delete(s_file)

            if len(r_rows) > bucket_capacity and depth < self.MAX_RECURSION:
                # Section 3.3's overflow remedy: recurse on this bucket
                # pair with a fresh (depth-salted) partitioning -- but only
                # when partitioning can actually split it.  A bucket
                # dominated by one key is indivisible; repartitioning it
                # just rewrites the same rows, so it is processed directly
                # (the hash table runs over its budget, the honest cost of
                # an unsplittable hot key).
                if len({r_key(row) for row in r_rows}) > 1:
                    self._recurse_on_bucket(spec, output, r_rows, s_rows, depth)
                    continue

            table = HashIndex(self.counters, max_load=params.fudge)
            for row in r_rows:
                table.insert(r_key(row), row)
            for row in s_rows:
                for r_row in table.probe(s_key(row)):
                    self.emit(output, r_row, row)

    def _recurse_on_bucket(
        self,
        spec: JoinSpec,
        output: Relation,
        r_rows: List[Row],
        s_rows: List[Row],
        depth: int,
    ) -> None:
        """Re-join one overflowing bucket pair one level deeper."""
        sub_r = Relation(
            "%s~%d" % (spec.r.name, depth + 1), spec.r.schema, spec.r.page_bytes
        )
        for row in r_rows:
            sub_r.insert_unchecked(row)
        sub_s = Relation(
            "%s~%d" % (spec.s.name, depth + 1), spec.s.schema, spec.s.page_bytes
        )
        for row in s_rows:
            sub_s.insert_unchecked(row)
        sub_spec = JoinSpec(
            r=sub_r,
            s=sub_s,
            r_field=spec.r_field,
            s_field=spec.s_field,
            memory_pages=spec.memory_pages,
            params=spec.params,
        )
        # The sub-spec may have swapped sides if the bucket's S slice is
        # the smaller one; keep the original orientation so emitted rows
        # stay (R, S)-ordered.
        if sub_spec.r is not sub_r:
            sub_spec.r, sub_spec.s = sub_r, sub_s
            sub_spec.r_field, sub_spec.s_field = spec.r_field, spec.s_field
        self._execute_level(sub_spec, output, depth + 1)


__all__ = ["HybridHashJoin"]
