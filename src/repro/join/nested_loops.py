"""Block nested-loops join -- the pre-hash baseline.

Not one of the paper's four candidates, but the natural straw man they are
measured against: for each memory-load of R, scan all of S.  Included so
examples and benchmarks can show *why* Section 3 focuses on sort and hash
methods.
"""

from __future__ import annotations

from typing import List

from repro.join.base import JoinAlgorithm, JoinSpec
from repro.storage.relation import Relation, Row


class NestedLoopsJoin(JoinAlgorithm):
    """Block nested loops: O(|R|/|M|) scans of S, all CPU in comparisons."""

    name = "nested-loops"

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        r_key, s_key = spec.r_key, spec.s_key
        block_tuples = spec.memory_tuples(spec.r.tuples_per_page)

        block: List[Row] = []
        first_block = True

        def scan_s_against(block_rows: List[Row], reread: bool) -> None:
            if reread:
                # S no longer resident: every block after the first rereads
                # S from disk (|S| sequential IOs).
                self.counters.io_sequential(spec.s.page_count)
            for s_row in spec.s:
                sk = s_key(s_row)
                for r_row in block_rows:
                    self.counters.compare()
                    if r_key(r_row) == sk:
                        self.emit(output, r_row, s_row)

        for r_row in spec.r:
            self.counters.move_tuple()
            block.append(r_row)
            if len(block) >= block_tuples:
                scan_s_against(block, reread=not first_block)
                first_block = False
                block = []
        if block:
            scan_s_against(block, reread=not first_block)


__all__ = ["NestedLoopsJoin"]
