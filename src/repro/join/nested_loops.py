"""Block nested-loops join -- the pre-hash baseline.

Not one of the paper's four candidates, but the natural straw man they are
measured against: for each memory-load of R, scan all of S.  Included so
examples and benchmarks can show *why* Section 3 focuses on sort and hash
methods.
"""

from __future__ import annotations

from typing import List

from repro.join.base import JoinAlgorithm, JoinSpec
from repro.storage.relation import Relation, Row


class NestedLoopsJoin(JoinAlgorithm):
    """Block nested loops: O(|R|/|M|) scans of S, all CPU in comparisons."""

    name = "nested-loops"

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        if self.batch:
            self._execute_batch(spec, output)
        else:
            self._execute_tuple(spec, output)

    def _execute_tuple(self, spec: JoinSpec, output: Relation) -> None:
        r_key, s_key = spec.r_key, spec.s_key
        block_tuples = spec.memory_tuples(spec.r.tuples_per_page)

        block: List[Row] = []
        first_block = True

        s_tpp = max(1, spec.s.tuples_per_page)

        def scan_s_against(block_rows: List[Row], reread: bool) -> None:
            if reread:
                # S no longer resident: every block after the first rereads
                # S from disk (|S| sequential IOs).
                self.counters.io_sequential(spec.s.page_count)
            for i, s_row in enumerate(spec.s):
                if i % s_tpp == 0:
                    self.checkpoint()
                sk = s_key(s_row)
                for r_row in block_rows:
                    self.counters.compare()
                    if r_key(r_row) == sk:
                        self.emit(output, r_row, s_row)

        for r_row in spec.r:
            self.counters.move_tuple()
            block.append(r_row)
            if len(block) >= block_tuples:
                scan_s_against(block, reread=not first_block)
                first_block = False
                block = []
        if block:
            scan_s_against(block, reread=not first_block)

    def _execute_batch(self, spec: JoinSpec, output: Relation) -> None:
        """Page-at-a-time variant: hoisted block keys, bulk charges."""
        r_key = spec.r_key
        s_ki = spec.s_key_index
        block_tuples = spec.memory_tuples(spec.r.tuples_per_page)
        s_pages = spec.s.pages

        def scan_s_against(block_rows: List[Row], reread: bool) -> None:
            if reread:
                self.counters.io_sequential(spec.s.page_count)
            keyed = [(r_key(row), row) for row in block_rows]
            per_s = len(block_rows)
            for page in s_pages:
                self.checkpoint()
                rows = page.tuples
                self.counters.compare(per_s * len(rows))
                matched: List[Row] = []
                # S keys read off the packed join-key column buffer.
                for sk, s_row in zip(page.column(s_ki), rows):
                    for rk, r_row in keyed:
                        if rk == sk:
                            matched.append(r_row + s_row)
                output.extend_rows(matched)

        block: List[Row] = []
        first_block = True
        for page in spec.r.pages:
            self.checkpoint()
            rows = page.tuples
            self.counters.move_tuple(len(rows))
            pos = 0
            while pos < len(rows):
                take = min(len(rows) - pos, block_tuples - len(block))
                block.extend(rows[pos:pos + take])
                pos += take
                if len(block) >= block_tuples:
                    scan_s_against(block, reread=not first_block)
                    first_block = False
                    block = []
        if block:
            scan_s_against(block, reread=not first_block)


__all__ = ["NestedLoopsJoin"]
