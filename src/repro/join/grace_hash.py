"""GRACE hash join -- Section 3.6.

Phase 1 partitions *both* relations into ``|M|`` buckets (one output-buffer
page each, so the fan-out equals the memory grant), flushing full buffers
with random IO.  Phase 2 joins bucket pairs: read R_i back, build its hash
table -- guaranteed to fit because R was split ``|M|`` ways -- then stream
S_i against it.  The original uses a hardware sorter in phase 2; like the
paper's own comparison, this implementation uses hashing "to provide a fair
comparison between the different algorithms".

GRACE never exploits memory beyond the fan-out: every tuple of both
relations goes to disk and comes back, which is why its Figure 1 curve is
flat while hybrid hash keeps improving.
"""

from __future__ import annotations

from typing import List

from repro.access.hash_index import HashIndex
from repro.join.base import JoinAlgorithm, JoinSpec
from repro.join.partition import partition_relation, read_bucket
from repro.storage.relation import Relation


class GraceHashJoin(JoinAlgorithm):
    """Two-phase partition/build-probe join with full spill."""

    name = "grace-hash"

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        # The paper partitions into |M| sets; more buckets than R has
        # pages would only create empty files.
        buckets = max(1, min(spec.memory_pages, spec.r.page_count))

        r_files = partition_relation(
            spec.r,
            spec.r_key,
            buckets,
            self.disk,
            self.counters,
            file_prefix=self.scratch_name(spec, "r"),
        )
        s_files = partition_relation(
            spec.s,
            spec.s_key,
            buckets,
            self.disk,
            self.counters,
            file_prefix=self.scratch_name(spec, "s"),
        )

        r_key, s_key = spec.r_key, spec.s_key
        for r_file, s_file in zip(r_files, s_files):
            table = HashIndex(self.counters, max_load=spec.params.fudge)
            for row in read_bucket(self.disk, r_file):
                table.insert(r_key(row), row)
            for row in read_bucket(self.disk, s_file):
                # probe() charges the phase-2 hash and the F comparisons.
                for r_row in table.probe(s_key(row)):
                    self.emit(output, r_row, row)
            self.disk.delete(r_file)
            self.disk.delete(s_file)


__all__ = ["GraceHashJoin"]
