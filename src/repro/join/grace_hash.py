"""GRACE hash join -- Section 3.6.

Phase 1 partitions *both* relations into ``|M|`` buckets (one output-buffer
page each, so the fan-out equals the memory grant), flushing full buffers
with random IO.  Phase 2 joins bucket pairs: read R_i back, build its hash
table -- guaranteed to fit because R was split ``|M|`` ways -- then stream
S_i against it.  The original uses a hardware sorter in phase 2; like the
paper's own comparison, this implementation uses hashing "to provide a fair
comparison between the different algorithms".

GRACE never exploits memory beyond the fan-out: every tuple of both
relations goes to disk and comes back, which is why its Figure 1 curve is
flat while hybrid hash keeps improving.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.access.hash_index import HashIndex
from repro.join.base import JoinAlgorithm, JoinSpec
from repro.join.parallel import (
    join_bucket,
    make_pool,
    precomputed_classifier,
    residue_chunk_task,
)
from repro.join.partition import partition_relation, read_bucket
from repro.join.vectorized import join_bucket_columnar
from repro.storage.relation import Relation, Row


class GraceHashJoin(JoinAlgorithm):
    """Two-phase partition/build-probe join with full spill."""

    name = "grace-hash"

    def _execute(self, spec: JoinSpec, output: Relation) -> None:
        if self.batch:
            self._execute_batch(spec, output)
        else:
            self._execute_tuple(spec, output)

    def _bucket_count(self, spec: JoinSpec) -> int:
        # The paper partitions into |M| sets; more buckets than R has
        # pages would only create empty files.  The governor's grant (if
        # any) caps the grant the spec was planned with.
        memory = self.effective_memory_pages(spec.memory_pages)
        return max(1, min(memory, spec.r.page_count))

    def _execute_tuple(self, spec: JoinSpec, output: Relation) -> None:
        buckets = self._bucket_count(spec)

        r_files = partition_relation(
            spec.r,
            spec.r_key,
            buckets,
            self.disk,
            self.counters,
            file_prefix=self.scratch_name(spec, "r"),
            batch=False,
            checkpoint=self.checkpoint,
        )
        s_files = partition_relation(
            spec.s,
            spec.s_key,
            buckets,
            self.disk,
            self.counters,
            file_prefix=self.scratch_name(spec, "s"),
            batch=False,
            checkpoint=self.checkpoint,
        )

        r_key, s_key = spec.r_key, spec.s_key
        for r_file, s_file in zip(r_files, s_files):
            self.checkpoint()
            table = HashIndex(self.counters, max_load=spec.params.fudge)
            for row in read_bucket(self.disk, r_file):
                table.insert(r_key(row), row)
            for row in read_bucket(self.disk, s_file):
                # probe() charges the phase-2 hash and the F comparisons.
                for r_row in table.probe(s_key(row)):
                    self.emit(output, r_row, row)
            self.disk.delete(r_file)
            self.disk.delete(s_file)

    def _execute_batch(self, spec: JoinSpec, output: Relation) -> None:
        """Page-at-a-time variant, optionally with a worker pool.

        The coordinator performs every disk access in the serial order
        (partition writes, then per bucket: read R_i, read S_i, delete
        both); workers only classify keys and build/probe bucket pairs.
        """
        buckets = self._bucket_count(spec)
        pool = make_pool(self.pool_workers())
        try:
            classify_r: Optional[Callable[[Sequence[Any]], List[int]]] = None
            classify_s: Optional[Callable[[Sequence[Any]], List[int]]] = None
            r_ki, s_ki = spec.r_key_index, spec.s_key_index
            if pool is not None:
                # Keys for the workers come straight off the packed
                # join-key columns -- no per-row extractor calls.
                classify_r = precomputed_classifier(
                    pool,
                    [
                        list(page.column(r_ki))
                        for page in spec.r.pages
                        if len(page)
                    ],
                    residue_chunk_task,
                    (buckets,),
                )
                classify_s = precomputed_classifier(
                    pool,
                    [
                        list(page.column(s_ki))
                        for page in spec.s.pages
                        if len(page)
                    ],
                    residue_chunk_task,
                    (buckets,),
                )
            r_files = partition_relation(
                spec.r,
                spec.r_key,
                buckets,
                self.disk,
                self.counters,
                file_prefix=self.scratch_name(spec, "r"),
                classify=classify_r,
                checkpoint=self.checkpoint,
                key_index=r_ki,
            )
            s_files = partition_relation(
                spec.s,
                spec.s_key,
                buckets,
                self.disk,
                self.counters,
                file_prefix=self.scratch_name(spec, "s"),
                classify=classify_s,
                checkpoint=self.checkpoint,
                key_index=s_ki,
            )

            r_index = spec.r.schema.index_of(spec.r_field)
            s_index = spec.s.schema.index_of(spec.s_field)
            fudge = spec.params.fudge

            if pool is None:
                for r_file, s_file in zip(r_files, s_files):
                    self.checkpoint()
                    r_rows = read_bucket(self.disk, r_file)
                    s_rows = read_bucket(self.disk, s_file)
                    self.disk.delete(r_file)
                    self.disk.delete(s_file)
                    if self.columnar:
                        join_bucket_columnar(
                            r_rows,
                            s_rows,
                            r_index,
                            s_index,
                            fudge,
                            self.counters,
                            output,
                        )
                    else:
                        output.extend_rows(
                            join_bucket(
                                r_rows,
                                s_rows,
                                r_index,
                                s_index,
                                fudge,
                                self.counters,
                            )
                        )
                return

            jobs: List[Tuple[List[Row], List[Row], int, int, float]] = []
            for r_file, s_file in zip(r_files, s_files):
                self.checkpoint()
                r_rows = read_bucket(self.disk, r_file)
                s_rows = read_bucket(self.disk, s_file)
                self.disk.delete(r_file)
                self.disk.delete(s_file)
                jobs.append((r_rows, s_rows, r_index, s_index, fudge))
            for rows, worker_counters in self.run_bucket_jobs(pool, jobs):
                self.counters.absorb(worker_counters)
                output.extend_rows(rows)
        finally:
            self.finish_pool(pool)


__all__ = ["GraceHashJoin"]
