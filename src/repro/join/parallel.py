"""Deterministic worker-process support for the partitioned hash joins.

The GRACE and hybrid hash joins split cleanly into disk traffic and pure
CPU work, and only the CPU half is farmed out:

* The **coordinator** (the join object in the parent process) performs
  every disk operation itself, in exactly the order the serial algorithm
  would -- partition writes, bucket reads, bucket deletes.  The simulated
  disk's sequential/random classification depends on access order, so
  keeping IO single-threaded keeps the counted cost model bit-identical.
* **Workers** receive closed, picklable work items -- a page of join keys
  to classify, or a bucket pair of rows to build-and-probe -- and tally
  their operation charges into fresh local counters.  Counter increments
  commute, so the coordinator folds the worker tallies back with
  :meth:`~repro.cost.counters.OperationCounters.absorb` and the totals
  match the serial run exactly.
* Results are assembled in **bucket order** (``pool.map`` preserves input
  order), so the output relation is identical for any worker count.

The pool uses the ``fork`` start method: children inherit the parent's
hash randomization, which keeps ``partition_hash`` consistent across
processes.  Platforms without ``fork`` fall back to serial execution.
"""

from __future__ import annotations

import multiprocessing
import operator
import os
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.access.hash_index import HashIndex
from repro.cost.counters import OperationCounters
from repro.errors import ConfigurationError
from repro.join.partition import hybrid_class, partition_hash
from repro.storage.relation import Row

#: First element of every healthy guarded-task result.  A worker that was
#: killed never returns; a hung worker times out; a *garbled* worker
#: returns a payload without this sentinel, which the coordinator treats
#: exactly like a crash (discard and retry the bucket serially).
OK_SENTINEL = "ok"


def validate_workers(workers: Any) -> int:
    """Normalise a worker count: coerce integral floats, reject garbage.

    ``0`` and ``1`` both mean serial execution.  Negative counts, booleans,
    non-integral floats, and non-numbers raise
    :class:`~repro.errors.ConfigurationError` instead of being silently
    clamped -- a negative worker count is a caller bug, not a preference.
    """
    if isinstance(workers, bool):
        raise ConfigurationError(
            "workers must be an integer count, got the boolean %r" % (workers,)
        )
    if isinstance(workers, float):
        if not workers.is_integer():
            raise ConfigurationError(
                "workers must be a whole number, got %r" % (workers,)
            )
        workers = int(workers)
    if not isinstance(workers, int):
        raise ConfigurationError(
            "workers must be an integer count, got %r" % (workers,)
        )
    if workers < 0:
        raise ConfigurationError(
            "workers cannot be negative, got %d" % workers
        )
    return max(1, workers)


def make_pool(workers: int) -> Optional[Any]:
    """A fork-context pool, or ``None`` for serial execution.

    Returns ``None`` when ``workers <= 1`` or when the platform has no
    ``fork`` start method (consistent hashing across processes requires
    inheriting the parent's hash seed).  Invalid counts raise
    :class:`~repro.errors.ConfigurationError` via :func:`validate_workers`.
    """
    workers = validate_workers(workers)
    if workers <= 1:
        return None
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return None
    return ctx.Pool(processes=workers)


def join_bucket(
    r_rows: Sequence[Row],
    s_rows: Sequence[Row],
    r_key_index: int,
    s_key_index: int,
    fudge: float,
    counters: OperationCounters,
) -> List[Row]:
    """Build-and-probe one bucket pair; return the joined rows in order.

    Pure CPU: hash-table work is charged into ``counters`` and no IO is
    performed, so the call is position-independent -- it may run in any
    process, in any order, with commutative counter effects.
    """
    table = HashIndex(counters, max_load=fudge)
    r_key = operator.itemgetter(r_key_index)
    table.insert_batch([(r_key(row), row) for row in r_rows])
    s_key = operator.itemgetter(s_key_index)
    chains = table.probe_batch([s_key(row) for row in s_rows])
    matched: List[Row] = []
    for chain, s_row in zip(chains, s_rows):
        if chain:
            matched.extend(r_row + s_row for r_row in chain)
    return matched


def bucket_join_task(
    args: Tuple[Sequence[Row], Sequence[Row], int, int, float],
) -> Tuple[List[Row], OperationCounters]:
    """Pool task: join one bucket pair, tallying into a local counter."""
    r_rows, s_rows, r_key_index, s_key_index, fudge = args
    counters = OperationCounters()
    rows = join_bucket(r_rows, s_rows, r_key_index, s_key_index, fudge, counters)
    return rows, counters


def guarded_bucket_join_task(
    args: Tuple[Tuple[Sequence[Row], Sequence[Row], int, int, float], Optional[str]],
) -> Tuple[Any, ...]:
    """Pool task wrapping :func:`bucket_join_task` with an integrity sentinel.

    ``args`` is the plain bucket payload plus a chaos directive for this
    worker (``None`` or one of :data:`repro.chaos.WORKER_FAULT_KINDS`):

    * ``kill``   -- the worker process exits hard, mid-job, without
      cleanup (``os._exit``), the way an OOM-kill or segfault would land;
    * ``hang``   -- the worker sleeps past any sane timeout, simulating a
      wedged process the coordinator must give up on;
    * ``garble`` -- the worker returns a payload missing the
      :data:`OK_SENTINEL`, simulating a corrupted result.

    Healthy jobs return ``(OK_SENTINEL, rows, counters)``; the coordinator
    (:meth:`repro.join.base.JoinAlgorithm.run_bucket_jobs`) treats any
    other shape -- or no result at all -- as a worker failure and retries
    the bucket serially.
    """
    payload, fault = args
    if fault == "kill":
        os._exit(17)
    if fault == "hang":
        time.sleep(3600.0)
    rows, counters = bucket_join_task(payload)
    if fault == "garble":
        return ("garbled-result",)
    return (OK_SENTINEL, rows, counters)


def residue_chunk_task(args: Tuple[Sequence[Any], int]) -> List[int]:
    """Pool task: GRACE residues ``partition_hash(key) % classes``."""
    keys, total_classes = args
    return [partition_hash(k) % total_classes for k in keys]


def hybrid_class_chunk_task(
    args: Tuple[Sequence[Any], float, int, int],
) -> List[int]:
    """Pool task: hybrid classes (0 = resident, 1..B = spill buckets)."""
    keys, q, buckets, depth = args
    return [hybrid_class(k, q, buckets, depth) for k in keys]


def precomputed_classifier(
    pool: Any,
    pages_keys: List[List[Any]],
    task: Callable[[Tuple], List[int]],
    extra: Tuple,
) -> Callable[[Sequence[Any]], List[int]]:
    """Classify every page of keys on the pool; return a replay hook.

    The returned hook ignores its argument and yields the precomputed
    class lists in page order -- exactly the order the batch partition
    loop requests them.  ``pool.map`` preserves input order, so the
    classes (and everything downstream) are identical for any worker
    count.
    """
    chunks = pool.map(task, [(keys,) + extra for keys in pages_keys])
    replay = iter(chunks)
    return lambda _keys: next(replay)


__all__ = [
    "OK_SENTINEL",
    "bucket_join_task",
    "guarded_bucket_join_task",
    "hybrid_class_chunk_task",
    "join_bucket",
    "make_pool",
    "precomputed_classifier",
    "residue_chunk_task",
    "validate_workers",
]
