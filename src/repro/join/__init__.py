"""Executable implementations of the paper's four join algorithms.

Each algorithm really runs -- building hash tables, forming sorted runs,
spilling partitions through a :class:`~repro.storage.disk.SimulatedDisk` --
while charging comparisons / hashes / moves / swaps / IOs to shared
:class:`~repro.cost.counters.OperationCounters`.  Weighting the counters
with Table 2 reproduces the paper's Figure 1 from *measured* operation
counts rather than closed-form formulas (the formulas live in
:mod:`repro.cost.join_model`; benchmark E5 compares the two).

* :class:`~repro.join.nested_loops.NestedLoopsJoin` -- the classical
  baseline the paper's hash algorithms displace.
* :class:`~repro.join.sort_merge.SortMergeJoin` -- Section 3.4.
* :class:`~repro.join.simple_hash.SimpleHashJoin` -- Section 3.5.
* :class:`~repro.join.grace_hash.GraceHashJoin` -- Section 3.6.
* :class:`~repro.join.hybrid_hash.HybridHashJoin` -- Section 3.7.
"""

from repro.join.base import JoinAlgorithm, JoinResult, JoinSpec
from repro.join.grace_hash import GraceHashJoin
from repro.join.hybrid_hash import HybridHashJoin
from repro.join.nested_loops import NestedLoopsJoin
from repro.join.partition import partition_relation, partition_fan_out
from repro.join.simple_hash import SimpleHashJoin
from repro.join.sort_merge import SortMergeJoin

ALL_JOINS = {
    "nested-loops": NestedLoopsJoin,
    "sort-merge": SortMergeJoin,
    "simple-hash": SimpleHashJoin,
    "grace-hash": GraceHashJoin,
    "hybrid-hash": HybridHashJoin,
}

__all__ = [
    "ALL_JOINS",
    "GraceHashJoin",
    "HybridHashJoin",
    "JoinAlgorithm",
    "JoinResult",
    "JoinSpec",
    "NestedLoopsJoin",
    "SimpleHashJoin",
    "SortMergeJoin",
    "partition_fan_out",
    "partition_relation",
]
