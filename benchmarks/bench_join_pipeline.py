"""E23/E24 -- the vectorized join pipeline and the skew-adaptive hybrid hash.

Three claims, all measured:

**Part A -- columnar join speedup (E23).**  PR-9 extends the packed-column
batch kernels into every join algorithm: build sides stage into column
buffers, probes hash packed key columns directly, and matches are
group-gathered buffer-to-buffer (:mod:`repro.join.vectorized`).  Each
3/4/5-way chain runs once per layout mode (``columnar=True`` vs the PR-7
row-view batch loops, ``columnar=False``) and asserts identical rows *and*
byte-identical ``OperationCounters`` -- the speedup is pure interpreter
mechanics; the counted cost model is untouched.  The composite headline
over the in-memory hash-join chains must clear ``MIN_SPEEDUP`` at full
scale.  Spilling and sort-merge configurations are reported alongside but
carry no floor: once the simulated disk dominates the modelled cost, the
interpreter win is a second-order effect.

**Part B -- E24 skew ablation.**  The hybrid hash join's runtime-adaptive
re-split (phase 1a tracks per-spill-bucket key loads; overflowing buckets
are re-split into salted sub-buckets *before* S streams through phase 1b)
against the static baseline (``adaptive=False``), which falls back to the
classic phase-2 recursion.  Adaptive routes S's hot tuples straight to
sub-buckets -- one extra hash each -- where static recursion pays a full
extra write+read round trip for the same tuples.  Zipf ``theta`` in
{0.0, 0.8, 1.2}: rows must be identical everywhere, the modelled seconds
must never regress, and at full scale the skewed rungs must show a strict
adaptive win while uniform stays resplit-free (the forecast gate vetoes
unprofitable re-splits).

**Part C -- forecast sanity.**  ``hash_pipeline_forecast`` degrades to the
paper's closed-form ``hybrid_hash_cost`` at ``hot_fraction == 0`` and its
adaptive-vs-static gap widens monotonically with the hot fraction -- the
planner-facing justification for keeping the adaptive path on by default.

Knobs: ``REPRO_BENCH_SCALE`` scales tuple counts (CI smoke runs 0.25);
strict win/floor assertions only apply at full scale.  Emits
``benchmarks/out/bench_join_pipeline.json`` and the repo-root
``BENCH_PR9.json``.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.cost.counters import OperationCounters
from repro.cost.join_model import (
    JoinWorkload,
    hash_pipeline_forecast,
    hybrid_hash_cost,
)
from repro.cost.parameters import CostParameters
from repro.join import ALL_JOINS, HybridHashJoin, JoinSpec
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema
from repro.workload.distributions import zipf_keys

from conftest import emit, emit_json, format_table

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
N_TUPLES = max(200, int(4000 * SCALE))
PAGE_BYTES = 4096  # full pages: hundreds of tuples per packed column buffer
REPS = 3
MIN_SPEEDUP = 1.5 if SCALE >= 1.0 else 1.0

#: Key domain for the chain tables: ~2 matches per probe key, so a 5-way
#: chain fans out without exploding.
CHAIN_DOMAIN = max(8, N_TUPLES // 2)

#: E24 workload shape (see docs/EXPERIMENTS.md): |S| = 4|R|, a key domain
#: wide enough that hot buckets hold many separable keys, narrow pages so
#: per-tuple work dominates, and a grant ~1/7th of R's footprint.
E24_R_TUPLES = max(400, int(4000 * SCALE))
E24_PAGE_BYTES = 512
E24_THETAS = (0.0, 0.8, 1.2)


def timed(fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Best-of-REPS wall seconds plus the last run's outcome."""
    best = float("inf")
    outcome = None
    for _ in range(REPS):
        start = time.perf_counter()
        outcome = fn()
        best = min(best, time.perf_counter() - start)
    return best, outcome


def make_relation(name, rows, columns, page_bytes=PAGE_BYTES):
    schema = Schema([Field(c, DataType.INTEGER) for c in columns])
    rel = Relation(name, schema, page_bytes)
    rel.extend_rows(rows)
    return rel


def chain_spec(r, s, r_field, s_field, memory_pages):
    params = CostParameters(
        r_pages=max(1, min(r.page_count, s.page_count)),
        s_pages=max(1, max(r.page_count, s.page_count)),
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )
    return JoinSpec(
        r=r,
        s=s,
        r_field=r_field,
        s_field=s_field,
        memory_pages=memory_pages,
        params=params,
    )


# -- Part A: columnar vs row-view join chains ---------------------------------------


def chain_tables(n_tables: int):
    """``n_tables`` same-size relations sharing keys but not column names."""
    rng = random.Random(17 + n_tables)
    tables = []
    for i in range(n_tables):
        rows = [
            (rng.randrange(CHAIN_DOMAIN), rng.randrange(10 ** 6))
            for _ in range(N_TUPLES)
        ]
        tables.append((("k%d" % i, "p%d" % i), rows))
    return tables


def run_chain(name: str, tables, memory_pages: int, columnar: bool):
    """Left-deep chain t0 |x| t1 |x| ... through one algorithm/mode."""
    counters = OperationCounters()
    cols, rows = tables[0]
    current = make_relation("t0", rows, cols)
    for i in range(1, len(tables)):
        cols, rows = tables[i]
        nxt = make_relation("t%d" % i, rows, cols)
        algo = ALL_JOINS[name](counters=counters, columnar=columnar)
        spec = chain_spec(current, nxt, "k%d" % (i - 1), "k%d" % i, memory_pages)
        current = algo.join(spec).relation
    return current, counters.as_dict()


#: (label, algorithm, n_tables, memory_pages, in headline composite).  The
#: floored headline covers the in-memory hash-join chains -- the pipeline
#: the vectorized kernels target.  The spill and sort-merge rows document
#: that IO-bound configurations neither regress nor diverge.
CHAIN_CONFIGS = [
    ("hybrid-3way", "hybrid-hash", 3, 400, True),
    ("hybrid-4way", "hybrid-hash", 4, 400, True),
    ("hybrid-5way", "hybrid-hash", 5, 400, True),
    ("simple-3way", "simple-hash", 3, 400, True),
    ("simple-4way", "simple-hash", 4, 400, True),
    ("simple-5way", "simple-hash", 5, 400, True),
    ("sort-merge-4way", "sort-merge", 4, 400, False),
    ("hybrid-4way-spill", "hybrid-hash", 4, 8, False),
]


def part_a() -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    configs: List[Dict[str, Any]] = []
    head_rows = head_col = 0.0
    for label, algo, n_tables, mem, in_headline in CHAIN_CONFIGS:
        tables = chain_tables(n_tables)
        t_rows, (out_rows, counters_rows) = timed(
            lambda: run_chain(algo, tables, mem, columnar=False)
        )
        t_col, (out_col, counters_col) = timed(
            lambda: run_chain(algo, tables, mem, columnar=True)
        )
        assert sorted(out_col) == sorted(out_rows), "%s: rows diverge" % label
        assert counters_col == counters_rows, "%s: counters diverge" % label
        configs.append({
            "config": label,
            "algorithm": algo,
            "n_tables": n_tables,
            "memory_pages": mem,
            "output_rows": out_col.cardinality,
            "row_view_s": round(t_rows, 6),
            "columnar_s": round(t_col, 6),
            "speedup": round(t_rows / t_col, 3),
            "in_headline": in_headline,
            "identical_results": True,
            "identical_counters": True,
        })
        if in_headline:
            head_rows += t_rows
            head_col += t_col
    headline = {
        "row_view_s": round(head_rows, 6),
        "columnar_s": round(head_col, 6),
        "speedup": round(head_rows / head_col, 3),
        "threshold": {"min_speedup": MIN_SPEEDUP, "full_scale": SCALE >= 1.0},
    }
    return configs, headline


# -- Part B: E24 skew ablation ------------------------------------------------------


def e24_inputs(theta: float):
    nr, ns = E24_R_TUPLES, 4 * E24_R_TUPLES
    domain = max(16, nr // 8)
    r_keys = zipf_keys(nr, domain, theta=theta, seed=31)
    s_keys = zipf_keys(ns, domain, theta=theta, seed=32)
    r = make_relation(
        "zr", [(k, i) for i, k in enumerate(r_keys)], ("rk", "rp"),
        page_bytes=E24_PAGE_BYTES,
    )
    s = make_relation(
        "zs", [(k, i) for i, k in enumerate(s_keys)], ("sk", "sp"),
        page_bytes=E24_PAGE_BYTES,
    )
    return r, s, domain


def e24_run(theta: float, adaptive: bool):
    r, s, _ = e24_inputs(theta)
    memory_pages = max(3, int(r.page_count * 1.2 / 7.0) + 1)
    algo = HybridHashJoin()
    algo.adaptive = adaptive
    start = time.perf_counter()
    result = algo.join(chain_spec(r, s, "rk", "sk", memory_pages))
    wall = time.perf_counter() - start
    return algo, result, wall


def part_b() -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    rows: List[Dict[str, Any]] = []
    for theta in E24_THETAS:
        adaptive, a_result, a_wall = e24_run(theta, adaptive=True)
        static, s_result, s_wall = e24_run(theta, adaptive=False)
        assert sorted(a_result.relation) == sorted(s_result.relation), (
            "theta=%.1f: adaptive and static joins disagree on rows" % theta
        )
        assert static.resplits == 0
        a_cost = a_result.modelled_seconds
        s_cost = s_result.modelled_seconds
        # The forecast gate only approves profitable re-splits, so the
        # adaptive arm must never model slower than the static fallback.
        assert a_cost <= s_cost + 1e-9, (
            "theta=%.1f: adaptive %.4fs regressed vs static %.4fs"
            % (theta, a_cost, s_cost)
        )
        if SCALE >= 1.0:
            if theta >= 0.8:
                assert adaptive.resplits > 0, (
                    "theta=%.1f: skew should trigger a re-split" % theta
                )
                assert a_cost < s_cost, (
                    "theta=%.1f: adaptive should strictly win" % theta
                )
        rows.append({
            "theta": theta,
            "output_rows": a_result.cardinality,
            "resplits": adaptive.resplits,
            "resplit_denied": adaptive.resplit_denied,
            "adaptive_model_s": round(a_cost, 6),
            "static_model_s": round(s_cost, 6),
            "model_saving_s": round(s_cost - a_cost, 6),
            "adaptive_wall_s": round(a_wall, 6),
            "static_wall_s": round(s_wall, 6),
            "identical_results": True,
        })
    r, _, domain = e24_inputs(0.0)
    config = {
        "r_tuples": E24_R_TUPLES,
        "s_tuples": 4 * E24_R_TUPLES,
        "key_domain": domain,
        "page_bytes": E24_PAGE_BYTES,
        "memory_pages": max(3, int(r.page_count * 1.2 / 7.0) + 1),
    }
    return config, rows


# -- Part C: forecast sanity --------------------------------------------------------


def part_c() -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    params = CostParameters(r_pages=1000, s_pages=4000)
    workload = JoinWorkload(params, memory_pages=100)
    closed_form = hybrid_hash_cost(workload)
    baseline = hash_pipeline_forecast(workload, hot_fraction=0.0)
    assert abs(baseline["total"] - closed_form) < 1e-9, (
        "forecast at hot_fraction=0 must equal hybrid_hash_cost"
    )
    rows: List[Dict[str, Any]] = []
    prev_gap = -1.0
    for hot in (0.0, 0.1, 0.3, 0.5):
        fc_adaptive = hash_pipeline_forecast(workload, hot, adaptive=True)
        fc_static = hash_pipeline_forecast(workload, hot, adaptive=False)
        gap = fc_static["total"] - fc_adaptive["total"]
        assert fc_adaptive["total"] <= fc_static["total"] + 1e-12
        assert gap >= prev_gap - 1e-12, "gap must grow with hot_fraction"
        prev_gap = gap
        rows.append({
            "hot_fraction": hot,
            "adaptive_total_s": round(fc_adaptive["total"], 4),
            "static_total_s": round(fc_static["total"], 4),
            "gap_s": round(gap, 4),
            "resplit_term_s": round(fc_adaptive["resplit"], 4),
        })
    workload_doc = {
        "r_pages": 1000,
        "s_pages": 4000,
        "memory_pages": 100,
        "closed_form_s": round(closed_form, 4),
    }
    return workload_doc, rows


def test_join_pipeline_speedup_and_skew_ablation():
    configs, headline = part_a()
    e24_config, e24_rows = part_b()
    forecast_workload, forecast_rows = part_c()

    payload = {
        "experiment": "bench_join_pipeline",
        "scale": SCALE,
        "tuples_per_chain_table": N_TUPLES,
        "page_bytes": PAGE_BYTES,
        "reps": REPS,
        "pipeline": {"configs": configs, "headline": headline},
        "e24_skew": {"config": e24_config, "rows": e24_rows},
        "forecast": {"workload": forecast_workload, "rows": forecast_rows},
    }
    emit_json("bench_join_pipeline", payload, root_copy="BENCH_PR9.json")
    emit(
        "join_pipeline",
        format_table(
            ["config", "rows out", "row-view (s)", "columnar (s)", "speedup"],
            [
                (c["config"], c["output_rows"], c["row_view_s"],
                 c["columnar_s"], "%.2fx" % c["speedup"])
                for c in configs
            ]
            + [("HEADLINE (in-memory hash chains)", "",
                headline["row_view_s"], headline["columnar_s"],
                "%.2fx" % headline["speedup"])],
        )
        + [""]
        + format_table(
            ["theta", "resplits", "adaptive model (s)", "static model (s)",
             "saving (s)"],
            [
                (e["theta"], e["resplits"], e["adaptive_model_s"],
                 e["static_model_s"], e["model_saving_s"])
                for e in e24_rows
            ],
        )
        + [""]
        + format_table(
            ["hot fraction", "adaptive fc (s)", "static fc (s)", "gap (s)"],
            [
                (f["hot_fraction"], f["adaptive_total_s"],
                 f["static_total_s"], f["gap_s"])
                for f in forecast_rows
            ],
        ),
    )

    assert headline["speedup"] >= MIN_SPEEDUP, (
        "columnar join pipeline %.2fx vs row-view batch; need >= %.1fx"
        % (headline["speedup"], MIN_SPEEDUP)
    )
