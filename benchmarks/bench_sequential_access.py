"""E2 (measured) -- Section 2's sequential-access case, executed.

"Consider the query retrieve (emp.salary, emp.name) where emp.name = 'J*'
... locate the first employee with a name beginning with J and then read
sequentially."  The model says the AVL tree faults on (almost) every record
while the B+-tree's sequence set faults once per leaf page.  This benchmark
runs that exact query shape on both structures, replaying the pages each
scan really touches through a buffer pool, and checks the measured gap.
"""

import random

import pytest

from repro.access.avl import AVLTree
from repro.access.btree import BPlusTree
from repro.storage.buffer import BufferPool, ReplacementPolicy
from repro.workload.distributions import name_keys

from conftest import emit, format_table

N = 6000


def build():
    names = name_keys(N, seed=12)
    avl = AVLTree()
    btree = BPlusTree(order=32)
    for i, name in enumerate(names):
        avl.insert(name, i)
        btree.insert(name, i)
    return avl, btree, names


def avl_scan_pages(avl, low, high):
    """Pages an AVL in-order scan touches: the node of every visited key.

    (The real traversal also touches ancestors; counting one page per
    yielded record matches the model's N-touch accounting and is the
    *favourable* reading for the AVL tree.)
    """
    pages = []
    node_of = {}
    stack = []
    node = avl._root
    while stack or node is not None:
        while node is not None:
            if low is not None and node.key < low:
                node = node.right
                continue
            stack.append(node)
            node = node.left
        if not stack:
            break
        current = stack.pop()
        if high is not None and current.key > high:
            break
        if current.key >= low:
            pages.append(current.node_id)
        node = current.right
    return pages


def measure(index, scan_pages, total_pages, fraction, keys, seed=5):
    """Faults for one scan against a pool warmed by *unrelated* random
    lookups -- the §2 setting where the structure is partially resident
    from ordinary point-query traffic."""
    pool = BufferPool(
        max(1, int(fraction * total_pages)),
        policy=ReplacementPolicy.RANDOM,
        seed=seed,
    )
    rng = random.Random(seed + 1)
    for _ in range(4 * len(keys)):
        for page in index.path_pages(keys[rng.randrange(len(keys))]):
            pool.access(page)
    pool.reset_stats()
    for p in scan_pages:
        pool.access(p)
    return pool.faults


def test_prefix_scan_fault_gap(benchmark):
    def run():
        avl, btree, names = build()
        low, high = "J", "K"
        matches = sum(1 for n in names if n.startswith("J"))

        avl_pages = avl_scan_pages(avl, low, high)
        bt_pages = list(btree.scan_pages(low, high))
        internal, leaves = btree.node_counts()

        rows = []
        for fraction in (0.25, 0.5, 0.75):
            avl_faults = measure(avl, avl_pages, avl.node_count, fraction,
                                 names)
            bt_faults = measure(btree, bt_pages, internal + leaves, fraction,
                                names)
            rows.append(
                (fraction, matches,
                 avl_faults / matches, bt_faults / matches)
            )
        return matches, len(avl_pages), len(bt_pages), rows

    matches, avl_touched, bt_touched, rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = format_table(
        ["|M|/S", "records", "AVL faults/record", "B+ faults/record"],
        rows,
    )
    lines.append("")
    lines.append(
        "pages touched per scan: AVL %d (one per record), B+-tree %d "
        "(one per leaf)" % (avl_touched, bt_touched)
    )
    emit("sequential_access_measured", lines)

    # The structural crux: the AVL scan touches ~N pages, the B+-tree a
    # handful of leaves.
    assert avl_touched == matches
    assert bt_touched < matches / 5

    for fraction, _, avl_rate, bt_rate in rows:
        # The paper's case-2 conclusion, measured: the B+-tree faults at
        # a small fraction of the AVL rate at every residence level.
        assert bt_rate < avl_rate / 2, fraction


def test_sequential_model_vs_measured_ordering(benchmark):
    """The closed-form sequential costs must rank the structures the same
    way the measured fault rates do at matching residence."""
    from repro.cost.access_model import (
        AccessMethodParameters,
        avl_sequential_cost,
        avl_storage_pages,
        btree_sequential_cost,
        btree_storage_pages,
    )

    def run():
        params = AccessMethodParameters()
        s = avl_storage_pages(params)
        results = []
        for fraction in (0.25, 0.5, 0.75):
            m = fraction * s
            results.append(
                (
                    fraction,
                    avl_sequential_cost(params, m, 1000),
                    btree_sequential_cost(params, m, 1000),
                )
            )
        return results

    rows = benchmark(run)
    for fraction, avl_cost, bt_cost in rows:
        assert bt_cost < avl_cost
