"""E18 -- Page-at-a-time batch executor: wall-clock vs tuple-at-a-time.

The counted cost model (the paper's operation counters) is identical
between the tuple-at-a-time loops and the batch executor -- that is
asserted here, component by component.  What batching buys is *real*
wall-clock time: the Python interpreter overhead of per-tuple function
calls and per-operation counter bumps disappears into page-sized bulk
operations, exactly the argument vectorised / block-at-a-time executors
make against classic Volcano iterators.

This benchmark runs one composite executor workload (the five Section 3
join algorithms plus selection, distinct projection, and both aggregation
engines) at the Table 2 join shape (4000x4000 tuples, 40 tuples/page),
once per execution mode, and emits a machine-readable comparison to
``benchmarks/out/bench_batch_executor.json`` and the repo-root
``BENCH_PR2.json``.

Knobs:

* ``REPRO_BENCH_SCALE`` scales the tuple counts (CI smoke runs 0.25).
  The >= 3x headline assertion only applies at full scale; any scale
  asserts batch is not slower than tuple-at-a-time.
* The parallel column (``workers=2``) is reported for the partitioned
  hash joins and asserted *bit-identical*, never faster -- single-core
  containers make it slower, which is fine: determinism is the claim.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.cost.counters import OperationCounters
from repro.cost.parameters import CostParameters
from repro.join import ALL_JOINS, JoinSpec
from repro.operators.aggregate import (
    AggregateFunction,
    AggregateSpec,
    hash_aggregate,
    sort_aggregate,
)
from repro.operators.projection import hash_project
from repro.operators.selection import Comparison, select
from repro.storage.disk import SimulatedDisk
from repro.workload.generator import join_inputs

from conftest import emit, emit_json, format_table

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
R_TUPLES = max(200, int(4000 * SCALE))
S_TUPLES = R_TUPLES
PAGE_BYTES = 320  # 40 x 8-byte tuples per page, the Table 2 shape
MEMORY_RATIO = 0.3
REPS = 3
MIN_SPEEDUP = 3.0 if SCALE >= 1.0 else 1.0

JOINS = ["nested-loops", "simple-hash", "grace-hash", "hybrid-hash", "sort-merge"]
PARALLEL_JOINS = {"grace-hash", "hybrid-hash"}


def build_instance(tuples: int):
    r, s = join_inputs(
        tuples, tuples, key_domain=20 * tuples, page_bytes=PAGE_BYTES
    )
    params = CostParameters(
        r_pages=r.page_count,
        s_pages=s.page_count,
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )
    memory = max(
        params.minimum_memory_pages, params.memory_for_ratio(MEMORY_RATIO)
    )
    return r, s, params, memory


def timed(fn: Callable[[], Tuple[Any, Dict[str, int]]]):
    """Best-of-REPS wall seconds plus the last run's (rows, counters)."""
    best = float("inf")
    outcome = None
    for _ in range(REPS):
        start = time.perf_counter()
        outcome = fn()
        best = min(best, time.perf_counter() - start)
    return best, outcome


def join_runner(name: str, tuples: int, **algo_kwargs):
    r, s, params, memory = build_instance(tuples)

    def run():
        algo = ALL_JOINS[name](**algo_kwargs)
        result = algo.join(
            JoinSpec(
                r=r, s=s, r_field="rkey", s_field="skey",
                memory_pages=memory, params=params,
            )
        )
        return sorted(result.relation), result.counters.as_dict()

    return run


def operator_components(r) -> List[Tuple[str, Callable[[bool], Any]]]:
    aggs = [
        AggregateSpec(AggregateFunction.COUNT),
        AggregateSpec(AggregateFunction.SUM, "rpayload"),
    ]
    mid_key = 10 * R_TUPLES
    return [
        (
            "select",
            lambda batch: (lambda c: (
                list(select(r, Comparison("rkey", "<", mid_key), c, batch=batch)),
                c.as_dict(),
            ))(OperationCounters()),
        ),
        (
            "project-distinct",
            lambda batch: (lambda c: (
                sorted(hash_project(
                    r, ["rkey"], True, c,
                    memory_pages=None, disk=SimulatedDisk(c), batch=batch,
                )),
                c.as_dict(),
            ))(OperationCounters()),
        ),
        (
            "hash-aggregate",
            lambda batch: (lambda c: (
                sorted(hash_aggregate(r, ["rkey"], aggs, c, batch=batch)),
                c.as_dict(),
            ))(OperationCounters()),
        ),
        (
            "sort-aggregate",
            lambda batch: (lambda c: (
                list(sort_aggregate(r, ["rkey"], aggs, c, batch=batch)),
                c.as_dict(),
            ))(OperationCounters()),
        ),
    ]


def test_batch_executor_speedup():
    components: List[Dict[str, Any]] = []
    total_tuple = total_batch = 0.0

    for name in JOINS:
        tuples = R_TUPLES
        t_tuple, out_tuple = timed(join_runner(name, tuples, batch=False))
        t_batch, out_batch = timed(join_runner(name, tuples, batch=True))
        assert out_batch[0] == out_tuple[0], "%s: rows diverge" % name
        assert out_batch[1] == out_tuple[1], "%s: counters diverge" % name
        entry: Dict[str, Any] = {
            "component": "join:%s" % name,
            "rows": tuples,
            "tuple_s": round(t_tuple, 6),
            "batch_s": round(t_batch, 6),
            "speedup": round(t_tuple / t_batch, 3),
            "identical_results": True,
            "identical_counters": True,
        }
        if name in PARALLEL_JOINS:
            t_par, out_par = timed(join_runner(name, tuples, batch=True, workers=2))
            assert out_par[0] == out_tuple[0], "%s: parallel rows diverge" % name
            assert out_par[1] == out_tuple[1], (
                "%s: parallel counters diverge" % name
            )
            entry["parallel_s"] = round(t_par, 6)
            entry["parallel_identical"] = True
        components.append(entry)
        total_tuple += t_tuple
        total_batch += t_batch

    r, _, _, _ = build_instance(R_TUPLES)
    for name, runner in operator_components(r):
        t_tuple, out_tuple = timed(lambda: runner(False))
        t_batch, out_batch = timed(lambda: runner(True))
        assert out_batch[0] == out_tuple[0], "%s: rows diverge" % name
        assert out_batch[1] == out_tuple[1], "%s: counters diverge" % name
        components.append({
            "component": "operator:%s" % name,
            "rows": R_TUPLES,
            "tuple_s": round(t_tuple, 6),
            "batch_s": round(t_batch, 6),
            "speedup": round(t_tuple / t_batch, 3),
            "identical_results": True,
            "identical_counters": True,
        })
        total_tuple += t_tuple
        total_batch += t_batch

    headline = total_tuple / total_batch
    payload = {
        "experiment": "bench_batch_executor",
        "scale": SCALE,
        "r_tuples": R_TUPLES,
        "s_tuples": S_TUPLES,
        "page_bytes": PAGE_BYTES,
        "memory_ratio": MEMORY_RATIO,
        "reps": REPS,
        "components": components,
        "total": {
            "tuple_s": round(total_tuple, 6),
            "batch_s": round(total_batch, 6),
            "speedup": round(headline, 3),
        },
        "threshold": {"min_speedup": MIN_SPEEDUP, "full_scale": SCALE >= 1.0},
    }
    emit_json("bench_batch_executor", payload, root_copy="BENCH_PR2.json")
    emit(
        "batch_executor",
        format_table(
            ["component", "tuple (s)", "batch (s)", "speedup"],
            [
                (c["component"], c["tuple_s"], c["batch_s"], "%.2fx" % c["speedup"])
                for c in components
            ]
            + [("TOTAL", round(total_tuple, 4), round(total_batch, 4),
                "%.2fx" % headline)],
        ),
    )

    assert headline >= MIN_SPEEDUP, (
        "batch executor %.2fx vs tuple-at-a-time; need >= %.1fx"
        % (headline, MIN_SPEEDUP)
    )
