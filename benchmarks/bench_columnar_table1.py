"""E22 -- Columnar packed pages + executable indexes (the Table 1 story).

Two claims, both measured:

**Part A -- columnar scan speedup.**  The PR-7 packed-column page layout
(``array('q')``/``array('d')`` buffers per column) rewrites the batch hot
loops of selection, projection, and aggregation to stream contiguous
buffers instead of tuple lists.  Each component runs once per layout mode
(``columnar=True`` vs the PR-2 row-view batch loops, ``columnar=False``)
and asserts identical rows *and* byte-identical OperationCounters -- the
speedup is pure interpreter mechanics, the counted cost model is
untouched.  The composite headline must clear ``MIN_SPEEDUP`` at full
scale.

**Part B -- the Table 1 access-method crossover, by measurement.**
Section 2 of the paper ranks access methods by CPU cost: an index lookup
costs a ``log2(n)`` descent plus ``s*n`` qualifying-tuple fetches (one
comparison + one TID dereference each), while a full scan pays one
predicate comparison for every tuple.  Equating the two, the index wins
below a *formula-predicted* selectivity crossover

    s* ~= comp / (comp + move)            (executed-operator charges)

(the planner's version adds the scan node's per-tuple touch, giving the
more generous ``2*comp/(comp+move)``).  This benchmark builds executable
B+-tree and AVL indexes over a packed relation and walks a selectivity
ladder, recording for every rung the wall-clock **and** the modelled
seconds of full-scan vs index-range-scan execution, then locates the
measured crossover and asserts it brackets the formula's prediction.
Point lookups (selectivity ``1/n``, far below any crossover) must beat
the full scan on wall-clock for both tree indexes.

Knobs: ``REPRO_BENCH_SCALE`` scales tuple counts (CI smoke runs 0.25);
the >= 2x Part A headline only applies at full scale.  Emits
``benchmarks/out/bench_columnar_table1.json`` and the repo-root
``BENCH_PR7.json``.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.access.avl import AVLTree
from repro.access.btree import BPlusTree
from repro.cost.counters import OperationCounters
from repro.cost.parameters import CostParameters
from repro.operators.aggregate import (
    AggregateFunction,
    AggregateSpec,
    hash_aggregate,
    sort_aggregate,
)
from repro.operators.projection import hash_project
from repro.operators.selection import Comparison, select, select_via_index
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema
from repro.workload.generator import join_inputs

from conftest import emit, emit_json, format_table

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
N_TUPLES = max(200, int(4000 * SCALE))
PAGE_BYTES = 4096  # full pages: hundreds of tuples per packed column buffer
REPS = 3
MIN_SPEEDUP = 2.0 if SCALE >= 1.0 else 1.0

#: Selectivity ladder for the range-predicate crossover walk.
LADDER = [0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0]
#: Point lookups per timing batch (amortises per-call noise).
POINT_PROBES = 64


def timed(fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Best-of-REPS wall seconds plus the last run's outcome."""
    best = float("inf")
    outcome = None
    for _ in range(REPS):
        start = time.perf_counter()
        outcome = fn()
        best = min(best, time.perf_counter() - start)
    return best, outcome


# -- Part A: columnar vs row-view batch loops ---------------------------------------


def columnar_components(r) -> List[Tuple[str, Callable[[bool], Any]]]:
    """Each component maps ``columnar`` -> (rows, counters-dict)."""
    aggs = [
        AggregateSpec(AggregateFunction.COUNT),
        AggregateSpec(AggregateFunction.SUM, "rpayload"),
    ]
    wide_aggs = aggs + [
        AggregateSpec(AggregateFunction.MIN, "rpayload"),
        AggregateSpec(AggregateFunction.MAX, "rpayload"),
        AggregateSpec(AggregateFunction.AVG, "rpayload"),
    ]
    domain = 20 * N_TUPLES

    def run_select(fraction: float, columnar: bool):
        c = OperationCounters()
        pred = Comparison("rkey", "<", int(domain * fraction))
        return list(select(r, pred, c, columnar=columnar)), c.as_dict()

    def run_project(columnar: bool):
        c = OperationCounters()
        out = hash_project(
            r, ["rkey"], False, c,
            disk=SimulatedDisk(c), columnar=columnar,
        )
        return list(out), c.as_dict()

    def run_distinct(columnar: bool):
        c = OperationCounters()
        out = hash_project(
            r, ["rkey"], True, c,
            disk=SimulatedDisk(c), columnar=columnar,
        )
        return sorted(out), c.as_dict()

    def run_hash_agg(columnar: bool):
        c = OperationCounters()
        out = hash_aggregate(r, ["rkey"], aggs, c, columnar=columnar)
        return sorted(out), c.as_dict()

    def run_scalar_agg(columnar: bool):
        c = OperationCounters()
        out = hash_aggregate(r, [], wide_aggs, c, columnar=columnar)
        return list(out), c.as_dict()

    def run_sort_agg(columnar: bool):
        c = OperationCounters()
        out = sort_aggregate(r, ["rkey"], aggs, c, columnar=columnar)
        return list(out), c.as_dict()

    return [
        ("select-5pct", lambda col: run_select(0.05, col)),
        ("select-50pct", lambda col: run_select(0.5, col)),
        ("project", run_project),
        ("project-distinct", run_distinct),
        ("hash-aggregate", run_hash_agg),
        ("scalar-aggregate", run_scalar_agg),
        ("sort-aggregate", run_sort_agg),
    ]


# -- Part B: executable indexes vs full scans ---------------------------------------


def build_indexed_relation():
    """A packed two-column relation with B+-tree and AVL indexes on key.

    Keys are a shuffled permutation of ``0..n-1`` so a range predicate
    ``key < c`` has selectivity exactly ``c/n`` and the trees are built
    from unordered input (the honest case).
    """
    schema = Schema([
        Field("key", DataType.INTEGER),
        Field("payload", DataType.FLOAT),
    ])
    relation = Relation("indexed", schema, PAGE_BYTES)
    keys = list(range(N_TUPLES))
    random.Random(7).shuffle(keys)
    for k in keys:
        relation.insert_unchecked((k, float(k) * 0.5))

    trees = {}
    for name, factory in (("btree", BPlusTree), ("avl", AVLTree)):
        counters = OperationCounters()
        index = factory(counters=counters)
        for tid, row in relation.scan():
            index.insert(row[0], tid)
        trees[name] = (index, counters)
    return relation, trees


def measured_access(relation, trees, params: CostParameters):
    """Walk the selectivity ladder; return (ladder rows, point-lookup row)."""
    n = relation.cardinality

    def scan_run(pred):
        c = OperationCounters()
        out = select(relation, pred, c)
        return sorted(out), c.cost(params)

    def index_run(name, pred):
        index, tree_counters = trees[name]
        c = OperationCounters()
        before = tree_counters.cost(params)
        out = select_via_index(relation, index, pred, c)
        cost = c.cost(params) + tree_counters.cost(params) - before
        return sorted(out), cost

    ladder_rows = []
    for s in LADDER:
        pred = Comparison("key", "<", int(s * n))
        scan_t, (scan_rows, scan_cost) = timed(lambda: scan_run(pred))
        entry: Dict[str, Any] = {
            "selectivity": s,
            "matching_rows": int(s * n),
            "scan_wall_s": round(scan_t, 6),
            "scan_model_s": round(scan_cost, 6),
        }
        for name in ("btree", "avl"):
            idx_t, (idx_rows, idx_cost) = timed(lambda: index_run(name, pred))
            assert idx_rows == scan_rows, (
                "%s range scan at s=%.2f returned different rows" % (name, s)
            )
            entry["%s_wall_s" % name] = round(idx_t, 6)
            entry["%s_model_s" % name] = round(idx_cost, 6)
        ladder_rows.append(entry)

    # Point lookups: POINT_PROBES equality probes spread over the domain.
    probe_keys = [int(i * n / POINT_PROBES) for i in range(POINT_PROBES)]

    def point_scan():
        c = OperationCounters()
        rows = []
        for k in probe_keys:
            rows.extend(select(relation, Comparison("key", "=", k), c))
        return sorted(rows), c.cost(params)

    def point_index(name):
        index, tree_counters = trees[name]
        c = OperationCounters()
        before = tree_counters.cost(params)
        rows = []
        for k in probe_keys:
            rows.extend(
                select_via_index(relation, index, Comparison("key", "=", k), c)
            )
        cost = c.cost(params) + tree_counters.cost(params) - before
        return sorted(rows), cost

    scan_t, (scan_rows, scan_cost) = timed(point_scan)
    point = {
        "probes": POINT_PROBES,
        "scan_wall_s": round(scan_t, 6),
        "scan_model_s": round(scan_cost, 6),
    }
    for name in ("btree", "avl"):
        idx_t, (idx_rows, idx_cost) = timed(lambda: point_index(name))
        assert idx_rows == scan_rows, "%s point lookups diverge" % name
        point["%s_wall_s" % name] = round(idx_t, 6)
        point["%s_model_s" % name] = round(idx_cost, 6)
    return ladder_rows, point


def model_crossover(ladder_rows: List[Dict[str, Any]], tree: str) -> float:
    """First ladder selectivity where the modelled scan beats the index."""
    for entry in ladder_rows:
        if entry["scan_model_s"] <= entry["%s_model_s" % tree]:
            return entry["selectivity"]
    return float("inf")


def test_columnar_speedup_and_table1_crossover():
    # ---- Part A --------------------------------------------------------------------
    r, _ = join_inputs(
        N_TUPLES, N_TUPLES, key_domain=20 * N_TUPLES, page_bytes=PAGE_BYTES
    )
    assert r.storage_stats()["packed_columns"] > 0, "pages are not packed"

    components: List[Dict[str, Any]] = []
    total_rows_mode = total_columnar = 0.0
    for name, runner in columnar_components(r):
        t_rows, out_rows = timed(lambda: runner(False))
        t_col, out_col = timed(lambda: runner(True))
        assert out_col[0] == out_rows[0], "%s: rows diverge" % name
        assert out_col[1] == out_rows[1], "%s: counters diverge" % name
        components.append({
            "component": name,
            "rows": N_TUPLES,
            "row_view_s": round(t_rows, 6),
            "columnar_s": round(t_col, 6),
            "speedup": round(t_rows / t_col, 3),
            "identical_results": True,
            "identical_counters": True,
        })
        total_rows_mode += t_rows
        total_columnar += t_col
    headline = total_rows_mode / total_columnar

    # ---- Part B --------------------------------------------------------------------
    params = CostParameters()
    relation, trees = build_indexed_relation()
    stats = relation.storage_stats()
    assert stats["packed_columns"] == stats["total_columns"] > 0
    ladder_rows, point = measured_access(relation, trees, params)

    # The formula-predicted crossovers (see module docstring): executed
    # operators charge comp per scanned tuple vs (comp + move) per
    # qualifying tuple; the planner's ScanNode adds one more comp touch.
    predicted_exec = params.comp / (params.comp + params.move)
    predicted_planner = 2 * params.comp / (params.comp + params.move)

    crossovers = {t: model_crossover(ladder_rows, t) for t in ("btree", "avl")}
    for tree, crossing in crossovers.items():
        # Below the predicted crossover the index must win on the model...
        for entry in ladder_rows:
            if entry["selectivity"] <= 0.05:
                assert entry["%s_model_s" % tree] < entry["scan_model_s"], (
                    "%s model should win at s=%.2f" % (tree, entry["selectivity"])
                )
            # ...and well above it the scan must win.
            if entry["selectivity"] >= 0.5:
                assert entry["scan_model_s"] < entry["%s_model_s" % tree], (
                    "scan model should win at s=%.2f" % entry["selectivity"]
                )
        # The measured crossover brackets the formula's prediction.
        assert 0.05 < crossing <= 0.5, (
            "%s crossover %.3f escaped the predicted band around %.3f"
            % (tree, crossing, predicted_exec)
        )

    # Point lookups (selectivity 1/n) sit far below any crossover: the
    # trees must beat the full scan on wall clock, not just on the model.
    for tree in ("btree", "avl"):
        assert point["%s_wall_s" % tree] < point["scan_wall_s"], (
            "%s point lookups (%.6fs) should beat full scans (%.6fs)"
            % (tree, point["%s_wall_s" % tree], point["scan_wall_s"])
        )
        assert point["%s_model_s" % tree] < point["scan_model_s"]

    payload = {
        "experiment": "bench_columnar_table1",
        "scale": SCALE,
        "tuples": N_TUPLES,
        "page_bytes": PAGE_BYTES,
        "reps": REPS,
        "columnar": {
            "components": components,
            "total": {
                "row_view_s": round(total_rows_mode, 6),
                "columnar_s": round(total_columnar, 6),
                "speedup": round(headline, 3),
            },
            "threshold": {"min_speedup": MIN_SPEEDUP, "full_scale": SCALE >= 1.0},
        },
        "table1": {
            "storage_stats": stats,
            "ladder": ladder_rows,
            "point_lookups": point,
            "predicted_crossover_exec": round(predicted_exec, 4),
            "predicted_crossover_planner": round(predicted_planner, 4),
            "measured_model_crossover": crossovers,
        },
    }
    emit_json("bench_columnar_table1", payload, root_copy="BENCH_PR7.json")
    emit(
        "columnar_table1",
        format_table(
            ["component", "row-view (s)", "columnar (s)", "speedup"],
            [
                (c["component"], c["row_view_s"], c["columnar_s"],
                 "%.2fx" % c["speedup"])
                for c in components
            ]
            + [("TOTAL", round(total_rows_mode, 4), round(total_columnar, 4),
                "%.2fx" % headline)],
        )
        + [""]
        + format_table(
            ["s", "scan model", "btree model", "avl model", "scan wall",
             "btree wall", "avl wall"],
            [
                (e["selectivity"], e["scan_model_s"], e["btree_model_s"],
                 e["avl_model_s"], e["scan_wall_s"], e["btree_wall_s"],
                 e["avl_wall_s"])
                for e in ladder_rows
            ],
        )
        + [
            "",
            "predicted crossover (exec charges)  s* = %.3f" % predicted_exec,
            "predicted crossover (planner)       s* = %.3f" % predicted_planner,
            "measured model crossover            btree %.3f  avl %.3f"
            % (crossovers["btree"], crossovers["avl"]),
        ],
    )

    assert headline >= MIN_SPEEDUP, (
        "columnar executor %.2fx vs row-view batch; need >= %.1fx"
        % (headline, MIN_SPEEDUP)
    )
