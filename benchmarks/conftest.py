"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, asserts
its qualitative claims, and emits the regenerated rows both to stdout (run
with ``-s`` to see them) and to ``benchmarks/out/<experiment>.txt`` so
EXPERIMENTS.md can be cross-checked against fresh numbers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def emit(experiment: str, lines: Iterable[str]) -> str:
    """Print and persist an experiment's regenerated rows."""
    text = "\n".join(lines)
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, experiment + ".txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print()
    print("=== %s ===" % experiment)
    print(text)
    return path


def emit_json(
    experiment: str,
    payload: Dict[str, Any],
    root_copy: Optional[str] = None,
) -> str:
    """Persist a machine-readable result to ``benchmarks/out/<experiment>.json``.

    ``root_copy`` optionally names a repo-root file (e.g. ``BENCH_PR2.json``)
    that receives the same payload, for results that are committed alongside
    the code they measure.
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = os.path.join(OUT_DIR, experiment + ".json")
    with open(path, "w") as f:
        f.write(text)
    if root_copy is not None:
        with open(os.path.join(REPO_ROOT, root_copy), "w") as f:
            f.write(text)
    return path


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Plain fixed-width table rendering."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return out


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)
