"""E7 -- Section 5.4: stable-memory log compression.

"A transaction's space in the log can be significantly reduced if only new
values are written to the disk based log (approximately half of the size of
the log stores the old values of modified data)."

With the default sizing an update record is 24 bytes of header plus two
60-byte images; dropping the old image removes 60/144 = 42% of the update
bytes, diluted slightly by begin/commit records.  The benchmark runs the
same banking history with and without compression and checks the byte
accounting end to end, including that recovery still works from the
compressed log (the old values survive in stable memory until durably
unnecessary -- losers are recovered from stable memory itself).
"""

import pytest

from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.restart import crash, recover, replay_committed
from repro.recovery.stable_memory import StableMemory
from repro.recovery.state import DatabaseState
from repro.recovery.transactions import TransactionEngine
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue
from repro.workload.banking import BankingWorkload

from conftest import emit, format_table


def run(compress, horizon=3.0):
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(5000, records_per_page=64, initial_value=100)
    lm = LogManager(
        queue,
        policy=CommitPolicy.STABLE,
        stable=StableMemory(64 * 1024 * 1024),
        compress=compress,
    )
    engine = TransactionEngine(state, queue, lm)
    bank = BankingWorkload(5000, seed=23)
    t = 0.0
    while t < horizon:
        script, _ = bank.next_script()
        engine.submit_at(t, script)
        t += 0.00125
    queue.run_until(horizon)
    cs = crash(engine)
    out = recover(cs, initial_value=100)
    oracle = replay_committed(cs, initial_value=100)
    return {
        "committed": engine.committed_count,
        "appended": lm.bytes_appended,
        "on_disk": lm.bytes_written_to_disk,
        "pages": lm.log.pages_written,
        "recovered_ok": out.state.values == oracle.values,
    }


def test_compression_halves_update_volume(benchmark):
    def both():
        return run(compress=False), run(compress=True)

    plain, packed = benchmark.pedantic(both, rounds=1, iterations=1)

    lines = format_table(
        ["config", "committed", "bytes appended", "bytes on disk", "pages"],
        [
            ("old+new values", plain["committed"], plain["appended"],
             plain["on_disk"], plain["pages"]),
            ("new values only", packed["committed"], packed["appended"],
             packed["on_disk"], packed["pages"]),
        ],
    )
    ratio = packed["on_disk"] / plain["on_disk"]
    lines.append("")
    lines.append("disk-log ratio (compressed/full): %.2f" % ratio)
    emit("log_compression", lines)

    assert plain["recovered_ok"] and packed["recovered_ok"]
    assert plain["committed"] == packed["committed"]
    # Old values are ~42% of update bytes; with begin/commit overhead the
    # disk log shrinks to ~60-70% of the full log.
    assert 0.55 < ratio < 0.75
    assert packed["pages"] < plain["pages"]
