"""E8 -- Sections 5.3/5.5: checkpoint cadence vs recovery time.

Two claims:

1. Checkpointing bounds redo: with the stable dirty-page table, recovery
   starts at the oldest first-update LSN of a still-dirty page, so more
   frequent checkpoints mean fewer log records scanned and faster restart.
2. Without the table (or without checkpoints at all) the whole log replays.

The benchmark runs the same banking history while sweeping the checkpoint
interval, crashes, recovers, and reports simulated recovery time, records
scanned, and correctness against the replay oracle.
"""

import pytest

from repro.recovery.checkpoint import Checkpointer
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.restart import crash, recover, replay_committed
from repro.recovery.state import DatabaseState, DiskSnapshot
from repro.recovery.transactions import TransactionEngine
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue
from repro.workload.banking import BankingWorkload

from conftest import emit, format_table

HORIZON = 4.0
INTERVALS = [None, 2.0, 0.5, 0.1]  # None = never checkpoint


def run(interval):
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(2000, records_per_page=64, initial_value=100)
    lm = LogManager(queue, policy=CommitPolicy.GROUP)
    engine = TransactionEngine(state, queue, lm)
    snap = DiskSnapshot()
    ck = Checkpointer(engine, snap, interval=interval or 1.0)
    if interval is not None:
        ck.start()
    bank = BankingWorkload(2000, seed=31)
    t = 0.0
    while t < HORIZON:
        script, _ = bank.next_script()
        engine.submit_at(t, script)
        t += 0.001
    queue.run_until(HORIZON)
    cs = crash(engine, ck)
    out = recover(cs, initial_value=100)
    oracle = replay_committed(cs, initial_value=100)
    return {
        "committed": engine.committed_count,
        "snapshot_pages": cs.snapshot.page_count,
        "scanned": out.log_records_scanned,
        "redone": out.updates_redone,
        "seconds": out.seconds,
        "ok": out.state.values == oracle.values,
    }


def test_checkpoint_interval_sweep(benchmark):
    def sweep():
        return {i: run(i) for i in INTERVALS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = format_table(
        ["checkpoint interval", "snapshot pages", "log records scanned",
         "updates redone", "recovery (s)"],
        [
            ("never" if i is None else "%.1f s" % i,
             r["snapshot_pages"], r["scanned"], r["redone"],
             "%.3f" % r["seconds"])
            for i, r in results.items()
        ],
    )
    emit("recovery_time_vs_checkpoint_interval", lines)

    assert all(r["ok"] for r in results.values())

    never = results[None]
    coarse = results[2.0]
    frequent = results[0.5]
    saturated = results[0.1]

    # No checkpoints: recovery replays everything committed.
    assert never["snapshot_pages"] == 0
    assert never["scanned"] >= coarse["scanned"] >= frequent["scanned"]
    # Frequent (but disk-feasible) checkpointing shortens redo sharply.
    assert frequent["scanned"] < 0.35 * never["scanned"]
    assert frequent["redone"] < never["redone"]
    # Sweeping faster than the snapshot disk can absorb (a full sweep
    # takes 32 pages x 10 ms = 0.32 s > 0.1 s) queues copies and *hurts*
    # the redo bound -- "the disk arms are kept as busy as possible" is a
    # capacity statement, not an invitation to outrun the arms.
    assert saturated["scanned"] >= frequent["scanned"]
    assert saturated["scanned"] <= never["scanned"]


def test_dirty_page_table_bounds_redo(benchmark):
    """Section 5.5: the stable table's minimum entry is where recovery
    starts; disabling it forces a full-log scan with identical results."""

    def compare():
        queue = EventQueue(SimulatedClock())
        state = DatabaseState(2000, records_per_page=64, initial_value=100)
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        engine = TransactionEngine(state, queue, lm)
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=0.2)
        ck.start()
        bank = BankingWorkload(2000, seed=33)
        t = 0.0
        while t < 2.0:
            script, _ = bank.next_script()
            engine.submit_at(t, script)
            t += 0.001
        queue.run_until(2.0)
        cs = crash(engine, ck)
        with_table = recover(cs, initial_value=100)
        without = recover(cs, initial_value=100, use_dirty_page_table=False)
        return with_table, without

    with_table, without = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert with_table.state.values == without.state.values
    assert with_table.log_records_scanned < without.log_records_scanned
    assert with_table.seconds <= without.seconds
