"""Ablation -- Section 3.2's TID-key-pair question.

"If only TIDs or TID-Key pairs are used, there is a significant space
savings... the decision affects our algorithms only in the values assigned
to certain parameters.  For example, if only TID-key pairs are used then
the parameter measuring the time for a move will be smaller."

The ablation re-costs Figure 1 with the move/swap parameters scaled down
(TID-key pairs are a fraction of a 100-byte tuple) and the fudge factor
relaxed (smaller entries pack tighter).  The conclusions must be invariant:
hybrid still dominates, crossovers keep their order -- the reason the paper
could "avoid making a choice".
"""

import pytest

from repro.cost.join_model import JoinCostModel
from repro.cost.parameters import TABLE2_DEFAULTS

from conftest import emit, format_table

#: TID (4B) + key (8B) = 12 bytes vs a 100-byte tuple: moves ~8x cheaper.
TID_PAIRS = TABLE2_DEFAULTS.with_updates(move=2.5e-6, swap=7.5e-6)

RATIOS = [0.05, 0.1, 0.3, 0.6, 1.0]


def costs_at(params, ratio):
    model = JoinCostModel(params)
    memory = max(params.minimum_memory_pages, params.memory_for_ratio(ratio))
    return model.costs(memory)


def test_conclusions_invariant_under_tid_pairs(benchmark):
    def run():
        rows = []
        for ratio in RATIOS:
            whole = costs_at(TABLE2_DEFAULTS, ratio)
            tids = costs_at(TID_PAIRS, ratio)
            rows.append((ratio, whole, tids))
        return rows

    rows = benchmark(run)

    lines = format_table(
        ["ratio", "hybrid (tuples)", "hybrid (TID pairs)",
         "winner (tuples)", "winner (TID pairs)"],
        [
            (
                ratio,
                "%.0f s" % whole["hybrid-hash"],
                "%.0f s" % tids["hybrid-hash"],
                min(whole, key=whole.get),
                min(tids, key=tids.get),
            )
            for ratio, whole, tids in rows
        ],
    )
    emit("ablation_tid_pairs", lines)

    for ratio, whole, tids in rows:
        # The decisive conclusion is representation-invariant: a hash
        # algorithm wins, and hybrid is (within the simple/hybrid tie
        # region around their crossover) at worst a whisker from the best.
        for costs in (whole, tids):
            winner = min(costs, key=costs.get)
            assert winner != "sort-merge", ratio
            assert costs["hybrid-hash"] <= costs[winner] * 1.02, ratio
        # Hybrid still dominates GRACE.
        assert tids["hybrid-hash"] <= tids["grace-hash"] * 1.001
        # Cheaper moves help every algorithm; sort-merge (swap-heavy)
        # gains the most in absolute terms but still loses.
        assert tids["sort-merge"] < whole["sort-merge"]
        assert tids["sort-merge"] > tids["hybrid-hash"]


def test_tid_fetch_cost_caveat(benchmark):
    """The paper's counterweight: with TIDs, "every time a pair of joined
    tuples is output, the original tuples must be retrieved" -- at one
    random IO per result tuple, a high-output join erases the savings."""

    def run():
        params = TABLE2_DEFAULTS
        model_whole = costs_at(params, 0.5)["hybrid-hash"]
        model_tids = costs_at(TID_PAIRS, 0.5)["hybrid-hash"]
        # Suppose the join emits 100k result tuples and the base tuples
        # are disk resident: two random fetches per result pair.
        fetch_penalty = 100_000 * 2 * params.io_rand
        return model_whole, model_tids, model_tids + fetch_penalty

    whole, tids, tids_with_fetch = benchmark(run)
    emit(
        "ablation_tid_fetch",
        [
            "whole tuples:             %8.0f s" % whole,
            "TID pairs (no fetch):     %8.0f s" % tids,
            "TID pairs + 100k fetches: %8.0f s" % tids_with_fetch,
        ],
    )
    assert tids < whole
    assert tids_with_fetch > whole  # "can exceed the savings"
