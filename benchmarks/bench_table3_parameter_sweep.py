"""E4 -- Table 3: robustness sweep of the Figure 1 conclusions.

"We have generated similar graphs for the range of parameter values shown
in Table 3.  For each of these values we observed the same qualitative
shape and relative positioning of the different algorithms."  This
benchmark re-runs the Figure 1 geometry checks over a sample of the Table 3
box and over its corner lattice, counting how many settings preserve each
qualitative property.
"""

import pytest

from repro.cost.join_model import (
    JoinWorkload,
    grace_hash_cost,
    hybrid_hash_cost,
    simple_hash_cost,
    sort_merge_cost,
)
from repro.cost.parameters import table3_sample

from conftest import emit, format_table

SWEEP_SIZE = 60


def qualitative_shape_holds(params):
    """The Figure 1 invariants, evaluated at one parameter setting."""
    import math

    floor = params.minimum_memory_pages
    full = math.ceil(params.r_pages * params.fudge)
    if full <= floor:
        return None  # degenerate instance; R's table below the 2-pass floor
    mid = max(floor, full // 3)

    def costs(memory):
        w = JoinWorkload(params=params, memory_pages=memory)
        return {
            "sort": sort_merge_cost(w),
            "simple": simple_hash_cost(w),
            "grace": grace_hash_cost(w),
            "hybrid": hybrid_hash_cost(w),
        }

    low, middle, high = costs(floor), costs(mid), costs(full)
    checks = {
        "hybrid<=grace": all(
            c["hybrid"] <= c["grace"] * 1.001 for c in (low, middle, high)
        ),
        "hash beats sort": all(
            min(c["hybrid"], c["simple"], c["grace"]) < c["sort"]
            for c in (low, middle, high)
        ),
        "simple worst at floor": low["simple"] >= low["hybrid"],
        "hybrid monotone": low["hybrid"] >= middle["hybrid"] >= high["hybrid"] * 0.999,
        "simple==hybrid at full": abs(high["simple"] - high["hybrid"])
        <= 1e-6 * max(1.0, high["hybrid"]),
    }
    return checks


def test_table3_sweep_preserves_figure1(benchmark):
    settings = table3_sample(SWEEP_SIZE, seed=1984)

    def sweep():
        tallies = {}
        evaluated = 0
        for params in settings:
            checks = qualitative_shape_holds(params)
            if checks is None:
                continue
            evaluated += 1
            for name, ok in checks.items():
                tallies.setdefault(name, 0)
                tallies[name] += bool(ok)
        return evaluated, tallies

    evaluated, tallies = benchmark(sweep)

    lines = format_table(
        ["invariant", "holds", "of"],
        [(name, count, evaluated) for name, count in sorted(tallies.items())],
    )
    emit("table3_parameter_sweep", lines)

    assert evaluated >= SWEEP_SIZE * 0.8
    for name, count in tallies.items():
        # The paper reports the same shape at every setting; allow a tiny
        # slack for degenerate corners of the sampled box.
        assert count >= 0.95 * evaluated, (name, count, evaluated)


def test_table3_corner_lattice(benchmark):
    """The 2^8 corner lattice of the Table 3 box, thinned to keep the
    bench fast, must preserve hybrid's dominance over GRACE."""
    from repro.cost.parameters import table3_grid

    corners = [p for i, p in enumerate(table3_grid(2)) if i % 4 == 0]

    def run():
        violations = 0
        evaluated = 0
        for params in corners:
            checks = qualitative_shape_holds(params)
            if checks is None:
                continue
            evaluated += 1
            violations += not checks["hybrid<=grace"]
        return evaluated, violations

    evaluated, violations = benchmark(run)
    assert evaluated > 30
    assert violations == 0
