"""Ablation -- Section 6's conjecture: versioning beats locking for
read-heavy memory-resident workloads.

"While locking is generally accepted to be the algorithm of choice for
disk resident databases, a versioning mechanism [REED83] may provide
superior performance for memory resident systems."

Setup: transfer writers at a fixed arrival rate, plus periodic *audits*
that read a wide slice of the database.

* **Locking audits** run as ordinary transactions: each acquires hundreds
  of shared locks, stalling every writer that touches an audited account
  until the audit pre-commits, and stalling itself behind active writers.
* **Versioned audits** pin a snapshot and read it lock-free; writers never
  see them.

The metric is writer throughput and audit interference; the conjecture
holds if versioned audits leave writer throughput at its no-audit baseline
while locking audits depress it.
"""

import random

import pytest

from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.state import DatabaseState
from repro.recovery.transactions import TransactionEngine
from repro.recovery.versioning import VersionManager
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue

from conftest import emit, format_table

ACCOUNTS = 400
HORIZON = 3.0
AUDIT_WIDTH = 380
AUDIT_EVERY = 0.04


def run(audit_mode):
    """audit_mode: 'none' | 'locking' | 'versioned'."""
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(ACCOUNTS, records_per_page=64, initial_value=100)
    lm = LogManager(queue, policy=CommitPolicy.GROUP)
    engine = TransactionEngine(state, queue, lm)
    versions = VersionManager(engine) if audit_mode == "versioned" else None

    rng = random.Random(55)
    t = 0.0
    while t < HORIZON:
        a, b = sorted(rng.sample(range(ACCOUNTS), 2))
        amt = rng.randrange(1, 10)
        engine.submit_at(
            t,
            [
                ("write", a, lambda v, amt=amt: v - amt),
                ("write", b, lambda v, amt=amt: v + amt),
            ],
        )
        t += 0.001

    audits_consistent = []
    audit_rng = random.Random(56)
    # An audit reads AUDIT_WIDTH records in chunks with think time between
    # chunks -- a long-running read transaction (~38 ms) in both modes.
    CHUNK = 20
    THINK = 0.002

    def audit():
        lo = audit_rng.randrange(ACCOUNTS - AUDIT_WIDTH)
        ids = list(range(lo, lo + AUDIT_WIDTH))
        if audit_mode == "versioned":
            # Lock-free: pin a snapshot, read it chunk by chunk over the
            # same simulated duration, then release.
            snap = versions.snapshot()
            collected = []

            def read_chunk(offset=0):
                chunk = ids[offset:offset + CHUNK]
                collected.extend(snap.read_many(chunk))
                if offset + CHUNK < len(ids):
                    queue.schedule(
                        THINK, lambda: read_chunk(offset + CHUNK),
                        label="versioned audit chunk",
                    )
                else:
                    audits_consistent.append(sum(collected))
                    snap.release()
                    versions.prune()

            read_chunk()
        elif audit_mode == "locking":
            script = []
            for offset in range(0, len(ids), CHUNK):
                for i in ids[offset:offset + CHUNK]:
                    script.append(("read", i))
                script.append(("pause", THINK))
            engine.submit(script)

    if audit_mode != "none":
        at = AUDIT_EVERY
        while at < HORIZON:
            queue.schedule_at(at, audit, label="audit")
            at += AUDIT_EVERY

    queue.run_until(HORIZON)

    writers = [x for x in engine.committed if len(x.script) == 2]
    return {
        "writer_tps": len(writers) / HORIZON,
        "writer_latency_ms": 1000
        * (
            sum(w.latency for w in writers) / len(writers) if writers else 0.0
        ),
        "deadlocks": engine.deadlocks_resolved,
        "versions": versions.live_versions if versions else 0,
    }


def test_versioning_preserves_writer_throughput(benchmark):
    def all_modes():
        return {mode: run(mode) for mode in ("none", "locking", "versioned")}

    results = benchmark.pedantic(all_modes, rounds=1, iterations=1)

    lines = format_table(
        ["audit mode", "writer tps", "writer latency (ms)"],
        [
            (mode, "%.0f" % r["writer_tps"], "%.1f" % r["writer_latency_ms"])
            for mode, r in results.items()
        ],
    )
    emit("ablation_versioning", lines)

    baseline = results["none"]["writer_tps"]
    locking = results["locking"]["writer_tps"]
    versioned = results["versioned"]["writer_tps"]

    # Lock-free audits leave writers exactly at baseline.
    assert versioned > 0.95 * baseline
    assert results["versioned"]["writer_latency_ms"] == pytest.approx(
        results["none"]["writer_latency_ms"], rel=0.05
    )
    # Locking audits interfere: with arrivals below saturation the damage
    # shows up as latency (writers queue behind the audit's shared locks
    # for most of its ~38 ms lifetime) rather than lost throughput.
    assert locking <= versioned
    assert results["locking"]["writer_latency_ms"] > 1.5 * (
        results["versioned"]["writer_latency_ms"]
    )


def test_versioned_audits_always_balance(benchmark):
    """Every snapshot audit over the whole database sums to the invariant
    total -- transaction consistency without a single lock."""

    def run_audited():
        queue = EventQueue(SimulatedClock())
        state = DatabaseState(ACCOUNTS, records_per_page=64, initial_value=100)
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        engine = TransactionEngine(state, queue, lm)
        versions = VersionManager(engine)
        rng = random.Random(57)
        totals = []

        t = 0.0
        while t < 1.0:
            a, b = sorted(rng.sample(range(ACCOUNTS), 2))
            engine.submit_at(
                t,
                [("write", a, lambda v: v - 3), ("write", b, lambda v: v + 3)],
            )
            t += 0.001

        def audit():
            with versions.snapshot() as snap:
                totals.append(snap.total())

        at = 0.03
        while at < 1.0:
            queue.schedule_at(at, audit, label="audit")
            at += 0.03
        queue.run_until(1.0)
        return totals

    totals = benchmark.pedantic(run_audited, rounds=1, iterations=1)
    assert totals
    assert all(total == ACCOUNTS * 100 for total in totals)
