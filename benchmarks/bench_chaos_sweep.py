"""E-chaos -- the fault-injection sweep as a measured artifact.

Not one of the paper's tables: this regenerates the *testing* claim the
recovery ladder rests on (see docs/CHAOS.md).  For each Section 5 commit
discipline it counts the scenario's schedulable crash points, runs the
exhaustive sweep (one full run + recovery + six invariant checks per
point), and reports the sweep rate in crash points per second of wall
time -- the number that says whether exhaustive chaos testing is cheap
enough to sit in tier-1 CI (it is: hundreds of crash-recover-verify
cycles per second).
"""

import time

import pytest

from repro.chaos import (
    FaultInjector,
    ScenarioConfig,
    exhaustive_sweep,
    profile_points,
    seeded_sweep,
)
from repro.recovery.log_manager import CommitPolicy

from conftest import emit, format_table

STACKS = [
    ("conventional", CommitPolicy.CONVENTIONAL, 1),
    ("group", CommitPolicy.GROUP, 1),
    ("group x3 dev", CommitPolicy.GROUP, 3),
    ("stable", CommitPolicy.STABLE, 1),
]
SEEDS = range(40)


def sweep_one(policy, devices):
    config = ScenarioConfig(policy=policy, devices=devices)
    points = profile_points(config)
    start = time.perf_counter()
    exhaustive = exhaustive_sweep(config, points=points)
    exhaustive_wall = time.perf_counter() - start
    start = time.perf_counter()
    seeded = seeded_sweep(config, SEEDS)
    seeded_wall = time.perf_counter() - start
    return {
        "points": points,
        "exhaustive": exhaustive,
        "exhaustive_wall": exhaustive_wall,
        "rate": exhaustive.runs / exhaustive_wall,
        "seeded": seeded,
        "seeded_wall": seeded_wall,
    }


def test_chaos_sweep_rate(benchmark):
    def run_all():
        return {name: sweep_one(p, d) for name, p, d in STACKS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = format_table(
        ["stack", "crash points", "invariant checks", "sweep (s)",
         "points/s", "seeded faults (delay/tear/drop)"],
        [
            (
                name,
                r["points"],
                r["exhaustive"].invariants_checked,
                "%.2f" % r["exhaustive_wall"],
                "%.0f" % r["rate"],
                "%d/%d/%d" % (
                    r["seeded"].delays_injected,
                    r["seeded"].pages_torn,
                    r["seeded"].checkpoint_writes_dropped,
                ),
            )
            for name, r in results.items()
        ],
    )
    emit("chaos_sweep_rate", lines)

    for name, r in results.items():
        # Correctness first: every crash point recovered cleanly.
        assert r["exhaustive"].ok, r["exhaustive"].summary()
        assert r["seeded"].ok, r["seeded"].summary()
        assert r["exhaustive"].crashes == r["points"]
        # All six invariants ran at every point.
        assert r["exhaustive"].invariants_checked == 6 * r["points"]

    # The sweep must be CI-cheap: comfortably > 25 crash-recover-verify
    # cycles per second even on slow machines (typically hundreds).
    assert all(r["rate"] > 25 for r in results.values())
    # Forcing the log on every commit makes far more dispatch points than
    # group commit's shared pages -- the same arithmetic as the paper's
    # 100 -> 1000 tps ladder, seen through the crash-point counter.
    assert results["conventional"]["points"] > results["group"]["points"]
    # Synchronous stable-memory appends are each a durability transition,
    # so the stable stack exposes more points than buffered group commit.
    assert results["stable"]["points"] > results["group"]["points"]
    # The seeded schedules actually exercised the fault arsenal.
    total_faults = sum(
        r["seeded"].delays_injected + r["seeded"].pages_torn +
        r["seeded"].checkpoint_writes_dropped
        for r in results.values()
    )
    assert total_faults > 0


def test_profiling_run_is_stable(benchmark):
    """The point count is a pure function of the scenario -- the property
    that lets sweeps and benchmarks reuse one profiling run."""

    def profile_twice():
        config = ScenarioConfig()
        return profile_points(config), profile_points(config)

    a, b = benchmark.pedantic(profile_twice, rounds=1, iterations=1)
    assert a == b > 0
