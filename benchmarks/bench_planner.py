"""E11 -- Section 4: access planning with large memory.

Claims under test:

1. the cost-based join-algorithm choice lands on hashing at every memory
   grant above the two-pass floor (and on hybrid hash where it is not tied
   with one-pass simple hash);
2. selection pushdown + most-selective-first ordering beats the naive plan
   (scan everything, join, filter last) by a wide modelled-cost margin;
3. because hash plans are insensitive to input order, the planner needs no
   interesting-order bookkeeping -- equivalent plans differing only in
   input order cost the same.
"""

import random

import pytest

from repro.cost.counters import OperationCounters
from repro.cost.parameters import TABLE2_DEFAULTS
from repro.join import ALL_JOINS, JoinSpec
from repro.operators.selection import Comparison, select
from repro.planner.plan import JoinNode, PlanContext
from repro.planner.planner import Planner, PlannerConfig
from repro.planner.query import JoinClause, Query
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema

from conftest import emit, format_table


def build_catalog():
    cat = Catalog()
    rng = random.Random(9)
    customers = Relation(
        "customers",
        make_schema(("cust_id", DataType.INTEGER), ("region", DataType.INTEGER)),
        256,
    )
    for i in range(2000):
        customers.insert_unchecked((i, i % 50))
    cat.register(customers)
    orders = Relation(
        "orders",
        make_schema(
            ("order_id", DataType.INTEGER),
            ("cust", DataType.INTEGER),
            ("total", DataType.INTEGER),
        ),
        256,
    )
    for i in range(10_000):
        orders.insert_unchecked((i, rng.randrange(2000), rng.randrange(1000)))
    cat.register(orders)
    for name in cat.relations():
        cat.analyze(name)
    return cat


QUERY = Query(
    tables=["orders", "customers"],
    predicates=[("customers", Comparison("region", "=", 7))],
    joins=[JoinClause("orders", "cust", "customers", "cust_id")],
)

# Pushdown showcase: the selective predicate sits on the *probe* side, so
# pushing it below the join shrinks the dominant ||S|| probe term.
PUSHDOWN_QUERY = Query(
    tables=["orders", "customers"],
    predicates=[("orders", Comparison("total", "<", 10))],  # ~1% of orders
    joins=[JoinClause("orders", "cust", "customers", "cust_id")],
)


def test_planner_chooses_hash_joins(benchmark):
    cat = build_catalog()

    def plan_over_memory():
        choices = {}
        for memory in (64, 256, 1024, 4096):
            planner = Planner(cat, PlannerConfig(memory_pages=memory))
            plan = planner.plan(QUERY)
            node = plan
            while not isinstance(node, JoinNode):
                node = node.children()[0]
            choices[memory] = node.algorithm
        return choices

    choices = benchmark(plan_over_memory)
    emit(
        "planner_algorithm_choice",
        ["|M|=%4d pages  ->  %s" % (m, a) for m, a in sorted(choices.items())],
    )
    assert all("hash" in a for a in choices.values())
    assert choices[4096] == "hybrid-hash"


def test_pushdown_beats_naive_plan(benchmark):
    cat = build_catalog()
    planner = Planner(cat, PlannerConfig(memory_pages=1024))

    def run_both():
        # Optimized: planner pushes total<10 below the join, shrinking the
        # probe input to ~1% of orders.
        ctx = PlanContext(catalog=cat, memory_pages=1024,
                          params=TABLE2_DEFAULTS,
                          counters=OperationCounters())
        plan = planner.plan(PUSHDOWN_QUERY)
        optimized = plan.execute(ctx)
        optimized_cost = ctx.counters.cost(TABLE2_DEFAULTS)

        # Naive: join everything first, filter last.
        naive_counters = OperationCounters()
        spec = JoinSpec(
            r=cat.relation("customers"),
            s=cat.relation("orders"),
            r_field="cust_id",
            s_field="cust",
            memory_pages=1024,
            params=TABLE2_DEFAULTS,
        )
        joined = ALL_JOINS["hybrid-hash"](counters=naive_counters).join(spec)
        naive = select(
            joined.relation, Comparison("total", "<", 10), naive_counters
        )
        naive_cost = naive_counters.cost(TABLE2_DEFAULTS)
        return optimized, optimized_cost, naive, naive_cost

    optimized, opt_cost, naive, naive_cost = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    emit(
        "planner_pushdown",
        [
            "optimized (pushdown) : %6d rows, %.4f modelled s" %
            (optimized.cardinality, opt_cost),
            "naive (filter last)  : %6d rows, %.4f modelled s" %
            (naive.cardinality, naive_cost),
            "speedup              : %.1fx" % (naive_cost / opt_cost),
        ],
    )
    assert optimized.cardinality == naive.cardinality
    assert opt_cost < 0.5 * naive_cost


def test_hash_plans_insensitive_to_input_order(benchmark):
    """Shuffle the build input: the hash join's operation counts do not
    change (beyond hash-bucket noise), which is exactly why Section 4 can
    drop interesting orders from the search."""
    cat = build_catalog()

    def run():
        counts = []
        for seed in (1, 2):
            orders = cat.relation("orders")
            rows = list(orders)
            random.Random(seed).shuffle(rows)
            shuffled = Relation("orders%d" % seed, orders.schema, 256)
            for row in rows:
                shuffled.insert_unchecked(row)
            counters = OperationCounters()
            spec = JoinSpec(
                r=cat.relation("customers"),
                s=shuffled,
                r_field="cust_id",
                s_field="cust",
                memory_pages=1024,
                params=TABLE2_DEFAULTS,
            )
            ALL_JOINS["hybrid-hash"](counters=counters).join(spec)
            counts.append(counters.cost(TABLE2_DEFAULTS))
        return counts

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == pytest.approx(b, rel=0.01)
