"""E10 -- Section 3.9: hash vs sort for aggregation and projection.

"If there is enough memory to hold the result relation, then the fastest
algorithm will be a one pass hashing algorithm" -- for grouped aggregates
and for duplicate-eliminating projection alike.  The benchmark runs both
engines on the same inputs, verifies identical answers, and compares
modelled (Table 2-weighted) costs: hashing must win, and its advantage must
grow with input size (hash is O(n), sort O(n log n)).
"""

import random

import pytest

from repro.cost.counters import OperationCounters
from repro.cost.parameters import TABLE2_DEFAULTS
from repro.operators.aggregate import (
    AggregateFunction,
    AggregateSpec,
    hash_aggregate,
    sort_aggregate,
)
from repro.operators.projection import hash_project, sort_project
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema

from conftest import emit, format_table

SIZES = [2_000, 8_000, 32_000]
GROUPS = 64


def build(n):
    schema = make_schema(("g", DataType.INTEGER), ("v", DataType.INTEGER))
    rel = Relation("t%d" % n, schema, 320)
    rng = random.Random(n)
    for _ in range(n):
        rel.insert_unchecked((rng.randrange(GROUPS), rng.randrange(1000)))
    return rel


AGGS = [
    AggregateSpec(AggregateFunction.COUNT, alias="n"),
    AggregateSpec(AggregateFunction.SUM, "v", "total"),
]


def test_hash_aggregation_beats_sort(benchmark):
    def run():
        rows = []
        for n in SIZES:
            rel = build(n)
            hc, sc = OperationCounters(), OperationCounters()
            h = hash_aggregate(rel, ["g"], AGGS, hc)
            s = sort_aggregate(rel, ["g"], AGGS, sc)
            assert sorted(h) == sorted(s)
            rows.append(
                (n, hc.cost(TABLE2_DEFAULTS), sc.cost(TABLE2_DEFAULTS))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["tuples", "hash agg (s)", "sort agg (s)", "sort/hash"],
        [(n, h, s, s / h) for n, h, s in rows],
    )
    emit("aggregate_hash_vs_sort", table)

    for n, h, s in rows:
        assert h < s, n
    # The gap widens with n (n vs n log n).
    ratios = [s / h for _, h, s in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 5


def test_hash_projection_beats_sort(benchmark):
    def run():
        rows = []
        for n in SIZES:
            rel = build(n)
            hc, sc = OperationCounters(), OperationCounters()
            h = hash_project(rel, ["g"], counters=hc)
            s = sort_project(rel, ["g"], counters=sc)
            assert sorted(h) == sorted(s)
            rows.append(
                (n, hc.cost(TABLE2_DEFAULTS), sc.cost(TABLE2_DEFAULTS))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "projection_hash_vs_sort",
        format_table(
            ["tuples", "hash distinct (s)", "sort distinct (s)"],
            rows,
        ),
    )
    for n, h, s in rows:
        assert h < s, n


def test_one_pass_vs_spilling_aggregation(benchmark):
    """When the group table does not fit, the hybrid-hash fallback pays IO
    but still beats sorting -- the Section 3.9 recommendation."""
    from repro.storage.disk import SimulatedDisk

    def run():
        schema = make_schema(("g", DataType.INTEGER), ("v", DataType.INTEGER))
        rel = Relation("wide", schema, 320)
        rng = random.Random(77)
        for _ in range(30_000):
            rel.insert_unchecked((rng.randrange(9_000), rng.randrange(100)))

        fit = OperationCounters()
        hash_aggregate(rel, ["g"], AGGS, fit, memory_pages=4000)

        spill = OperationCounters()
        hash_aggregate(
            rel, ["g"], AGGS, spill,
            memory_pages=60, disk=SimulatedDisk(spill),
        )

        sorted_ = OperationCounters()
        sort_aggregate(rel, ["g"], AGGS, sorted_)
        return (
            fit.cost(TABLE2_DEFAULTS),
            spill.cost(TABLE2_DEFAULTS),
            sorted_.cost(TABLE2_DEFAULTS),
        )

    one_pass, spilling, sorting = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "aggregate_spill",
        [
            "one-pass hash (result fits):   %.3f s" % one_pass,
            "hybrid-hash spill (tight |M|): %.3f s" % spilling,
            "sort-based:                    %.3f s" % sorting,
        ],
    )
    assert one_pass < spilling  # spilling costs real IO
    assert spilling < sorting  # but still beats sorting in CPU-heavy terms
