"""E19 -- Governor overhead on the happy path: governed vs ungoverned.

The resource governor (docs/ROBUSTNESS.md) threads a cooperative
cancellation token and an enforced memory grant through every executor
hot loop: one ``guard.checkpoint()`` per page of work, one grant lookup
per memory-budget decision, and one admit/release round-trip per query.
The design claim is that all of this is *pay-for-what-you-use* -- a
governed query that is never cancelled and never revoked must run within
a few percent of the same query with no governor attached, with
bit-identical rows and operation counters.

This benchmark measures that overhead at the Table 2 join shape
(4000x4000 tuples, 40 tuples/page) for the two partitioned hash joins
plus a full-scan selection, and microbenchmarks the admission
round-trip.  Results go to ``benchmarks/out/bench_governor.json`` and
the repo-root ``BENCH_PR3.json``.

Knobs:

* ``REPRO_BENCH_SCALE`` scales the tuple counts (CI smoke runs 0.25).
  The <= 5% headline assertion only applies at full scale; smoke scales
  use a loose noise bound because sub-100ms runs jitter.
"""

from __future__ import annotations

import os
import time
from statistics import median
from typing import Any, Callable, Dict, List, Tuple

from repro.cost.counters import OperationCounters
from repro.cost.parameters import CostParameters
from repro.governor import CancellationToken, Governor, GovernorConfig
from repro.governor import MemoryGrant, QueryGuard
from repro.join import ALL_JOINS, JoinSpec
from repro.operators.selection import Comparison, select
from repro.workload.generator import join_inputs

from conftest import emit, emit_json, format_table

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
R_TUPLES = max(200, int(4000 * SCALE))
S_TUPLES = R_TUPLES
PAGE_BYTES = 320  # 40 x 8-byte tuples per page, the Table 2 shape
MEMORY_RATIO = 0.3
REPS = 7
#: Inner repetitions per timed sample: each component is fast (~10ms at
#: full scale), so one sample spans several runs to rise above timer
#: jitter; plain and governed samples are interleaved to cancel drift.
INNER = 16
#: Happy-path governor tax ceiling (acceptance criterion) at full scale;
#: tiny smoke runs are dominated by timer jitter, so the bound loosens.
MAX_OVERHEAD = 0.05 if SCALE >= 1.0 else 0.50

JOINS = ["grace-hash", "hybrid-hash"]
ADMIT_ROUNDS = 2000


def build_instance(tuples: int):
    r, s = join_inputs(
        tuples, tuples, key_domain=20 * tuples, page_bytes=PAGE_BYTES
    )
    params = CostParameters(
        r_pages=r.page_count,
        s_pages=s.page_count,
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )
    memory = max(
        params.minimum_memory_pages, params.memory_for_ratio(MEMORY_RATIO)
    )
    return r, s, params, memory


def fresh_guard(memory: int) -> QueryGuard:
    """A guard exactly as the governor grants it: full budget, no cancel."""
    return QueryGuard(token=CancellationToken(qid=1), grant=MemoryGrant(memory))


def timed_pair(plain_fn, governed_fn):
    """Interleaved median-of-REPS samples of INNER runs for both modes.

    Plain and governed samples alternate within each rep, so sustained
    machine noise (CPU contention, frequency shifts) hits both modes of a
    rep alike; the median over reps then discards transient spikes.
    Returns ``(plain_s, plain_out, governed_s, governed_out)`` where the
    seconds are the median single-run time (sample / INNER) and the outs
    are the last run's ``(rows, counters)``.
    """
    samples: Dict[str, List[float]] = {"plain": [], "governed": []}
    outs: Dict[str, Any] = {"plain": None, "governed": None}
    for _ in range(REPS):
        for mode, fn in (("plain", plain_fn), ("governed", governed_fn)):
            start = time.perf_counter()
            for _ in range(INNER):
                outs[mode] = fn()
            samples[mode].append((time.perf_counter() - start) / INNER)
    return (
        median(samples["plain"]),
        outs["plain"],
        median(samples["governed"]),
        outs["governed"],
    )


def join_runner(name: str, governed: bool):
    r, s, params, memory = build_instance(R_TUPLES)

    def run():
        algo = ALL_JOINS[name](batch=True)
        if governed:
            algo.set_guard(fresh_guard(memory))
        result = algo.join(
            JoinSpec(
                r=r, s=s, r_field="rkey", s_field="skey",
                memory_pages=memory, params=params,
            )
        )
        return sorted(result.relation), result.counters.as_dict()

    return run


def select_runner(governed: bool):
    r, _, _, _ = build_instance(R_TUPLES)
    predicate = Comparison("rkey", "<", 10 * R_TUPLES)

    def run():
        counters = OperationCounters()
        token = CancellationToken(qid=1) if governed else None
        rows = list(select(r, predicate, counters, batch=True, token=token))
        return rows, counters.as_dict()

    return run


def admission_microbench() -> float:
    """Mean microseconds for one admit/release round-trip."""
    governor = Governor(GovernorConfig(max_concurrent=4, max_memory_pages=400))
    start = time.perf_counter()
    for _ in range(ADMIT_ROUNDS):
        handle = governor.admit(10)
        governor.release(handle)
    return (time.perf_counter() - start) / ADMIT_ROUNDS * 1e6


def test_governor_happy_path_overhead():
    components: List[Dict[str, Any]] = []
    total_plain = total_governed = 0.0

    cases: List[Tuple[str, Callable[[bool], Callable]]] = [
        ("join:%s" % name, lambda governed, n=name: join_runner(n, governed))
        for name in JOINS
    ]
    cases.append(("operator:select", select_runner))

    for label, make in cases:
        t_plain, out_plain, t_governed, out_governed = timed_pair(
            make(False), make(True)
        )
        assert out_governed[0] == out_plain[0], "%s: rows diverge" % label
        assert out_governed[1] == out_plain[1], "%s: counters diverge" % label
        components.append({
            "component": label,
            "rows": R_TUPLES,
            "plain_s": round(t_plain, 6),
            "governed_s": round(t_governed, 6),
            "overhead": round(t_governed / t_plain - 1.0, 4),
            "identical_results": True,
            "identical_counters": True,
        })
        total_plain += t_plain
        total_governed += t_governed

    admit_us = admission_microbench()
    headline = total_governed / total_plain - 1.0
    payload = {
        "experiment": "bench_governor",
        "scale": SCALE,
        "r_tuples": R_TUPLES,
        "s_tuples": S_TUPLES,
        "page_bytes": PAGE_BYTES,
        "memory_ratio": MEMORY_RATIO,
        "reps": REPS,
        "components": components,
        "admission_us_per_query": round(admit_us, 2),
        "total": {
            "plain_s": round(total_plain, 6),
            "governed_s": round(total_governed, 6),
            "overhead": round(headline, 4),
        },
        "threshold": {"max_overhead": MAX_OVERHEAD, "full_scale": SCALE >= 1.0},
    }
    emit_json("bench_governor", payload, root_copy="BENCH_PR3.json")
    emit(
        "governor_overhead",
        format_table(
            ["component", "plain (s)", "governed (s)", "overhead"],
            [
                (c["component"], c["plain_s"], c["governed_s"],
                 "%+.2f%%" % (100 * c["overhead"]))
                for c in components
            ]
            + [("TOTAL", round(total_plain, 4), round(total_governed, 4),
                "%+.2f%%" % (100 * headline))],
        )
        + ["", "admission round-trip: %.1f us/query" % admit_us],
    )

    assert headline <= MAX_OVERHEAD, (
        "governed happy path %.2f%% over ungoverned; budget is %.0f%%"
        % (100 * headline, 100 * MAX_OVERHEAD)
    )
