"""E9 -- Section 2's fault model, validated against real structures.

The closed-form analysis rests on one approximation: with |M| buffer pages
over an S-page structure and random replacement, each page touch faults
with probability ``1 - |M|/S``.  This benchmark replays *real* AVL and
B+-tree lookup paths (the page ids each search actually touches) through
the buffer pool and compares measured fault rates against the model, for
random replacement (the paper's assumption) and LRU (the ablation).
"""

import random

import pytest

from repro.access.avl import AVLTree
from repro.access.btree import BPlusTree
from repro.storage.buffer import BufferPool, ReplacementPolicy

from conftest import emit, format_table

N_KEYS = 4000
LOOKUPS = 3000
FRACTIONS = [0.25, 0.5, 0.75, 0.9]


def build_avl():
    tree = AVLTree()
    keys = list(range(N_KEYS))
    random.Random(3).shuffle(keys)
    for k in keys:
        tree.insert(k, k)
    return tree, tree.node_count  # S: one page per node


def build_btree():
    tree = BPlusTree(order=32)
    keys = list(range(N_KEYS))
    random.Random(3).shuffle(keys)
    for k in keys:
        tree.insert(k, k)
    internal, leaves = tree.node_counts()
    return tree, internal + leaves


def measure(tree, total_pages, fraction, policy):
    pool = BufferPool(
        max(1, int(fraction * total_pages)), policy=policy, seed=11
    )
    rng = random.Random(7)
    # Warm up, then measure.
    for phase, count in (("warm", LOOKUPS // 2), ("measure", LOOKUPS)):
        if phase == "measure":
            pool.reset_stats()
        for _ in range(count):
            for page in tree.path_pages(rng.randrange(N_KEYS)):
                pool.access(page)
    return pool.fault_rate


def test_avl_fault_rate_matches_model(benchmark):
    def run():
        tree, pages = build_avl()
        rows = []
        for fraction in FRACTIONS:
            measured = measure(
                tree, pages, fraction, ReplacementPolicy.RANDOM
            )
            predicted = 1 - fraction
            rows.append((fraction, predicted, measured))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = format_table(
        ["|M|/S", "model 1-|M|/S", "measured (AVL paths, random repl.)"],
        rows,
    )
    lines.append("")
    lines.append(
        "Finding: real AVL search paths are root-biased, so even random "
        "replacement keeps the upper levels resident and the measured rate "
        "sits well below the paper's uniform-mixing 1-|M|/S; the model is "
        "an upper bound for tree traffic (see the uniform-access test for "
        "the regime where it is exact)."
    )
    emit("fault_model_avl", lines)
    for fraction, predicted, measured in rows:
        assert measured <= predicted + 0.05, (fraction, measured)
        assert measured > 0  # the structure does not fit: faults happen


def test_uniform_access_matches_model_exactly(benchmark):
    """Under the model's own assumption -- uniformly random page touches,
    random replacement -- measured fault rates match 1-|M|/S closely."""

    def run():
        total = 2000
        rows = []
        for fraction in FRACTIONS:
            pool = BufferPool(
                int(fraction * total), policy=ReplacementPolicy.RANDOM, seed=2
            )
            rng = random.Random(6)
            for _ in range(20_000):
                pool.access(rng.randrange(total))
            pool.reset_stats()
            for _ in range(60_000):
                pool.access(rng.randrange(total))
            rows.append((fraction, 1 - fraction, pool.fault_rate))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fault_model_uniform",
        format_table(["|M|/S", "model", "measured (uniform access)"], rows),
    )
    for fraction, predicted, measured in rows:
        assert abs(measured - predicted) < 0.03, (fraction, measured)


def test_btree_fault_rate_matches_model(benchmark):
    def run():
        tree, pages = build_btree()
        rows = []
        for fraction in FRACTIONS:
            measured = measure(
                tree, pages, fraction, ReplacementPolicy.RANDOM
            )
            predicted = 1 - fraction
            rows.append((fraction, predicted, measured))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = format_table(
        ["|M|/S", "model 1-|M|/S", "measured (B+-tree paths)"],
        rows,
    )
    emit("fault_model_btree", lines)
    # B+-tree paths are heavily root-biased (the root and upper levels are
    # always resident), so random replacement beats the uniform model --
    # the model is an upper bound here.
    for fraction, predicted, measured in rows:
        assert measured <= predicted + 0.05, (fraction, measured)


def test_lru_beats_random_on_skewed_paths(benchmark):
    """Ablation: LRU exploits the root-biased reference pattern better
    than random replacement, so the paper's model (random) is
    conservative for real caches."""

    def run():
        tree, pages = build_btree()
        results = {}
        for policy in (ReplacementPolicy.RANDOM, ReplacementPolicy.LRU):
            results[policy.value] = measure(tree, pages, 0.5, policy)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fault_model_policies",
        ["%s: %.3f" % (k, v) for k, v in results.items()],
    )
    assert results["lru"] <= results["random"] + 0.02


def test_avl_touches_more_pages_than_btree(benchmark):
    """The Section 2 crux, measured: an AVL lookup touches ~log2(n) pages,
    a B+-tree lookup height+1."""

    def run():
        avl, _ = build_avl()
        bt, _ = build_btree()
        rng = random.Random(5)
        keys = [rng.randrange(N_KEYS) for _ in range(500)]
        avl_pages = sum(len(avl.path_pages(k)) for k in keys) / len(keys)
        bt_pages = sum(len(bt.path_pages(k)) for k in keys) / len(keys)
        return avl_pages, bt_pages

    avl_pages, bt_pages = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "pages_per_lookup",
        ["AVL: %.1f pages/lookup" % avl_pages,
         "B+-tree: %.1f pages/lookup" % bt_pages],
    )
    assert avl_pages > 10  # ~log2(4000) ~ 12
    assert bt_pages <= 4
    assert avl_pages / bt_pages > 3
