"""E21 -- Multi-session server load: tps and latency vs. session count.

The load driver hammers the banking transfer workload over the real wire
protocol: each rung of the ladder runs S concurrent client workers, and
every worker opens, drives, and closes multiple *separate connections*
(so the run exercises thousands of simulated clients in total, plus the
connect/disconnect path on every batch).  Each transaction is a
BEGIN / ADD debit / ADD credit / COMMIT round-trip; COMMIT blocks until
the transaction's commit group is durable.

The paper's claim under test is the Section 5 pre-commit + group-commit
design: a single session pays the full group-commit delay per
transaction, but concurrent sessions share flushes -- committed
transactions per flush grows with the session count, so aggregate tps
scales until admission control (the PR-3 governor's concurrency gate) and
the flush pipeline saturate.  The PR-8 admission-aware lock waits add a
second claim: **past** the saturation knee throughput must *plateau*,
not collapse -- a statement blocked in the lock table parks its
admission slot, so contention no longer eats admission capacity and the
overloaded rungs keep committing.  The emitted numbers
(``BENCH_PR8.json``, with the pre-parking ``BENCH_PR6.json`` run
embedded as ``before``) record tps, p50/p99 latency, group sizes, parks,
requeues, and governor admissions per rung.

Assertions:

* every rung commits transactions (nonzero tps) and conserves the total
  balance (transfers never create money);
* aggregate tps at the best rung beats the single-session rung (group
  commit earns its keep) -- at full scale by at least 1.5x;
* the mean durable group size grows from ~1 at S=1 to >1 when sessions
  pile up;
* **overload robustness**: the busiest (past-knee) rung keeps at least
  ``MIN_PLATEAU`` (0.7) of the peak rung's tps;
* shutdown is clean (no crashed store, no stuck workers).

Knobs: ``REPRO_BENCH_SCALE`` scales connection and transaction counts
(CI smoke runs 0.25).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.errors import AdmissionRejected, ReproError
from repro.server import DatabaseServer, ServerClient

from conftest import emit, emit_json, format_table

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

SESSION_LADDER = [1, 2, 4, 8, 16, 32, 64]
if SCALE < 1.0:
    # The smoke ladder keeps a past-saturation rung (32) so CI exercises
    # the overload plateau, not just the scaling slope.
    SESSION_LADDER = [s for s in SESSION_LADDER if s <= 32]

#: Connections per worker per rung and transactions per connection.  At
#: full scale the ladder totals 127 workers x 16 connections = 2032
#: simulated clients across the run.
CONNECTIONS_PER_WORKER = max(2, int(16 * SCALE))
TXNS_PER_CONNECTION = max(2, int(4 * SCALE))

N_ACCOUNTS = 128
INITIAL_BALANCE = 1_000
GROUP_SIZE = 32
GROUP_DELAY = 0.002
SEED = 1984

MIN_SCALING = 1.5 if SCALE >= 1.0 else 1.0
#: Past the knee, the busiest rung must keep this share of peak tps.
MIN_PLATEAU = 0.7


def percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def run_worker(
    host: str,
    port: int,
    worker_seed: int,
    latencies: List[float],
    tallies: Dict[str, int],
    mu: threading.Lock,
) -> None:
    import random

    rng = random.Random(worker_seed)
    committed = aborted = rejected = connections = 0
    local_latencies: List[float] = []
    for _ in range(CONNECTIONS_PER_WORKER):
        client = ServerClient(host, port)
        connections += 1
        for _ in range(TXNS_PER_CONNECTION):
            src = rng.randrange(N_ACCOUNTS)
            dst = rng.randrange(N_ACCOUNTS)
            amount = rng.randrange(1, 100)
            started = time.perf_counter()
            try:
                client.execute("BEGIN")
                client.execute("ADD %d %d" % (src, -amount))
                client.execute("ADD %d %d" % (dst, amount))
                client.execute("COMMIT")
                committed += 1
                local_latencies.append(time.perf_counter() - started)
            except ReproError as exc:
                # Deadlock victim, lock timeout, or admission rejection:
                # the transaction (if any) must not leak into the next.
                aborted += 1
                if isinstance(exc, AdmissionRejected):
                    rejected += 1
                try:
                    client.execute("ROLLBACK")
                except ReproError:
                    pass  # already rolled back (or never began)
        client.close()
    with mu:
        latencies.extend(local_latencies)
        tallies["committed"] = tallies.get("committed", 0) + committed
        tallies["aborted"] = tallies.get("aborted", 0) + aborted
        tallies["rejected"] = tallies.get("rejected", 0) + rejected
        tallies["connections"] = tallies.get("connections", 0) + connections


def run_rung(server: DatabaseServer, sessions: int) -> Dict[str, Any]:
    host, port = server.address
    bank = server.manager.bank
    before_bank = bank.bank_stats()
    before_commits = before_bank["commits"]
    before_groups = before_bank["groups_flushed"]
    before_deadlocks = before_bank["deadlocks"]
    before_gov = server.manager.db.governor_stats()
    latencies: List[float] = []
    tallies: Dict[str, int] = {}
    mu = threading.Lock()
    workers = [
        threading.Thread(
            target=run_worker,
            args=(host, port, SEED + sessions * 1000 + i, latencies, tallies, mu),
        )
        for i in range(sessions)
    ]
    started = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    elapsed = time.perf_counter() - started
    stats = bank.bank_stats()
    governor = server.manager.db.governor_stats()
    commits = stats["commits"] - before_commits
    groups = stats["groups_flushed"] - before_groups
    with ServerClient(host, port) as probe:
        total = probe.value("AUDIT")
    assert total == N_ACCOUNTS * INITIAL_BALANCE, (
        "balance not conserved at %d sessions: %d" % (sessions, total)
    )
    return {
        "sessions": sessions,
        "elapsed_s": elapsed,
        "tps": tallies.get("committed", 0) / elapsed if elapsed else 0.0,
        "p50_ms": percentile(latencies, 0.50) * 1000,
        "p99_ms": percentile(latencies, 0.99) * 1000,
        "committed": tallies.get("committed", 0),
        "aborted": tallies.get("aborted", 0),
        "admission_rejected": tallies.get("rejected", 0),
        "connections": tallies.get("connections", 0),
        "durable_commits": commits,
        "mean_group_size": (commits / groups) if groups else 0.0,
        "deadlocks": stats["deadlocks"] - before_deadlocks,
        "lock_parks": (
            governor["slots_released_in_wait"]
            - before_gov["slots_released_in_wait"]
        ),
        "requeues": governor["requeues"] - before_gov["requeues"],
        "sheds": governor["sheds"] - before_gov["sheds"],
    }


def test_server_throughput_ladder():
    server = DatabaseServer(
        n_accounts=N_ACCOUNTS,
        initial_balance=INITIAL_BALANCE,
        group_size=GROUP_SIZE,
        group_delay=GROUP_DELAY,
        lock_wait_timeout=10.0,
        statement_timeout=30.0,
        workers=max(SESSION_LADDER) + 8,
    )
    server.start_in_thread()
    try:
        rungs = [run_rung(server, sessions) for sessions in SESSION_LADDER]
        wire = server.wire_stats()
        governor = server.manager.db.governor_stats()
    finally:
        server.stop()
    assert server.manager.bank.bank_stats()["crashed"] is False

    headers = [
        "sessions", "tps", "p50 ms", "p99 ms",
        "committed", "aborted", "parks", "grp size",
    ]
    rows = [
        (
            r["sessions"], "%.0f" % r["tps"], "%.2f" % r["p50_ms"],
            "%.2f" % r["p99_ms"], r["committed"], r["aborted"],
            r["lock_parks"], "%.2f" % r["mean_group_size"],
        )
        for r in rungs
    ]
    lines = format_table(headers, rows)
    lines.append("")
    lines.append(
        "total connections: %d, frames: %d in / %d out, admitted: %d"
        % (
            sum(r["connections"] for r in rungs),
            wire["frames_in"],
            wire["frames_out"],
            governor.get("admitted", 0),
        )
    )
    emit("bench_server", lines)
    payload: Dict[str, Any] = {
        "experiment": "E21",
        "scale": SCALE,
        "config": {
            "n_accounts": N_ACCOUNTS,
            "initial_balance": INITIAL_BALANCE,
            "group_size": GROUP_SIZE,
            "group_delay_s": GROUP_DELAY,
            "connections_per_worker": CONNECTIONS_PER_WORKER,
            "txns_per_connection": TXNS_PER_CONNECTION,
        },
        "rungs": rungs,
        "wire": wire,
        "governor": governor,
    }
    # Embed the pre-parking run (PR 6) so before/after travels together.
    before_path = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
    if before_path.exists():
        before = json.loads(before_path.read_text())
        payload["before"] = {
            "source": "BENCH_PR6.json (blocking lock waits held slots)",
            "scale": before.get("scale"),
            "rungs": [
                {k: r.get(k) for k in ("sessions", "tps", "aborted")}
                for r in before.get("rungs", [])
            ],
        }
    emit_json("bench_server", payload, root_copy="BENCH_PR8.json")

    # Nonzero throughput everywhere; scaling up to saturation.
    for rung in rungs:
        assert rung["committed"] > 0, rung
        assert rung["tps"] > 0, rung
    single = rungs[0]["tps"]
    peak = max(r["tps"] for r in rungs)
    assert peak >= MIN_SCALING * single, (
        "group commit failed to scale: single=%.0f tps, peak=%.0f tps"
        % (single, peak)
    )
    # Group commit batches under load: the best rung's durable groups
    # must average more than one transaction.
    busiest = max(rungs, key=lambda r: r["sessions"])
    assert busiest["mean_group_size"] > 1.0, busiest
    # Overload robustness (PR 8): past the saturation knee, parked lock
    # waits keep admission capacity flowing -- the busiest rung must hold
    # a plateau, not collapse (pre-parking this ratio was ~0.12).
    assert busiest["tps"] >= MIN_PLATEAU * peak, (
        "throughput collapsed past the knee: peak=%.0f tps, "
        "busiest=%.0f tps (floor %.0f%%)"
        % (peak, busiest["tps"], MIN_PLATEAU * 100)
    )
