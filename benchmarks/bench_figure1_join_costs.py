"""E3 -- Figure 1: the four join algorithms vs |M| / (|R| * F).

Regenerates the paper's central figure from the Section 3 cost formulas at
the exact Table 2 settings and asserts its qualitative geometry:

* hybrid hash <= GRACE everywhere, converging at the two-pass floor;
* simple hash blows up at low memory and crosses below GRACE/sort-merge as
  memory grows;
* sort-merge is the worst two-pass method across the swept range;
* all hash algorithms meet at ratio 1.0 (R's table memory resident), where
  simple == hybrid exactly;
* hybrid has the abrupt IOrand -> IOseq discontinuity at ratio 0.5.
"""

import pytest

from repro.cost.join_model import JoinCostModel, figure1_series
from repro.cost.parameters import TABLE2_DEFAULTS

from conftest import emit, format_table

RATIOS = [0.011, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.495, 0.505, 0.6, 0.8, 1.0]
ALGOS = ["sort-merge", "simple-hash", "grace-hash", "hybrid-hash"]


def test_figure1_curves(benchmark):
    rows = benchmark(figure1_series, TABLE2_DEFAULTS, RATIOS)

    lines = format_table(
        ["|M|/(|R|F)", "pages"] + ALGOS,
        [
            [r["ratio"], int(r["memory_pages"])] + ["%.0f s" % r[a] for a in ALGOS]
            for r in rows
        ],
    )
    emit("figure1_join_costs", lines)

    by_ratio = {round(r["ratio"], 3): r for r in rows}

    # Hybrid dominates GRACE at every point, and GRACE is flat.
    grace = [r["grace-hash"] for r in rows]
    assert max(grace) - min(grace) < 1.0
    for r in rows:
        assert r["hybrid-hash"] <= r["grace-hash"] * 1.001

    # Simple hash: catastrophic on the left, competitive on the right.
    assert by_ratio[0.011]["simple-hash"] > 10 * by_ratio[0.011]["grace-hash"]
    assert by_ratio[1.0]["simple-hash"] == pytest.approx(
        by_ratio[1.0]["hybrid-hash"]
    )

    # Sort-merge is the worst two-pass method over the whole chart.
    for r in rows:
        assert r["sort-merge"] > r["grace-hash"]
        assert r["sort-merge"] > r["hybrid-hash"]

    # Crossover: simple hash overtakes sort-merge somewhere in mid-range.
    left = by_ratio[0.02]
    right = by_ratio[0.4]
    assert left["simple-hash"] > left["sort-merge"]
    assert right["simple-hash"] < right["sort-merge"]

    # The hybrid discontinuity at 0.5 (one output buffer -> IOseq).
    assert by_ratio[0.495]["hybrid-hash"] - by_ratio[0.505]["hybrid-hash"] > 50

    # Absolute anchor points from the paper's chart: GRACE ~ 700-1000 s,
    # hybrid at full memory ~ tens of seconds.
    assert 500 < by_ratio[0.1]["grace-hash"] < 1100
    assert by_ratio[1.0]["hybrid-hash"] < 50


def test_best_algorithm_is_hashing_everywhere(benchmark):
    """Section 4's premise, quantified: the winner is a hash join at every
    memory grant above the two-pass floor."""
    model = JoinCostModel(TABLE2_DEFAULTS)

    def winners():
        results = {}
        for ratio in RATIOS:
            memory = TABLE2_DEFAULTS.memory_for_ratio(ratio)
            memory = max(memory, TABLE2_DEFAULTS.minimum_memory_pages)
            results[ratio] = model.best(memory)
        return results

    best = benchmark(winners)
    emit(
        "figure1_winners",
        ["%6.3f  ->  %s" % (ratio, name) for ratio, name in best.items()],
    )
    assert all(name != "sort-merge" for name in best.values())
    # On the right half of the chart hybrid (== simple at 1.0) wins.
    assert best[1.0] in ("hybrid-hash", "simple-hash")
