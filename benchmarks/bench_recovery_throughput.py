"""E6 -- Section 5.2: the transaction-throughput ladder.

The paper's arithmetic: one log device, 10 ms per 4096-byte page, ~400
bytes of log per transaction.

* conventional WAL forces a page per commit  -> ~100 tps;
* group commit packs ~10 commits per page    -> ~1000 tps;
* partitioning the log over k devices scales the group-commit rate ~k x
  (given the topological ordering of commit groups);
* stable memory commits instantly (latency ~0) and sustains the drain
  bandwidth; with new-value-only compression the same bandwidth carries
  ~1.7x the transactions.
"""

import pytest

from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.stable_memory import StableMemory
from repro.recovery.state import DatabaseState
from repro.recovery.transactions import TransactionEngine
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue
from repro.workload.banking import BankingWorkload

from conftest import emit, format_table

HORIZON = 4.0
N_ACCOUNTS = 20_000  # low contention: the log, not locks, is the bottleneck


def run_policy(policy, devices=1, compress=False, arrival_rate=8000):
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(N_ACCOUNTS, records_per_page=64, initial_value=100)
    stable = (
        StableMemory(64 * 1024 * 1024)
        if policy is CommitPolicy.STABLE
        else None
    )
    lm = LogManager(
        queue, policy=policy, devices=devices, stable=stable, compress=compress
    )
    engine = TransactionEngine(state, queue, lm)
    bank = BankingWorkload(
        N_ACCOUNTS, transfer_fraction=1.0, deposit_fraction=0.0, seed=17
    )
    t = 0.0
    step = 1.0 / arrival_rate
    while t < HORIZON:
        script, _ = bank.next_script()
        engine.submit_at(t, script)
        t += step
    queue.run_until(HORIZON)
    return {
        "throughput": engine.throughput(HORIZON),
        "latency_ms": engine.mean_commit_latency() * 1000,
        "pages": lm.log.pages_written,
        "disk_bytes": lm.bytes_written_to_disk,
    }


def test_throughput_ladder(benchmark):
    def ladder():
        return {
            "conventional (1 dev)": run_policy(
                CommitPolicy.CONVENTIONAL, arrival_rate=2000
            ),
            "group commit (1 dev)": run_policy(CommitPolicy.GROUP),
            "group commit (2 dev)": run_policy(CommitPolicy.GROUP, devices=2),
            "group commit (4 dev)": run_policy(CommitPolicy.GROUP, devices=4),
            "stable memory": run_policy(CommitPolicy.STABLE, arrival_rate=1400),
            "stable + compression": run_policy(
                CommitPolicy.STABLE, compress=True, arrival_rate=2200
            ),
        }

    results = benchmark.pedantic(ladder, rounds=1, iterations=1)

    lines = format_table(
        ["configuration", "tps", "mean latency (ms)", "log pages"],
        [
            (name, "%.0f" % r["throughput"], "%.1f" % r["latency_ms"], r["pages"])
            for name, r in results.items()
        ],
    )
    emit("recovery_throughput_ladder", lines)

    conventional = results["conventional (1 dev)"]["throughput"]
    group1 = results["group commit (1 dev)"]["throughput"]
    group4 = results["group commit (4 dev)"]["throughput"]
    stable = results["stable memory"]["throughput"]
    compressed = results["stable + compression"]["throughput"]

    # The paper's 100 -> 1000 headline (one order of magnitude).
    assert 80 <= conventional <= 120
    assert 700 <= group1 <= 1300
    assert group1 / conventional >= 7

    # Partitioned log scales group commit.
    assert group4 >= 2.5 * group1

    # Stable memory: commit latency collapses to ~0.
    assert results["stable memory"]["latency_ms"] < 0.5
    assert results["group commit (1 dev)"]["latency_ms"] > 5.0

    # Compression stretches the drain bandwidth without losing sustain.
    assert compressed > 1.3 * stable


def test_group_commit_batches_about_ten(benchmark):
    result = benchmark.pedantic(
        lambda: run_policy(CommitPolicy.GROUP), rounds=1, iterations=1
    )
    commits_per_page = result["throughput"] * HORIZON / max(1, result["pages"])
    # "we could have up to ten transactions per commit group" -- our
    # transfers log 328 bytes, so ~12 fit a page.
    assert 8 <= commits_per_page <= 14


# ---------------------------------------------------------------------------
# PR 4 -- the batched commit + parallel restart pipeline, gated.
#
# Two ends of the durability pipeline, one payload (committed as the
# repo-root ``BENCH_PR4.json``):
#
# * write side: adaptive group commit vs the durable-per-commit baseline
#   on the Section 5 transfer workload (simulated tps; the paper's
#   100 -> 1000 ladder).  CI gate: >= 2x; full scale shows ~10x.
# * read side: parallel partitioned-log redo (4 workers) vs the serial
#   interpreter on the same crashed history (simulated restart seconds,
#   Section 5.5's multi-disk argument), with real wall-clock reported
#   alongside and the recovered images compared byte-for-byte.
#
# ``REPRO_BENCH_SCALE`` scales the history length (CI smoke runs 0.25).
# ---------------------------------------------------------------------------

import os
import time

from repro.recovery.checkpoint import Checkpointer
from repro.recovery.restart import crash, recover
from repro.recovery.state import DiskSnapshot

from conftest import emit_json

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def crashed_history(horizon):
    """A Section-5-shaped banking history, crashed mid-checkpoint-sweep."""
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(2000, records_per_page=64, initial_value=100)
    lm = LogManager(queue, policy=CommitPolicy.GROUP)
    engine = TransactionEngine(state, queue, lm)
    snap = DiskSnapshot()
    ck = Checkpointer(engine, snap, interval=0.5)
    ck.start()
    bank = BankingWorkload(2000, seed=41)
    t = 0.0
    while t < horizon:
        script, _ = bank.next_script()
        engine.submit_at(t, script)
        t += 0.001
    queue.run_until(horizon)
    return crash(engine, ck)


def timed_recover(crash_state, workers):
    t0 = time.perf_counter()
    out = recover(crash_state, initial_value=100, workers=workers)
    return out, (time.perf_counter() - t0) * 1000


def test_batched_pipeline_gate(benchmark):
    """The PR 4 acceptance gate, both ends of the pipeline."""

    def pipeline():
        conventional = run_policy(CommitPolicy.CONVENTIONAL, arrival_rate=2000)
        group = run_policy(CommitPolicy.GROUP)
        crash_state = crashed_history(horizon=4.0 * SCALE)
        serial, serial_ms = timed_recover(crash_state, workers=1)
        parallel, parallel_ms = timed_recover(crash_state, workers=4)
        return conventional, group, serial, serial_ms, parallel, parallel_ms

    conventional, group, serial, serial_ms, parallel, parallel_ms = (
        benchmark.pedantic(pipeline, rounds=1, iterations=1)
    )

    commit_speedup = group["throughput"] / conventional["throughput"]
    restart_speedup = serial.seconds / parallel.seconds
    identical = (
        parallel.state.values == serial.state.values
        and parallel.state.page_lsn == serial.state.page_lsn
        and parallel.committed_tids == serial.committed_tids
        and parallel.log_records_scanned == serial.log_records_scanned
        and parallel.updates_redone == serial.updates_redone
        and parallel.updates_undone == serial.updates_undone
    )
    full_scale = SCALE >= 1.0

    payload = {
        "experiment": "bench_recovery_pipeline",
        "scale": SCALE,
        "commit": {
            "conventional_tps": round(conventional["throughput"], 1),
            "group_tps": round(group["throughput"], 1),
            "speedup": round(commit_speedup, 2),
            "conventional_log_pages": conventional["pages"],
            "group_log_pages": group["pages"],
        },
        "restart": {
            "serial_seconds": round(serial.seconds, 6),
            "workers4_seconds": round(parallel.seconds, 6),
            "speedup": round(restart_speedup, 2),
            "serial_wall_ms": round(serial_ms, 3),
            "workers4_wall_ms": round(parallel_ms, 3),
            "log_records_scanned": serial.log_records_scanned,
            "updates_redone": serial.updates_redone,
            "pages_skipped_clean": parallel.pages_skipped_clean,
            "identical_results": identical,
        },
        "threshold": {
            "commit_speedup_min": 2.0,
            "restart_speedup_min": 2.0 if full_scale else 1.5,
            "full_scale": full_scale,
        },
    }
    emit_json("bench_recovery_pipeline", payload, root_copy="BENCH_PR4.json")

    # Correctness before speed: the parallel image must be byte-identical.
    assert identical

    # CI smoke gate: batched commit >= 2x durable-per-commit (full scale
    # reproduces the paper's order of magnitude, asserted in the ladder).
    assert commit_speedup >= 2.0

    # Parallel restart: the straggler stream's share of the modelled cost.
    assert restart_speedup >= payload["threshold"]["restart_speedup_min"]
