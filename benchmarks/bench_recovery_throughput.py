"""E6 -- Section 5.2: the transaction-throughput ladder.

The paper's arithmetic: one log device, 10 ms per 4096-byte page, ~400
bytes of log per transaction.

* conventional WAL forces a page per commit  -> ~100 tps;
* group commit packs ~10 commits per page    -> ~1000 tps;
* partitioning the log over k devices scales the group-commit rate ~k x
  (given the topological ordering of commit groups);
* stable memory commits instantly (latency ~0) and sustains the drain
  bandwidth; with new-value-only compression the same bandwidth carries
  ~1.7x the transactions.
"""

import pytest

from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.stable_memory import StableMemory
from repro.recovery.state import DatabaseState
from repro.recovery.transactions import TransactionEngine
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue
from repro.workload.banking import BankingWorkload

from conftest import emit, format_table

HORIZON = 4.0
N_ACCOUNTS = 20_000  # low contention: the log, not locks, is the bottleneck


def run_policy(policy, devices=1, compress=False, arrival_rate=8000):
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(N_ACCOUNTS, records_per_page=64, initial_value=100)
    stable = (
        StableMemory(64 * 1024 * 1024)
        if policy is CommitPolicy.STABLE
        else None
    )
    lm = LogManager(
        queue, policy=policy, devices=devices, stable=stable, compress=compress
    )
    engine = TransactionEngine(state, queue, lm)
    bank = BankingWorkload(
        N_ACCOUNTS, transfer_fraction=1.0, deposit_fraction=0.0, seed=17
    )
    t = 0.0
    step = 1.0 / arrival_rate
    while t < HORIZON:
        script, _ = bank.next_script()
        engine.submit_at(t, script)
        t += step
    queue.run_until(HORIZON)
    return {
        "throughput": engine.throughput(HORIZON),
        "latency_ms": engine.mean_commit_latency() * 1000,
        "pages": lm.log.pages_written,
        "disk_bytes": lm.bytes_written_to_disk,
    }


def test_throughput_ladder(benchmark):
    def ladder():
        return {
            "conventional (1 dev)": run_policy(
                CommitPolicy.CONVENTIONAL, arrival_rate=2000
            ),
            "group commit (1 dev)": run_policy(CommitPolicy.GROUP),
            "group commit (2 dev)": run_policy(CommitPolicy.GROUP, devices=2),
            "group commit (4 dev)": run_policy(CommitPolicy.GROUP, devices=4),
            "stable memory": run_policy(CommitPolicy.STABLE, arrival_rate=1400),
            "stable + compression": run_policy(
                CommitPolicy.STABLE, compress=True, arrival_rate=2200
            ),
        }

    results = benchmark.pedantic(ladder, rounds=1, iterations=1)

    lines = format_table(
        ["configuration", "tps", "mean latency (ms)", "log pages"],
        [
            (name, "%.0f" % r["throughput"], "%.1f" % r["latency_ms"], r["pages"])
            for name, r in results.items()
        ],
    )
    emit("recovery_throughput_ladder", lines)

    conventional = results["conventional (1 dev)"]["throughput"]
    group1 = results["group commit (1 dev)"]["throughput"]
    group4 = results["group commit (4 dev)"]["throughput"]
    stable = results["stable memory"]["throughput"]
    compressed = results["stable + compression"]["throughput"]

    # The paper's 100 -> 1000 headline (one order of magnitude).
    assert 80 <= conventional <= 120
    assert 700 <= group1 <= 1300
    assert group1 / conventional >= 7

    # Partitioned log scales group commit.
    assert group4 >= 2.5 * group1

    # Stable memory: commit latency collapses to ~0.
    assert results["stable memory"]["latency_ms"] < 0.5
    assert results["group commit (1 dev)"]["latency_ms"] > 5.0

    # Compression stretches the drain bandwidth without losing sustain.
    assert compressed > 1.3 * stable


def test_group_commit_batches_about_ten(benchmark):
    result = benchmark.pedantic(
        lambda: run_policy(CommitPolicy.GROUP), rounds=1, iterations=1
    )
    commits_per_page = result["throughput"] * HORIZON / max(1, result["pages"])
    # "we could have up to ten transactions per commit group" -- our
    # transfers log 328 bytes, so ~12 fit a page.
    assert 8 <= commits_per_page <= 14
