"""E5 -- Figure 1 cross-check: executable joins vs the closed-form model.

The paper's figure comes from cost formulas; this repository also *runs*
the four algorithms on real tuples with instrumented counters.  Weighting
the measured counters with Table 2 must reproduce the same ordering and,
within modelling slack, the same magnitudes as the closed forms on a
scaled-down instance.
"""

import pytest

from repro.cost.join_model import JoinCostModel
from repro.cost.parameters import CostParameters
from repro.join import ALL_JOINS, JoinSpec
from repro.workload.generator import join_inputs

from conftest import emit, format_table

# A scaled-down Table 2 instance: same 40 tuples/page shape, 1/40 the rows.
R_TUPLES, S_TUPLES = 4000, 4000
PAGE_BYTES = 320  # 40 x 8-byte tuples per page


def build_instance():
    r, s = join_inputs(
        R_TUPLES, S_TUPLES, key_domain=20 * R_TUPLES, page_bytes=PAGE_BYTES
    )
    params = CostParameters(
        r_pages=r.page_count,
        s_pages=s.page_count,
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )
    return r, s, params


def run_all(memory_ratio):
    r, s, params = build_instance()
    memory = max(
        params.minimum_memory_pages, params.memory_for_ratio(memory_ratio)
    )
    model = JoinCostModel(params)
    modelled = model.costs(memory)
    measured = {}
    for name in ("sort-merge", "simple-hash", "grace-hash", "hybrid-hash"):
        spec = JoinSpec(
            r=r, s=s, r_field="rkey", s_field="skey",
            memory_pages=memory, params=params,
        )
        result = ALL_JOINS[name]().join(spec)
        measured[name] = result.modelled_seconds
    return memory, modelled, measured


@pytest.mark.parametrize("ratio", [0.3, 1.0])
def test_measured_counters_track_the_model(benchmark, ratio):
    memory, modelled, measured = benchmark(run_all, ratio)

    lines = format_table(
        ["algorithm", "model (s)", "measured (s)", "ratio"],
        [
            (name, modelled[name], measured[name],
             measured[name] / modelled[name])
            for name in sorted(modelled)
        ],
    )
    emit("executable_joins_ratio_%s" % ratio, lines)

    # Orderings agree on the decisive comparisons.
    assert measured["hybrid-hash"] <= measured["grace-hash"] * 1.05
    if ratio >= 1.0:
        assert measured["hybrid-hash"] < measured["sort-merge"]
        assert measured["simple-hash"] < measured["grace-hash"]

    # Magnitudes: measured within a factor band of the closed form.  The
    # executable path does real work the formulas idealise (bucket skew,
    # hash-table growth), so the band is generous but bounded.
    for name in modelled:
        ratio_m = measured[name] / max(modelled[name], 1e-9)
        assert 0.4 < ratio_m < 2.5, (name, ratio_m)


def test_result_sizes_agree_across_algorithms(benchmark):
    def run():
        r, s, params = build_instance()
        memory = params.memory_for_ratio(0.5)
        sizes = set()
        for name, cls in ALL_JOINS.items():
            spec = JoinSpec(
                r=r, s=s, r_field="rkey", s_field="skey",
                memory_pages=max(memory, params.minimum_memory_pages),
                params=params,
            )
            sizes.add(cls().join(spec).cardinality)
        return sizes

    sizes = benchmark(run)
    assert len(sizes) == 1  # every algorithm found the same matches
