"""The Wisconsin benchmark's classic queries, end to end.

A fitting coda: DeWitt (this paper's first author) also created the
Wisconsin benchmark, and its canonical query suite exercises exactly the
machinery this reproduction builds -- selections at controlled
selectivities with and without indexes, the joinABprime two-way join, and
grouped aggregation.  Each query runs through the SQL front end and the
Section 4 planner on Wisconsin-style relations, is checked for exact
cardinality, and reports its Table 2-modelled cost.
"""

import pytest

from repro import MainMemoryDatabase
from repro.workload.generator import wisconsin_relation

from conftest import emit, format_table

TENK = 10_000
ONEK = 1_000


def build_db():
    db = MainMemoryDatabase(memory_pages=2000)
    tenk = wisconsin_relation("tenk1", TENK, seed=41)
    db.register_table(tenk)
    # Bprime: the classic 1k-row join partner drawn from tenk1's key range.
    bprime = wisconsin_relation("bprime", ONEK, seed=42)
    # Rename columns to avoid the planner's cross-table clash rule.
    from repro.storage.relation import Relation
    from repro.storage.tuples import DataType, Field, Schema

    renamed = Relation(
        "bprime",
        Schema(
            [
                Field("b_unique1", DataType.INTEGER),
                Field("b_unique2", DataType.INTEGER),
                Field("b_ten", DataType.INTEGER),
                Field("b_hundred", DataType.INTEGER),
                Field("b_filler", DataType.INTEGER),
            ]
        ),
        512,
    )
    for row in bprime:
        renamed.insert_unchecked(row)
    db.register_table(renamed)
    db.create_index("tenk1", "unique1", kind="btree")
    db.create_index("tenk1", "unique2", kind="btree")
    db.analyze()
    return db


QUERIES = [
    # (name, sql, expected cardinality)
    ("1% selection, no index",
     "SELECT * FROM tenk1 WHERE hundred = 42", TENK // 100),
    ("10% selection, indexed",
     "SELECT * FROM tenk1 WHERE unique2 < %d" % (TENK // 10), TENK // 10),
    ("1% selection, indexed",
     "SELECT * FROM tenk1 WHERE unique2 < %d" % (TENK // 100), TENK // 100),
    ("point lookup, indexed",
     "SELECT * FROM tenk1 WHERE unique1 = 4711", 1),
    ("joinABprime",
     "SELECT unique1, b_unique2 FROM tenk1 "
     "JOIN bprime ON tenk1.unique1 = bprime.b_unique1", ONEK),
    ("grouped aggregate (MIN by 1%)",
     "SELECT hundred, MIN(unique1) AS lo FROM tenk1 GROUP BY hundred", 100),
    ("aggregate over join",
     "SELECT b_ten, COUNT(*) AS n FROM tenk1 "
     "JOIN bprime ON tenk1.unique1 = bprime.b_unique1 GROUP BY b_ten", 10),
    ("distinct projection",
     "SELECT DISTINCT ten FROM tenk1", 10),
]


def test_wisconsin_query_suite(benchmark):
    db = build_db()

    def run_all():
        rows = []
        for name, sql, expected in QUERIES:
            db.reset_counters()
            result = db.sql(sql)
            cost = db.cost_report().total_seconds
            rows.append((name, result.cardinality, expected, cost))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "wisconsin_suite",
        format_table(
            ["query", "rows", "expected", "modelled cost (s)"],
            rows,
        ),
    )
    for name, got, expected, cost in rows:
        assert got == expected, name
        assert cost > 0, name


def test_index_beats_scan_at_one_percent(benchmark):
    """The Wisconsin suite's point: at 1% selectivity the indexed plan must
    be chosen and be much cheaper than the forced scan."""
    db = build_db()

    def run():
        sql = "SELECT * FROM tenk1 WHERE unique2 < %d" % (TENK // 100)
        db.reset_counters()
        indexed = db.sql(sql)
        indexed_cost = db.cost_report().total_seconds
        plan_text = db.sql_explain(sql)

        db.drop_index("tenk1", "unique2")
        db.reset_counters()
        scanned = db.sql(sql)
        scan_cost = db.cost_report().total_seconds
        db.create_index("tenk1", "unique2", kind="btree")
        return indexed.cardinality, scanned.cardinality, indexed_cost, scan_cost, plan_text

    idx_rows, scan_rows, idx_cost, scan_cost, plan_text = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "wisconsin_index_vs_scan",
        [
            "indexed 1%% selection : %6d rows  %.5f s" % (idx_rows, idx_cost),
            "scanned 1%% selection : %6d rows  %.5f s" % (scan_rows, scan_cost),
            "plan: " + plan_text.splitlines()[0].strip(),
        ],
    )
    assert idx_rows == scan_rows
    assert "IndexScan" in plan_text
    assert idx_cost < scan_cost / 3
