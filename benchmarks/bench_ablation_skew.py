"""Ablation -- Section 3.3's skew assumption, stress-tested.

The hash algorithms assume "the key distribution has a bounded density and
the hash function effectively randomizes the keys", leaning on the central
limit theorem for even partitions, with recursion as the escape hatch "if
we err slightly".  This benchmark errs more than slightly: Zipf-skewed join
keys up to a single dominant hot key, checking that

* every algorithm still produces identical (correct) join output;
* hybrid hash degrades gracefully -- recursion bounds the damage so its
  measured cost stays within a small factor of GRACE's even when the
  uniform-hash assumption is demolished.

A scoring caveat: GRACE's phase 2 builds each bucket's hash table without
a memory check (the paper's own setup -- its phase 2 was a hardware sorter
that handled any bucket size), so under skew GRACE silently exceeds the
memory grant.  Hybrid is the only algorithm that *honestly* respects |M|
via recursion, and the extra IO under extreme skew is the price of that
honesty.
"""

from collections import Counter

import pytest

from repro.cost.parameters import CostParameters
from repro.join import GraceHashJoin, HybridHashJoin, JoinSpec, SimpleHashJoin
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema
from repro.workload.distributions import uniform_keys, zipf_keys

from conftest import emit, format_table

R_TUPLES, S_TUPLES = 2000, 4000
MEMORY = 24


def build(theta):
    domain = 400
    if theta is None:
        r_keys = uniform_keys(R_TUPLES, domain, seed=3)
        s_keys = uniform_keys(S_TUPLES, domain, seed=4)
    else:
        r_keys = zipf_keys(R_TUPLES, domain, theta=theta, seed=3)
        s_keys = zipf_keys(S_TUPLES, domain, theta=theta, seed=4)
    r = Relation("r", make_schema(("key", DataType.INTEGER),
                                  ("v", DataType.INTEGER)), 64)
    s = Relation("s", make_schema(("skey", DataType.INTEGER),
                                  ("w", DataType.INTEGER)), 64)
    for i, k in enumerate(r_keys):
        r.insert_unchecked((k, i))
    for i, k in enumerate(s_keys):
        s.insert_unchecked((k, i))
    return r, s


def run_algorithms(r, s):
    params = CostParameters(
        r_pages=min(r.page_count, s.page_count),
        s_pages=max(r.page_count, s.page_count),
        r_tuples_per_page=8,
        s_tuples_per_page=8,
    )
    results = {}
    for name, cls in (
        ("simple-hash", SimpleHashJoin),
        ("grace-hash", GraceHashJoin),
        ("hybrid-hash", HybridHashJoin),
    ):
        spec = JoinSpec(r=r, s=s, r_field="key", s_field="skey",
                        memory_pages=MEMORY, params=params)
        out = cls().join(spec)
        results[name] = (
            Counter(tuple(sorted(map(repr, row))) for row in out.relation),
            out.modelled_seconds,
        )
    return results


def test_skew_correctness_and_graceful_degradation(benchmark):
    def sweep():
        rows = []
        for label, theta in (("uniform", None), ("zipf 0.8", 0.8),
                             ("zipf 1.2", 1.2)):
            r, s = build(theta)
            results = run_algorithms(r, s)
            outputs = {name: out for name, (out, _) in results.items()}
            assert len(set(map(frozenset, (
                o.items() for o in outputs.values()
            )))) == 1, "algorithms diverged under %s" % label
            rows.append(
                (label,) + tuple(
                    results[n][1]
                    for n in ("simple-hash", "grace-hash", "hybrid-hash")
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_skew",
        format_table(
            ["distribution", "simple (s)", "grace (s)", "hybrid (s)"],
            rows,
        ),
    )
    for label, simple, grace, hybrid in rows:
        # Recursion keeps hybrid within a small factor of (memory-cheating,
        # see module docstring) GRACE even when partitions are badly
        # uneven; at moderate skew the two are neck and neck.
        bound = 2.5 if "1.2" in label else 1.25
        assert hybrid < bound * grace, label
        assert hybrid < simple, label


def test_single_hot_key_still_correct(benchmark):
    """The pathological limit: half of R on one key.  No partitioning can
    split it; recursion bottoms out and the oversized bucket is processed
    in one table -- results must still be exact."""

    def run():
        r = Relation("r", make_schema(("key", DataType.INTEGER),
                                      ("v", DataType.INTEGER)), 64)
        s = Relation("s", make_schema(("skey", DataType.INTEGER),
                                      ("w", DataType.INTEGER)), 64)
        for i in range(1000):
            r.insert_unchecked((7 if i % 2 else i, i))
        for i in range(2000):
            s.insert_unchecked((7 if i % 4 == 0 else i % 500, i))
        params = CostParameters(
            r_pages=r.page_count, s_pages=s.page_count,
            r_tuples_per_page=8, s_tuples_per_page=8,
        )
        expected = 0
        r_counts = Counter(row[0] for row in r)
        for row in s:
            expected += r_counts.get(row[0], 0)
        spec = JoinSpec(r=r, s=s, r_field="key", s_field="skey",
                        memory_pages=12, params=params)
        out = HybridHashJoin().join(spec)
        return out.cardinality, expected

    got, expected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert got == expected
