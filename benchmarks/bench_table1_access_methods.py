"""E1/E2 -- Table 1: AVL vs B+-tree breakeven memory-residence fractions.

The paper's Table 1 reports, per (Z, Y) cell, the minimum fraction of the
structure that must be memory resident for the AVL tree to beat the
B+-tree; the prose headline is "more than 80%-90% of the database".  The
regenerated table must land every cell in that band, grow with Z and Y,
and the sequential-access thresholds (inequality 2) must be at least as
demanding as the random-access ones.
"""

import pytest

from repro.cost.access_model import (
    AccessMethodParameters,
    avl_random_cost,
    btree_random_cost,
    table1,
)

from conftest import emit, format_table

Z_VALUES = (10.0, 20.0, 30.0)
Y_VALUES = (0.5, 0.75, 0.9, 1.0)


def test_table1_breakeven_fractions(benchmark):
    rows = benchmark(table1, Z_VALUES, Y_VALUES)

    lines = format_table(
        ["Z", "Y", "random H (min resident)", "sequential H"],
        [
            (r["Z"], r["Y"], "%.1f%%" % (100 * r["random_H"]),
             "%.1f%%" % (100 * r["sequential_H"]))
            for r in rows
        ],
    )
    emit("table1_access_methods", lines)

    for r in rows:
        # Paper headline: 80-90%+ residence needed before AVL wins.
        assert 0.80 <= r["random_H"] <= 1.0, r
        assert 0.80 <= r["sequential_H"] <= 1.0, r
        # Sequential access punishes the AVL tree at least as hard.
        assert r["sequential_H"] >= r["random_H"] - 0.02

    # Monotone in Y at fixed Z (pricier AVL comparisons demand more
    # residence).  Across Z the threshold is nearly flat: the Z-dependent
    # term (Y*C - C') / (Z * slope) can tilt it either way, so assert a
    # tight band rather than a direction.
    for z in Z_VALUES:
        col = [r["random_H"] for r in rows if r["Z"] == z]
        assert col == sorted(col)
    for y in Y_VALUES:
        col = [r["random_H"] for r in rows if r["Y"] == y]
        assert max(col) - min(col) < 0.05


def test_table1_crossover_is_consistent_with_cost_curves(benchmark):
    """Spot-check one cell: below H the B+-tree is cheaper, above it the
    AVL tree is, using the raw Section 2 cost functions."""
    params = AccessMethodParameters(z=20.0, y=0.75)

    def crossover_check():
        from repro.cost.access_model import (
            avl_storage_pages,
            random_breakeven_fraction,
        )

        h = random_breakeven_fraction(params)
        s = avl_storage_pages(params)
        return h, s

    h, s = benchmark(crossover_check)
    below, above = 0.95 * h * s, min(1.0, 1.05 * h) * s
    assert btree_random_cost(params, below) < avl_random_cost(params, below)
    assert avl_random_cost(params, above) <= btree_random_cost(params, above)


def test_measured_breakeven_matches_headline(benchmark):
    """Replay *real* AVL and B+-tree lookups through a buffer pool: the
    measured breakeven sits slightly below the closed form (root-biased
    traffic favours the AVL tree) but stays in the paper's 80-90%+ band."""
    from repro.access.simulator import measured_breakeven
    from repro.cost.access_model import random_breakeven_fraction

    measured = benchmark.pedantic(
        lambda: measured_breakeven(n_keys=3000, lookups=800, resolution=20),
        rounds=1,
        iterations=1,
    )
    model = random_breakeven_fraction(AccessMethodParameters())
    emit(
        "table1_measured_breakeven",
        [
            "closed-form breakeven H : %.3f" % model,
            "measured breakeven H    : %.3f (real lookups, random "
            "replacement)" % measured,
        ],
    )
    assert measured is not None
    assert 0.75 <= measured <= model + 0.05
