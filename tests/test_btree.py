"""Tests for the B+-tree, including hypothesis invariant checks."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.btree import BPlusTree
from repro.cost.counters import OperationCounters


@pytest.fixture
def tree():
    return BPlusTree(order=8)


class TestBasics:
    def test_order_floor(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_order_from_page_geometry(self):
        # The paper's derivation: p / (K + ptr) entries per node.
        tree = BPlusTree(page_bytes=4096, key_bytes=8, pointer_bytes=4)
        assert tree.order == 4096 // 12

    def test_empty(self, tree):
        assert len(tree) == 0
        assert tree.search(1) == []
        assert tree.height == 0
        assert tree.minimum() is None and tree.maximum() is None

    def test_insert_and_search(self, tree):
        for k in (5, 1, 9):
            tree.insert(k, k * 10)
        assert tree.search(5) == [50]
        assert tree.search(2) == []

    def test_duplicates(self, tree):
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.search(1) == ["a", "b"]
        assert len(tree) == 2
        assert tree.distinct_keys == 1


class TestStructure:
    def test_splits_grow_height(self, tree):
        for k in range(200):
            tree.insert(k, k)
        assert tree.height >= 2
        tree.check_invariants()

    def test_height_is_logarithmic(self):
        tree = BPlusTree(order=64)
        for k in range(10_000):
            tree.insert(k, k)
        assert tree.height <= math.ceil(math.log(10_000) / math.log(32)) + 1
        tree.check_invariants()

    def test_path_pages_length_is_height_plus_one(self, tree):
        for k in range(500):
            tree.insert(k, k)
        assert len(tree.path_pages(250)) == tree.height + 1

    def test_random_insert_occupancy_near_yao(self):
        """Yao: B-tree nodes are ~69% full under random insertion."""
        tree = BPlusTree(order=32)
        keys = list(range(20_000))
        random.Random(8).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        assert 0.6 < tree.average_fill() < 0.8

    def test_node_counts(self, tree):
        for k in range(100):
            tree.insert(k, k)
        internal, leaves = tree.node_counts()
        assert leaves >= 100 // (tree.order + 1)
        assert internal >= 1


class TestDelete:
    def test_simple_delete(self, tree):
        for k in range(20):
            tree.insert(k, k)
        assert tree.delete(10) == 1
        assert tree.search(10) == []
        tree.check_invariants()

    def test_delete_one_duplicate(self, tree):
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.search(1) == ["b"]

    def test_delete_missing(self, tree):
        tree.insert(1, "a")
        assert tree.delete(2) == 0
        assert tree.delete(1, "zzz") == 0

    def test_mass_delete_rebalances(self, tree):
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        random.Random(4).shuffle(keys)
        for k in keys[:400]:
            assert tree.delete(k) == 1
        tree.check_invariants()
        remaining = sorted(keys[400:])
        assert [k for k, _ in tree.range_scan()] == remaining

    def test_delete_everything_collapses_root(self, tree):
        for k in range(100):
            tree.insert(k, k)
        for k in range(100):
            tree.delete(k)
        assert len(tree) == 0
        assert tree.height == 0
        tree.check_invariants()


class TestSequenceSet:
    def test_range_scan_in_order(self, tree):
        keys = list(range(100))
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.range_scan(10, 20)] == list(range(10, 21))

    def test_scan_crosses_leaves(self, tree):
        for k in range(1000):
            tree.insert(k, k)
        assert [k for k, _ in tree.range_scan()] == list(range(1000))

    def test_scan_pages_clusters_records(self, tree):
        """The sequential-access advantage of Section 2: many records per
        leaf page, unlike the AVL tree's page-per-record."""
        for k in range(1000):
            tree.insert(k, k)
        leaf_pages = list(tree.scan_pages())
        assert len(leaf_pages) < 1000 / 3

    def test_scan_from_absent_low_key(self, tree):
        for k in range(0, 100, 2):  # even keys only
            tree.insert(k, k)
        got = [k for k, _ in tree.range_scan(5, 11)]
        assert got == [6, 8, 10]


class TestCounters:
    def test_search_comparisons_near_log2_n(self):
        counters = OperationCounters()
        tree = BPlusTree(order=64, counters=counters)
        n = 50_000
        for k in range(n):
            tree.insert(k, k)
        counters.reset()
        probes = 50
        for k in range(0, n, n // probes):
            tree.search(k)
        per_lookup = counters.comparisons / probes
        # The Section 2 model says C' ~ log2(n) ~ 15.6.
        assert abs(per_lookup - math.log2(n)) < 6


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-500, 500)))
def test_property_matches_sorted_reference(keys):
    tree = BPlusTree(order=6)
    for k in keys:
        tree.insert(k, k)
    tree.check_invariants()
    assert [k for k, _ in tree.range_scan()] == sorted(keys)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 60), min_size=1),
    st.lists(st.integers(0, 60)),
)
def test_property_insert_delete_consistency(inserts, deletes):
    from collections import Counter

    tree = BPlusTree(order=4)
    reference = Counter(inserts)
    for k in inserts:
        tree.insert(k, k)
    for k in deletes:
        removed = tree.delete(k, k)
        if reference[k]:
            assert removed == 1
            reference[k] -= 1
        else:
            assert removed == 0
    tree.check_invariants()
    expected = sorted(k for k, c in reference.items() for _ in range(c))
    assert sorted(k for k, _ in tree.range_scan()) == expected
