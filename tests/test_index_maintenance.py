"""Executable-index maintenance under random DML, and DDL plan invalidation.

The Section 2 access methods are live secondary indexes here: every
``db.insert`` / ``db.delete_where`` must keep them synchronised with the
heap.  These property tests drive a random DML mix against a table
carrying a B+-tree, an AVL tree, and a hash index at once, checking
after every step that

* tree invariants still hold (``check_invariants``),
* every index lookup agrees with a full scan of the heap, and
* ordered indexes return range scans identical to the sorted truth.

A second group pins the satellite-2 contract: creating or dropping an
index is a *plan-shape* change, so cached subplans for that table must
become unaddressable (access-path epochs in the plan fingerprints).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import MainMemoryDatabase
from repro.operators.selection import Comparison
from repro.planner.query import Query
from repro.storage.tuples import DataType


ORDERED_KINDS = ("btree", "avl")


def multi_index_db(rows=()):
    """One table, three live indexes: btree(key), avl(payload), hash(key2)."""
    db = MainMemoryDatabase()
    db.create_table(
        "t",
        [
            ("key", DataType.INTEGER),
            ("payload", DataType.INTEGER),
            ("key2", DataType.INTEGER),
        ],
    )
    for row in rows:
        db.insert("t", row)
    db.create_index("t", "key", kind="btree")
    db.create_index("t", "payload", kind="avl")
    db.create_index("t", "key2", kind="hash")
    return db


def heap_rows(db):
    return list(db.table("t"))


def assert_indexes_consistent(db):
    rows = heap_rows(db)
    for column, index in db.catalog.indexes_on("t").items():
        col = db.table("t").schema.index_of(column)
        check = getattr(index, "check_invariants", None)
        if check is not None:
            check()
        assert len(index) == len(rows)
        for value in {r[col] for r in rows}:
            found = sorted(db.lookup("t", column, value))
            truth = sorted(r for r in rows if r[col] == value)
            assert found == truth, (column, value)
        if index.supports_range_scan and rows:
            values = sorted(r[col] for r in rows)
            lo, hi = values[len(values) // 4], values[(3 * len(values)) // 4]
            got = sorted(db.range_lookup("t", column, lo, hi))
            want = sorted(r for r in rows if lo <= r[col] <= hi)
            assert got == want, (column, lo, hi)


# ---------------------------------------------------------------------------
# Random DML property tests
# ---------------------------------------------------------------------------


dml_steps = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 15)),
    min_size=1,
    max_size=30,
)


class TestRandomDML:
    @settings(max_examples=25, deadline=None)
    @given(steps=dml_steps)
    def test_indexes_track_heap_through_dml(self, steps):
        db = multi_index_db(rows=[(k, k * 3, k % 5) for k in range(12)])
        serial = 100
        for op, key in steps:
            if op == "insert":
                db.insert("t", (key, serial, key % 5))
                serial += 1
            else:
                db.delete_where("t", "key", key)
        assert_indexes_consistent(db)

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(st.integers(-50, 50), min_size=1, max_size=40),
        doomed=st.integers(-50, 50),
    )
    def test_delete_where_drops_every_match(self, keys, doomed):
        db = multi_index_db(rows=[(k, i, abs(k) % 7) for i, k in enumerate(keys)])
        removed = db.delete_where("t", "key", doomed)
        assert removed == keys.count(doomed)
        assert db.lookup("t", "key", doomed) == []
        assert_indexes_consistent(db)

    def test_interleaved_dml_long_run(self):
        rng = random.Random(2026)
        db = multi_index_db()
        for step in range(200):
            if rng.random() < 0.7 or db.table("t").cardinality == 0:
                db.insert("t", (rng.randrange(25), step, step % 9))
            else:
                db.delete_where("t", "key", rng.randrange(25))
            if step % 40 == 39:
                assert_indexes_consistent(db)
        assert_indexes_consistent(db)

    @pytest.mark.parametrize("kind", ORDERED_KINDS)
    def test_ordered_index_scan_matches_sorted_heap(self, kind):
        rng = random.Random(7)
        db = MainMemoryDatabase()
        db.create_table("t", [("key", DataType.INTEGER)])
        keys = [rng.randrange(100) for _ in range(80)]
        for k in keys:
            db.insert("t", (k,))
        db.create_index("t", "key", kind=kind)
        got = [r[0] for r in db.range_lookup("t", "key", -1, 101)]
        assert got == sorted(keys)


# ---------------------------------------------------------------------------
# Index DDL must invalidate cached subplans (access-path epochs)
# ---------------------------------------------------------------------------


QUERY = Query(tables=["t"], predicates=[("t", Comparison("key", "<", 40))])


def seeded_db():
    db = MainMemoryDatabase()
    db.create_table(
        "t", [("key", DataType.INTEGER), ("payload", DataType.INTEGER)]
    )
    for i in range(120):
        db.insert("t", (i, i))
    db.analyze()
    return db


class TestIndexDDLInvalidation:
    def test_create_index_invalidates_cached_plans(self):
        db = seeded_db()
        first = sorted(db.execute(QUERY))
        assert sorted(db.execute(QUERY)) == first
        assert db.reuse_stats()["hits"] >= 1
        invalidations = db.reuse_stats()["invalidations"]
        db.create_index("t", "key", kind="btree")
        assert db.reuse_stats()["invalidations"] > invalidations
        # Replans (now index-eligible) and still answers correctly.
        assert sorted(db.execute(QUERY)) == first

    def test_drop_index_invalidates_cached_plans(self):
        db = seeded_db()
        db.create_index("t", "key", kind="btree")
        first = sorted(db.execute(QUERY))
        invalidations = db.reuse_stats()["invalidations"]
        db.drop_index("t", "key")
        assert db.reuse_stats()["invalidations"] > invalidations
        assert sorted(db.execute(QUERY)) == first

    def test_epoch_catches_catalog_level_ddl(self):
        # Even bypassing the facade's eager invalidation, the epoch in
        # the fingerprint must make stale entries unaddressable.
        db = seeded_db()
        before = db.catalog.access_epoch("t")
        db.create_index("t", "key", kind="avl")
        assert db.catalog.access_epoch("t") == before + 1
        db.drop_index("t", "key")
        assert db.catalog.access_epoch("t") == before + 2
        # Dropping the table retires its epoch entirely.
        db.drop_table("t")
        assert db.catalog.access_epoch("t") == 0
