"""Tests for the simulated disk's IO accounting."""

import pytest

from repro.cost.counters import OperationCounters
from repro.cost.parameters import TABLE2_DEFAULTS
from repro.sim.clock import SimulatedClock
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page


def page(pid=0, rows=((1,),)):
    p = Page(pid, 8)
    for r in rows:
        p.add(r)
    return p


@pytest.fixture
def disk():
    return SimulatedDisk(OperationCounters())


class TestFileNamespace:
    def test_create_and_open(self, disk):
        disk.create("f")
        assert disk.exists("f")
        assert disk.open("f").name == "f"

    def test_duplicate_create_rejected(self, disk):
        disk.create("f")
        with pytest.raises(FileExistsError):
            disk.create("f")

    def test_open_missing_rejected(self, disk):
        with pytest.raises(FileNotFoundError):
            disk.open("missing")

    def test_ensure_is_idempotent(self, disk):
        a = disk.ensure("f")
        b = disk.ensure("f")
        assert a is b

    def test_ensure_returns_existing_empty_file(self, disk):
        """Regression: empty DiskFile is falsy (len 0); ensure must still
        return it rather than re-creating."""
        disk.create("f")
        assert disk.ensure("f") is disk.open("f")

    def test_delete(self, disk):
        disk.create("f")
        disk.delete("f")
        assert not disk.exists("f")
        with pytest.raises(FileNotFoundError):
            disk.delete("f")

    def test_files_sorted(self, disk):
        disk.create("b")
        disk.create("a")
        assert disk.files() == ["a", "b"]


class TestIOClassification:
    def test_appends_to_one_file_are_sequential(self, disk):
        for i in range(5):
            disk.append("f", page(i))
        assert disk.counters.sequential_ios == 5
        assert disk.counters.random_ios == 0

    def test_alternating_files_are_random(self, disk):
        disk.create("a")
        disk.create("b")
        for i in range(3):
            disk.append("a", page(i))
            disk.append("b", page(i))
        # First append to "a" parks the head; every subsequent transfer
        # jumps files.
        assert disk.counters.random_ios >= 5

    def test_explicit_classification_wins(self, disk):
        disk.append("a", page(0), sequential=False)
        assert disk.counters.random_ios == 1
        disk.append("b", page(0), sequential=True)
        assert disk.counters.sequential_ios == 1

    def test_scan_is_sequential_after_first_page(self, disk):
        for i in range(10):
            disk.append("f", page(i))
        disk.counters.reset()
        pages = list(disk.scan("f"))
        assert len(pages) == 10
        assert disk.counters.random_ios <= 1
        assert disk.counters.sequential_ios >= 9

    def test_random_read_pattern(self, disk):
        for i in range(10):
            disk.append("f", page(i))
        disk.counters.reset()
        disk.read("f", 7)
        disk.read("f", 2)
        disk.read("f", 9)
        assert disk.counters.random_ios == 3


class TestReadWrite:
    def test_read_returns_stored_page(self, disk):
        disk.append("f", page(0, [(42,)]))
        got = disk.read("f", 0)
        assert list(got) == [(42,)]

    def test_write_in_place(self, disk):
        disk.append("f", page(0, [(1,)]))
        disk.write("f", 0, page(0, [(2,)]))
        assert list(disk.read("f", 0)) == [(2,)]

    def test_out_of_range_read(self, disk):
        disk.create("f")
        with pytest.raises(IndexError):
            disk.read("f", 0)

    def test_out_of_range_write(self, disk):
        disk.create("f")
        with pytest.raises(IndexError):
            disk.write("f", 3, page())

    def test_page_count(self, disk):
        disk.create("f")
        assert disk.page_count("f") == 0
        disk.append("f", page(0))
        assert disk.page_count("f") == 1


class TestClockIntegration:
    def test_clock_advances_by_io_times(self):
        clock = SimulatedClock()
        disk = SimulatedDisk(
            OperationCounters(), params=TABLE2_DEFAULTS, clock=clock
        )
        disk.append("f", page(0))          # first touch: sequential (head at start)
        disk.append("f", page(1))          # sequential
        disk.read("f", 0, sequential=False)  # random
        expected = 2 * TABLE2_DEFAULTS.io_seq + TABLE2_DEFAULTS.io_rand
        assert clock.now == pytest.approx(expected)
