"""Tests for the simulated log devices."""

import pytest

from repro.recovery.log_device import LogDevice, PartitionedLog
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimulatedClock())


class TestLogDevice:
    def test_write_takes_page_time(self, queue):
        device = LogDevice(queue)
        done = device.write_page(["r1"])
        assert done == pytest.approx(0.010)
        queue.run_to_completion()
        assert device.pages_written == 1
        assert queue.clock.now == pytest.approx(0.010)

    def test_writes_serialize_fifo(self, queue):
        device = LogDevice(queue)
        order = []
        device.write_page(["a"], lambda p: order.append(("a", p.completed_at)))
        device.write_page(["b"], lambda p: order.append(("b", p.completed_at)))
        queue.run_to_completion()
        assert order == [("a", pytest.approx(0.010)), ("b", pytest.approx(0.020))]

    def test_completion_payload(self, queue):
        device = LogDevice(queue)
        got = []
        device.write_page(["x", "y"], got.append)
        queue.run_to_completion()
        assert got[0].payload == ["x", "y"]
        assert got[0].page_number == 0

    def test_is_idle(self, queue):
        device = LogDevice(queue)
        assert device.is_idle
        device.write_page(["a"])
        assert not device.is_idle
        queue.run_to_completion()
        assert device.is_idle

    def test_invalid_write_time(self, queue):
        with pytest.raises(ValueError):
            LogDevice(queue, page_write_time=0)


class TestPartitionedLog:
    def test_needs_a_device(self, queue):
        with pytest.raises(ValueError):
            PartitionedLog(queue, devices=0)

    def test_least_busy_round_robins(self, queue):
        log = PartitionedLog(queue, devices=2)
        first = log.least_busy()
        first.write_page(["a"])
        second = log.least_busy()
        assert second is not first

    def test_parallel_writes_overlap(self, queue):
        log = PartitionedLog(queue, devices=2)
        done = []
        log.least_busy().write_page(["a"], lambda p: done.append(p.completed_at))
        log.least_busy().write_page(["b"], lambda p: done.append(p.completed_at))
        queue.run_to_completion()
        # Both complete at 10ms -- simultaneously, on separate devices.
        assert done == [pytest.approx(0.010), pytest.approx(0.010)]

    def test_pages_written_aggregates(self, queue):
        log = PartitionedLog(queue, devices=3)
        for _ in range(6):
            log.least_busy().write_page(["r"])
        queue.run_to_completion()
        assert log.pages_written == 6

    def test_merged_order_by_completion(self, queue):
        """Section 5.2's recovery merge: fragments recombine into one log
        ordered by timestamp."""
        log = PartitionedLog(queue, devices=2, page_write_time=0.010)
        log.devices[0].write_page(["d0p0"])
        log.devices[0].write_page(["d0p1"])
        log.devices[1].write_page(["d1p0"])
        queue.run_to_completion()
        merged = log.all_pages_in_order()
        times = [p.completed_at for p in merged]
        assert times == sorted(times)
        assert merged[0].payload in (["d0p0"], ["d1p0"])
        assert merged[-1].payload == ["d0p1"]
