"""Tests for schemas and tuple validation."""

import pytest

from repro.storage.tuples import DataType, Field, Schema, make_schema


class TestDataType:
    def test_integer_accepts_ints_only(self):
        assert DataType.INTEGER.validate(5)
        assert not DataType.INTEGER.validate(5.0)
        assert not DataType.INTEGER.validate("5")
        assert not DataType.INTEGER.validate(True)  # bools are not ints here

    def test_float_accepts_numbers(self):
        assert DataType.FLOAT.validate(5)
        assert DataType.FLOAT.validate(5.5)
        assert not DataType.FLOAT.validate("x")
        assert not DataType.FLOAT.validate(False)

    def test_string(self):
        assert DataType.STRING.validate("abc")
        assert not DataType.STRING.validate(3)


class TestField:
    def test_default_widths(self):
        assert Field("a", DataType.INTEGER).width == 4
        assert Field("b", DataType.FLOAT).width == 8
        assert Field("c", DataType.STRING).width == 16

    def test_explicit_width(self):
        assert Field("name", DataType.STRING, width=24).width == 24

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Field("", DataType.INTEGER)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            Field("a", DataType.INTEGER, width=-1)


class TestSchema:
    def test_requires_fields(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            make_schema(("a", DataType.INTEGER), ("a", DataType.FLOAT))

    def test_tuple_bytes_sums_widths(self):
        s = Schema(
            [
                Field("id", DataType.INTEGER),  # 4
                Field("name", DataType.STRING, width=20),
                Field("score", DataType.FLOAT),  # 8
            ]
        )
        assert s.tuple_bytes == 32

    def test_tuples_per_page(self):
        s = make_schema(("a", DataType.INTEGER), ("b", DataType.INTEGER))  # 8B
        assert s.tuples_per_page(4096) == 512

    def test_tuple_too_wide_for_page(self):
        s = Schema([Field("blob", DataType.STRING, width=8192)])
        with pytest.raises(ValueError):
            s.tuples_per_page(4096)

    def test_index_of_and_field(self):
        s = make_schema(("x", DataType.INTEGER), ("y", DataType.FLOAT))
        assert s.index_of("y") == 1
        assert s.field("x").dtype is DataType.INTEGER
        assert s.has_field("x") and not s.has_field("z")
        with pytest.raises(KeyError):
            s.index_of("nope")

    def test_validate_checks_arity(self):
        s = make_schema(("x", DataType.INTEGER), ("y", DataType.INTEGER))
        with pytest.raises(ValueError):
            s.validate((1,))

    def test_validate_checks_types(self):
        s = make_schema(("x", DataType.INTEGER))
        with pytest.raises(TypeError):
            s.validate(("not-an-int",))

    def test_validate_returns_plain_tuple(self):
        s = make_schema(("x", DataType.INTEGER))
        assert s.validate([7]) == (7,)

    def test_project_preserves_order_and_width(self):
        s = Schema(
            [
                Field("a", DataType.INTEGER),
                Field("b", DataType.STRING, width=10),
                Field("c", DataType.FLOAT),
            ]
        )
        p = s.project(["c", "a"])
        assert p.names == ["c", "a"]
        assert p.tuple_bytes == 12

    def test_concat_plain(self):
        left = make_schema(("a", DataType.INTEGER))
        right = make_schema(("b", DataType.INTEGER))
        joined = left.concat(right)
        assert joined.names == ["a", "b"]

    def test_concat_with_prefixes(self):
        left = make_schema(("key", DataType.INTEGER))
        right = make_schema(("key", DataType.INTEGER))
        joined = left.concat(right, prefix_self="r_", prefix_other="s_")
        assert joined.names == ["r_key", "s_key"]

    def test_equality_and_hash(self):
        a = make_schema(("x", DataType.INTEGER))
        b = make_schema(("x", DataType.INTEGER))
        c = make_schema(("y", DataType.INTEGER))
        assert a == b and hash(a) == hash(b)
        assert a != c
