"""Tests for the log manager's three commit disciplines."""

import pytest

from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.records import (
    BeginRecord,
    CommitRecord,
    RecordSizing,
    UpdateRecord,
)
from repro.recovery.stable_memory import StableMemory
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimulatedClock())


def manager(queue, policy=CommitPolicy.GROUP, **kw):
    return LogManager(queue, policy=policy, **kw)


def typical_txn(lm, tid, updates=3, deps=frozenset()):
    lm.append(BeginRecord(tid=tid))
    for i in range(updates):
        lm.append(UpdateRecord(tid=tid, record_id=i, old_value=0, new_value=1))
    lm.append_commit(tid, deps)


class TestLSN:
    def test_lsns_monotone(self, queue):
        lm = manager(queue)
        lsns = [lm.append(BeginRecord(tid=i)) for i in range(5)]
        assert lsns == [0, 1, 2, 3, 4]
        assert lm.next_lsn() == 5


class TestConventional:
    def test_one_page_per_commit(self, queue):
        lm = manager(queue, CommitPolicy.CONVENTIONAL)
        for tid in range(5):
            typical_txn(lm, tid)
        queue.run_to_completion()
        assert lm.log.pages_written == 5
        assert lm.committed_count == 5

    def test_serialized_commit_latency(self, queue):
        """Five forced commits on one device: 50 ms of log time -- the
        100 tps ceiling."""
        lm = manager(queue, CommitPolicy.CONVENTIONAL)
        for tid in range(5):
            typical_txn(lm, tid)
        queue.run_to_completion()
        assert queue.clock.now == pytest.approx(0.050)


class TestGroupCommit:
    def test_commits_batch_per_page(self, queue):
        lm = manager(queue)
        for tid in range(10):  # 10 x 472B > 4096B: seals one full page
            typical_txn(lm, tid)
        queue.run_to_completion()
        # Eight 472-byte transactions fill the first page; the rest wait
        # in the open group.
        assert lm.log.pages_written == 1
        assert lm.committed_count == 8

    def test_flush_drains_stragglers(self, queue):
        lm = manager(queue)
        for tid in range(3):
            typical_txn(lm, tid)
        lm.flush()
        queue.run_to_completion()
        assert lm.committed_count == 3

    def test_on_commit_callback(self, queue):
        seen = []
        lm = manager(queue, on_commit=seen.append)
        for tid in range(10):
            typical_txn(lm, tid)
        queue.run_to_completion()
        assert seen == list(range(8))

    def test_commit_record_before_dependents(self, queue):
        """Appending A's commit before B's (B depends on A) keeps A's
        record at a lower LSN; a single FIFO device then guarantees the
        paper's write ordering."""
        lm = manager(queue)
        typical_txn(lm, 1)
        typical_txn(lm, 2, deps={1})
        lm.flush()
        queue.run_to_completion()
        records = lm.durable_log()
        commit_lsns = {
            r.tid: r.lsn for r in records if isinstance(r, CommitRecord)
        }
        assert commit_lsns[1] < commit_lsns[2]


class TestPartitionedOrdering:
    def test_dependent_group_waits(self, queue):
        """With two devices, the dependent's page must not complete before
        the dependency's page."""
        lm = manager(queue, devices=2)
        # tid 2 -> stream 0, tid 3 -> stream 1 (tid % devices).
        typical_txn(lm, 2)
        typical_txn(lm, 3, deps={2})
        lm.flush()
        queue.run_to_completion()
        assert lm.committed_count == 2
        # Reconstruct durability times from the devices.
        times = {}
        for device in lm.log.devices:
            for page in device.pages:
                for rec in page.payload:
                    if isinstance(rec, CommitRecord):
                        times[rec.tid] = page.completed_at
        assert times[2] <= times[3]

    def test_independent_groups_parallel(self, queue):
        lm = manager(queue, devices=2)
        typical_txn(lm, 2)   # stream 0
        typical_txn(lm, 3)   # stream 1, independent
        lm.flush()
        queue.run_to_completion()
        assert queue.clock.now == pytest.approx(0.010)  # overlapped

    def test_wal_rule_across_streams(self, queue):
        """A transaction's commit group depends on the groups holding its
        earlier records, even within a stream across page boundaries."""
        lm = manager(queue, devices=1)
        # Fill most of a page, then let one transaction straddle it.
        big = RecordSizing()
        filler = 0
        while lm._open_groups[0].bytes_used < big.page_bytes - 200:
            lm.append(UpdateRecord(tid=0, record_id=filler))
            filler += 1
        lm.append(UpdateRecord(tid=1, record_id=0))  # fits
        lm.append(UpdateRecord(tid=1, record_id=1))  # seals, next group
        lm.append_commit(1)
        lm.flush()
        queue.run_to_completion()
        assert 1 in lm.durable_tids


class TestStablePolicy:
    def test_instant_durability(self, queue):
        lm = manager(queue, CommitPolicy.STABLE)
        typical_txn(lm, 1)
        assert 1 in lm.durable_tids  # before any disk IO at all
        assert lm.committed_count == 1

    def test_drain_writes_full_pages(self, queue):
        lm = manager(queue, CommitPolicy.STABLE)
        for tid in range(20):
            typical_txn(lm, tid)
        queue.run_to_completion()
        assert lm.log.pages_written >= 2

    def test_stable_survivors_visible_to_recovery(self, queue):
        lm = manager(queue, CommitPolicy.STABLE)
        typical_txn(lm, 1)
        # No queue processing: nothing drained to disk, yet the records
        # are durable because stable memory survives the crash.
        log = lm.durable_log()
        assert any(isinstance(r, CommitRecord) and r.tid == 1 for r in log)

    def test_flush_forces_partial_page(self, queue):
        lm = manager(queue, CommitPolicy.STABLE)
        typical_txn(lm, 1)
        lm.flush()
        queue.run_to_completion()
        assert lm.log.pages_written == 1
        assert lm.stable.pending_records() == []

    def test_compression_reduces_disk_bytes(self, queue):
        plain = manager(EventQueue(SimulatedClock()), CommitPolicy.STABLE)
        packed = manager(
            EventQueue(SimulatedClock()), CommitPolicy.STABLE, compress=True
        )
        for lm in (plain, packed):
            for tid in range(50):
                typical_txn(lm, tid)
            lm.flush()
            lm.queue.run_to_completion()
        assert packed.bytes_written_to_disk < plain.bytes_written_to_disk
        ratio = packed.bytes_written_to_disk / plain.bytes_written_to_disk
        # Old values are ~38% of the typical transaction's bytes.
        assert 0.55 < ratio < 0.75

    def test_compression_requires_stable(self, queue):
        with pytest.raises(ValueError):
            manager(queue, CommitPolicy.GROUP, compress=True)


class TestDurableLog:
    def test_in_lsn_order(self, queue):
        lm = manager(queue, devices=2)
        for tid in range(10):
            typical_txn(lm, tid)
        lm.flush()
        queue.run_to_completion()
        log = lm.durable_log()
        assert [r.lsn for r in log] == sorted(r.lsn for r in log)

    def test_unflushed_records_invisible(self, queue):
        lm = manager(queue)
        typical_txn(lm, 1)
        # Page not full, never flushed, queue never ran: nothing durable.
        assert lm.durable_log() == []
        assert lm.committed_count == 0

    def test_horizon_tracks_durability(self, queue):
        lm = manager(queue)
        typical_txn(lm, 1)
        assert lm.durable_lsn_horizon() < lm.next_lsn() - 1
        lm.flush()
        queue.run_to_completion()
        assert lm.durable_lsn_horizon() == lm.next_lsn() - 1

    def test_stable_horizon_is_everything(self, queue):
        lm = manager(queue, CommitPolicy.STABLE)
        typical_txn(lm, 1)
        assert lm.durable_lsn_horizon() == lm.next_lsn() - 1


class TestAdaptiveFlushRaces:
    """The three arms of the adaptive flush policy -- group fill, latency
    timer, explicit barrier -- racing each other, including on the exact
    same simulated tick."""

    def test_fill_preempts_timer(self, queue):
        """Nine transactions overflow the page before the timer fires: the
        full group seals on fill, only the straggler waits for the timer."""
        lm = manager(queue, max_commit_delay=0.05)
        for tid in range(9):
            typical_txn(lm, tid)
        queue.run_to_completion()
        assert lm.committed_count == 9
        assert lm.groups_sealed == 2
        assert lm.group_commit_stats()["flush_reasons"] == {
            "fill": 1,
            "timer": 1,
        }

    def test_timer_flushes_idle_group(self, queue):
        """A lone commit with no follow-on traffic goes out at the latency
        bound, not never."""
        lm = manager(queue, max_commit_delay=0.05)
        typical_txn(lm, 1)
        queue.run_to_completion()
        assert lm.committed_count == 1
        assert lm.group_commit_stats()["flush_reasons"] == {"timer": 1}
        # Sealed at the 50 ms bound, durable one page write later.
        assert queue.clock.now == pytest.approx(0.060)

    def test_barrier_preempts_timer(self, queue):
        """An explicit barrier seals ahead of the armed timer; the timer
        callback later finds the group gone and does nothing."""
        lm = manager(queue, max_commit_delay=0.05)
        typical_txn(lm, 1)
        assert lm.commit_barrier() == 1
        queue.run_to_completion()
        assert lm.committed_count == 1
        assert lm.group_commit_stats()["flush_reasons"] == {"barrier": 1}

    def test_barrier_on_empty_buffer(self, queue):
        lm = manager(queue, max_commit_delay=0.05)
        assert lm.commit_barrier() == 0
        queue.run_to_completion()
        assert lm.groups_sealed == 0

    def test_same_tick_fill_beats_timer(self, queue):
        """A burst landing on the timer's exact tick: the burst event was
        inserted first, so it runs first, the group seals on fill, and the
        timer callback is a no-op.  Had the timer won, the 3776-byte burst
        would never overflow and both groups would seal on timers."""
        lm = manager(queue, max_commit_delay=0.05)
        queue.schedule(
            0.05,
            lambda: [typical_txn(lm, t) for t in range(2, 10)],
            label="burst",
        )
        queue.schedule(0.0, lambda: typical_txn(lm, 1), label="first txn")
        queue.run_to_completion()
        assert lm.committed_count == 9
        assert lm.group_commit_stats()["flush_reasons"] == {
            "fill": 1,
            "timer": 1,
        }

    def test_conventional_forces_despite_timer(self, queue):
        """The conventional policy forces every commit; the timer knob is
        inert because no group ever lives long enough to arm one."""
        lm = manager(queue, CommitPolicy.CONVENTIONAL, max_commit_delay=0.05)
        typical_txn(lm, 1)
        typical_txn(lm, 2)
        queue.run_to_completion()
        assert lm.group_commit_stats()["flush_reasons"] == {"force": 2}

    def test_stable_barrier_is_forced_drain(self, queue):
        lm = manager(queue, CommitPolicy.STABLE)
        typical_txn(lm, 1)
        assert lm.commit_barrier() == 0  # stable: no groups, just a drain
        queue.run_to_completion()
        reasons = lm.group_commit_stats()["flush_reasons"]
        assert set(reasons) == {"drain"}
        assert lm.committed_count == 1

    def test_group_commit_stats_shape(self, queue):
        lm = manager(queue, max_commit_delay=0.05)
        for tid in range(9):
            typical_txn(lm, tid)
        queue.run_to_completion()
        stats = lm.group_commit_stats()
        assert stats["groups_sealed"] == 2
        # 9 transactions x 5 records over 2 groups.
        assert stats["mean_group_records"] == pytest.approx(22.5)
        assert stats["mean_commits_per_group"] == pytest.approx(4.5)
        assert stats["mean_group_bytes"] > 0
        assert stats["compression_savings_bytes"] == 0
