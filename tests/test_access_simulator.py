"""Tests for the executable Section 2 simulator (measured Table 1)."""

import pytest

from repro.access.simulator import (
    AccessSimulator,
    build_indexes,
    measured_breakeven,
    structure_pages,
)
from repro.cost.access_model import (
    AccessMethodParameters,
    random_breakeven_fraction,
)
from repro.storage.buffer import ReplacementPolicy

N = 1500
PARAMS = AccessMethodParameters()


@pytest.fixture(scope="module")
def indexes():
    return build_indexes(N, seed=3)


class TestStructurePages:
    def test_avl_one_page_per_node(self, indexes):
        avl, _, _ = indexes
        assert structure_pages(avl) == N

    def test_btree_far_fewer_pages(self, indexes):
        _, btree, _ = indexes
        assert structure_pages(btree) < N / 10


class TestMeasurements:
    def test_full_residence_means_no_faults(self, indexes):
        avl, btree, keys = indexes
        for index in (avl, btree):
            sim = AccessSimulator(index, PARAMS)
            m = sim.measure(keys, 1.0, lookups=400, warmup=200)
            assert m.faults_per_lookup == 0.0

    def test_avl_comparisons_near_model_c(self, indexes):
        import math

        avl, _, keys = indexes
        sim = AccessSimulator(avl, PARAMS)
        m = sim.measure(keys, 0.5, lookups=400, warmup=200)
        assert abs(m.comparisons_per_lookup - math.log2(N)) < 1.5

    def test_faults_decrease_with_memory(self, indexes):
        avl, _, keys = indexes
        sim = AccessSimulator(avl, PARAMS)
        sweep = sim.sweep(keys, [0.25, 0.5, 0.9], lookups=400)
        faults = [m.faults_per_lookup for m in sweep]
        assert faults == sorted(faults, reverse=True)

    def test_measured_fault_rate_below_uniform_model(self, indexes):
        """Root bias: measured faults per lookup stay below C*(1-H)."""
        avl, _, keys = indexes
        sim = AccessSimulator(avl, PARAMS)
        for fraction in (0.25, 0.5, 0.75):
            m = sim.measure(keys, fraction, lookups=400, warmup=400)
            model = m.comparisons_per_lookup * (1 - fraction)
            assert m.faults_per_lookup <= model + 0.3

    def test_avl_comparison_discount_applied(self, indexes):
        avl, _, keys = indexes
        cheap = AccessSimulator(
            avl, AccessMethodParameters(y=0.5)
        ).measure(keys, 1.0, lookups=200, warmup=100)
        full = AccessSimulator(
            avl, AccessMethodParameters(y=1.0)
        ).measure(keys, 1.0, lookups=200, warmup=100)
        assert cheap.cost_per_lookup == pytest.approx(
            0.5 * full.cost_per_lookup, rel=0.05
        )

    def test_empty_keys_rejected(self, indexes):
        avl, _, _ = indexes
        with pytest.raises(ValueError):
            AccessSimulator(avl, PARAMS).measure([], 0.5)

    def test_policy_parameter_respected(self, indexes):
        avl, _, keys = indexes
        lru = AccessSimulator(avl, PARAMS, policy=ReplacementPolicy.LRU)
        m = lru.measure(keys, 0.5, lookups=300, warmup=300)
        assert m.faults_per_lookup >= 0


class TestMeasuredBreakeven:
    def test_breakeven_exists_and_is_high(self):
        h = measured_breakeven(n_keys=1200, lookups=400, resolution=10)
        assert h is not None
        # Measured threshold stays in the paper's ballpark...
        assert 0.6 <= h <= 1.0

    def test_measured_at_most_model(self):
        """Root bias helps the AVL tree, so the measured threshold cannot
        exceed the closed form by more than grid resolution."""
        model = random_breakeven_fraction(PARAMS)
        measured = measured_breakeven(n_keys=1200, lookups=400, resolution=10)
        assert measured is not None
        assert measured <= model + 0.1
