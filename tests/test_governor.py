"""Tests for the resource governor (repro.governor) and its seams.

Covers admission control (budgets, queue, typed rejections), cooperative
cancellation and deadlines, mid-query grant revocation with hybrid hash's
graceful degradation, the worker circuit breaker, and the worker-count
validation satellite.
"""

from __future__ import annotations

import threading

import pytest

from repro.chaos.injector import FaultInjector, FaultPlan
from repro.core.database import MainMemoryDatabase
from repro.cost.counters import OperationCounters
from repro.cost.parameters import CostParameters
from repro.errors import (
    AdmissionRejected,
    ConfigurationError,
    GovernorError,
    PlannerError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    UnplannableQueryError,
)
from repro.governor import (
    CancellationToken,
    CircuitBreaker,
    Governor,
    GovernorConfig,
    MemoryGrant,
    QueryGuard,
)
from repro.join.base import JoinSpec
from repro.join.hybrid_hash import HybridHashJoin
from repro.join.parallel import validate_workers
from repro.operators.selection import Comparison
from repro.planner.query import JoinClause, Query
from repro.storage.tuples import DataType, make_schema

from tests.conftest import build_relation


def make_db(**kwargs) -> MainMemoryDatabase:
    db = MainMemoryDatabase(memory_pages=4, page_bytes=256, **kwargs)
    db.create_table(
        "emp",
        [("emp_id", DataType.INTEGER), ("dept", DataType.INTEGER),
         ("salary", DataType.INTEGER)],
    )
    db.create_table(
        "proj", [("proj_id", DataType.INTEGER), ("owner", DataType.INTEGER)]
    )
    for i in range(240):
        db.insert("emp", (i, i % 10, 1000 + i))
    for p in range(240):
        db.insert("proj", (p, (p * 13) % 240))
    db.analyze()
    return db


FILTER_QUERY = Query(
    tables=["emp"], predicates=[("emp", Comparison("salary", ">", 1100))]
)
SPILL_JOIN = Query(
    tables=["emp", "proj"],
    joins=[JoinClause("emp", "emp_id", "proj", "owner")],
)


class TestTaxonomy:
    def test_hierarchy(self):
        for exc in (AdmissionRejected, QueryCancelled, QueryTimeout):
            assert issubclass(exc, GovernorError)
            assert issubclass(exc, ReproError)
        # Builtin compatibility: old except ValueError clauses keep working.
        assert issubclass(PlannerError, ValueError)
        assert issubclass(UnplannableQueryError, PlannerError)
        assert issubclass(ConfigurationError, ValueError)

    def test_recovery_error_joined_the_taxonomy(self):
        from repro.recovery.restart import RecoveryError

        assert issubclass(RecoveryError, ReproError)
        assert issubclass(RecoveryError, RuntimeError)

    def test_planner_raises_typed_errors(self):
        db = make_db()
        disconnected = Query(tables=["emp", "proj"])  # no join clause
        with pytest.raises(UnplannableQueryError):
            db.plan(disconnected)


class TestAdmission:
    def test_happy_path_admits_and_releases(self):
        gov = Governor(GovernorConfig(max_concurrent=2, max_memory_pages=100))
        handle = gov.admit(10)
        assert gov.stats()["active"] == 1
        assert gov.stats()["pages_in_use"] == 10
        gov.release(handle)
        assert gov.stats()["active"] == 0
        assert gov.stats()["pages_in_use"] == 0
        assert gov.stats()["admitted"] == 1

    def test_memory_rejection_is_typed(self):
        gov = Governor(GovernorConfig(max_memory_pages=10))
        with pytest.raises(AdmissionRejected) as exc_info:
            gov.admit(20)
        assert exc_info.value.reason == "memory"
        assert exc_info.value.qid is not None

    def test_queue_full_rejection_is_typed(self):
        gov = Governor(GovernorConfig(max_concurrent=1, max_queue=0))
        gov.admit(2)
        with pytest.raises(AdmissionRejected) as exc_info:
            gov.admit(2)
        assert exc_info.value.reason == "queue-full"

    def test_admission_timeout(self):
        gov = Governor(
            GovernorConfig(max_concurrent=1, max_queue=4, admission_timeout=0.05)
        )
        gov.admit(2)
        with pytest.raises(QueryTimeout):
            gov.admit(2)
        assert gov.stats()["admission_timeouts"] == 1

    def test_queued_request_admits_when_capacity_frees(self):
        gov = Governor(
            GovernorConfig(max_concurrent=1, max_queue=4, admission_timeout=5.0)
        )
        first = gov.admit(2)
        admitted = []

        def waiter():
            admitted.append(gov.admit(2))

        thread = threading.Thread(target=waiter)
        thread.start()
        gov.release(first)
        thread.join(timeout=5.0)
        assert admitted and admitted[0].qid != first.qid
        assert gov.stats()["peak_concurrent"] == 1

    def test_memory_pressure_shrinks_registered_caches(self):
        from repro.planner.reuse import PlanReuseCache
        from repro.storage.relation import Relation
        from repro.storage.tuples import Field, Schema

        cache = PlanReuseCache(max_entries=16)
        rel = Relation("x", Schema([Field("a", DataType.INTEGER)]), 64)
        for i in range(8):
            cache.put("k%d" % i, rel, ["t"])
        gov = Governor(
            GovernorConfig(max_concurrent=1, max_queue=0, pressure_keep=0.5)
        )
        gov.register_shrinkable(cache)
        gov.admit(2)
        with pytest.raises(AdmissionRejected):
            gov.admit(2)  # concurrency-blocked: pressure fires first
        assert len(cache) == 4
        assert gov.stats()["pressure_evictions"] == 4

    def test_cancel_by_qid(self):
        gov = Governor()
        handle = gov.admit(4)
        assert gov.cancel(handle.qid) is True
        assert gov.cancel(9999) is False
        with pytest.raises(QueryCancelled):
            handle.token.check()
        gov.release(handle)
        assert gov.stats()["cancelled"] == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GovernorConfig(max_concurrent=0)
        with pytest.raises(ConfigurationError):
            GovernorConfig(max_queue=-1)
        with pytest.raises(ConfigurationError):
            GovernorConfig(pressure_keep=1.5)
        with pytest.raises(ConfigurationError):
            GovernorConfig(shed_threshold=-1)


class TestAdmissionAwareWaits:
    """begin_wait/end_wait: a blocked statement holds no admission slot."""

    def test_parked_slot_admits_someone_else(self):
        gov = Governor(GovernorConfig(max_concurrent=1, max_queue=0))
        blocked = gov.admit(2)
        gov.begin_wait(blocked)
        stats = gov.stats()
        assert stats["active"] == 0
        assert stats["parked"] == 1
        assert stats["pages_in_use"] == 0
        assert stats["slots_released_in_wait"] == 1
        # The freed slot is real capacity: a newcomer admits immediately.
        other = gov.admit(2)
        gov.release(other)
        gov.end_wait(blocked)
        stats = gov.stats()
        assert stats["active"] == 1
        assert stats["parked"] == 0
        assert stats["requeues"] == 1
        gov.release(blocked)
        assert gov.stats()["pages_in_use"] == 0

    def test_end_wait_waits_for_capacity(self):
        gov = Governor(GovernorConfig(max_concurrent=1, max_queue=0))
        parked = gov.admit(2)
        gov.begin_wait(parked)
        hog = gov.admit(2)
        resumed = []

        def resume():
            gov.end_wait(parked, timeout=5.0)
            resumed.append(True)

        thread = threading.Thread(target=resume)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive() and not resumed  # no slot yet
        gov.release(hog)
        thread.join(timeout=5.0)
        assert resumed
        gov.release(parked)
        assert gov.stats()["pages_in_use"] == 0

    def test_end_wait_timeout_leaves_handle_parked_for_release(self):
        gov = Governor(GovernorConfig(max_concurrent=1, max_queue=0))
        parked = gov.admit(2)
        gov.begin_wait(parked)
        hog = gov.admit(2)
        with pytest.raises(QueryTimeout):
            gov.end_wait(parked, timeout=0.05)
        assert gov.stats()["admission_timeouts"] == 1
        # The single release covers the parked handle too: no slot leaks.
        gov.release(parked)
        gov.release(hog)
        stats = gov.stats()
        assert stats["active"] == 0
        assert stats["parked"] == 0
        assert stats["pages_in_use"] == 0

    def test_release_of_parked_handle_does_not_double_credit(self):
        gov = Governor(GovernorConfig(max_concurrent=2, max_memory_pages=10))
        a = gov.admit(4)
        b = gov.admit(4)
        gov.begin_wait(a)  # returns a's 4 pages
        gov.release(a)  # parked release: must NOT subtract again
        assert gov.stats()["pages_in_use"] == 4  # b's pages intact
        gov.release(b)
        assert gov.stats()["pages_in_use"] == 0

    def test_begin_wait_guards_state(self):
        from repro.errors import StateError

        gov = Governor()
        handle = gov.admit(2)
        gov.begin_wait(handle)
        with pytest.raises(StateError):
            gov.begin_wait(handle)  # already parked
        gov.end_wait(handle)
        gov.release(handle)
        with pytest.raises(StateError):
            gov.end_wait(handle)  # not parked any more

    def test_cancel_reaches_parked_queries(self):
        gov = Governor()
        handle = gov.admit(2)
        gov.begin_wait(handle)
        assert gov.cancel(handle.qid) is True
        with pytest.raises(QueryCancelled):
            handle.token.check()
        gov.release(handle)

    def test_shed_valve_fast_rejects_when_saturated(self):
        gov = Governor(
            GovernorConfig(
                max_concurrent=1, max_queue=8, shed_threshold=2,
                admission_timeout=5.0,
            )
        )
        hog = gov.admit(2)
        waiters = []

        def wait_for_slot():
            try:
                waiters.append(gov.admit(2))
            except ReproError:
                pass

        threads = [threading.Thread(target=wait_for_slot) for _ in range(2)]
        for t in threads:
            t.start()
        deadline_helper = threading.Event()
        deadline_helper.wait(0.1)  # let both enter the queue
        assert gov.stats()["waiting"] == 2
        with pytest.raises(AdmissionRejected) as exc_info:
            gov.admit(2)
        assert exc_info.value.reason == "overload"
        assert gov.stats()["sheds"] == 1
        gov.release(hog)
        for t in threads:
            t.join(timeout=5.0)
        for handle in waiters:
            gov.release(handle)
        assert gov.stats()["pages_in_use"] == 0


class TestCancellationToken:
    def test_cancel_takes_effect_at_next_check(self):
        token = CancellationToken(qid=7)
        token.check()
        token.cancel()
        assert token.expired()
        with pytest.raises(QueryCancelled) as exc_info:
            token.check()
        assert exc_info.value.qid == 7

    def test_deadline_with_fake_clock(self):
        now = [0.0]
        token = CancellationToken(qid=1, timeout=10.0, clock=lambda: now[0])
        token.check()
        now[0] = 10.5
        with pytest.raises(QueryTimeout):
            token.check()

    def test_zero_timeout_aborts_first_page(self):
        db = make_db()
        with pytest.raises(QueryTimeout):
            db.execute(FILTER_QUERY, timeout=0.0)
        # The governor released the query's capacity on the way out.
        assert db.governor_stats()["active"] == 0

    def test_chaos_plan_cancels_at_exact_page(self):
        db = make_db()
        injector = FaultInjector(FaultPlan(cancel_at_page=5))
        db.attach_chaos(injector)
        with pytest.raises(QueryCancelled):
            db.execute(FILTER_QUERY)
        assert injector.queries_cancelled == 1
        assert injector.exec_pages >= 5
        # Later queries run normally on fresh tokens.
        rows = db.execute(FILTER_QUERY)
        assert len(list(rows)) == 139


class TestMemoryGrant:
    def test_effective_and_floor(self):
        grant = MemoryGrant(10)
        assert grant.effective(6) == 6
        assert grant.effective(50) == 10
        grant.revoke(1)  # floors at 2
        assert grant.pages == 2
        assert grant.effective(50) == 2

    def test_revoke_is_one_way(self):
        grant = MemoryGrant(10)
        assert grant.revoke(4) == 4
        assert grant.revoke(8) == 4  # raising is ignored
        assert grant.revocations == 1

    def test_charge_tracks_high_water(self):
        grant = MemoryGrant(10)
        grant.charge(3.5)
        grant.charge(2.0)
        assert grant.peak_pages == 3.5
        assert not grant.over_budget(10.0)
        assert grant.over_budget(10.5)

    def test_rejects_tiny_grants(self):
        with pytest.raises(ConfigurationError):
            MemoryGrant(1)


def hybrid_instance(n=400, page_bytes=64, memory_pages=6):
    r = build_relation("r", [i % 97 for i in range(n)], page_bytes=page_bytes)
    s_schema = make_schema(("skey", DataType.INTEGER),
                           ("sval", DataType.INTEGER))
    s = build_relation(
        "s", [i % 89 for i in range(2 * n)], schema=s_schema,
        page_bytes=page_bytes,
    )
    params = CostParameters(
        r_pages=r.page_count, s_pages=s.page_count,
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )

    def spec():
        return JoinSpec(r=r, s=s, r_field="key", s_field="skey",
                        memory_pages=memory_pages, params=params)

    return spec


class TestGrantRevocationDegradation:
    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "tuple"])
    def test_revoked_grant_demotes_resident_same_rows(self, batch):
        spec = hybrid_instance()
        baseline = HybridHashJoin(batch=batch).join(spec())
        assert baseline.cardinality > 0

        grant = MemoryGrant(6)
        token = CancellationToken(qid=1)
        # Revoke hard at the 4th page boundary, mid phase 1.
        token.on_check = (
            lambda tok: grant.revoke(2) if tok.checks == 4 else None
        )
        guard = QueryGuard(token=token, grant=grant)
        degraded = HybridHashJoin(batch=batch).set_guard(guard).join(spec())

        assert grant.revocations == 1
        assert sorted(degraded.relation) == sorted(baseline.relation)
        # Demotion is honest: the degraded run paid extra moves/IO.
        assert degraded.counters.as_dict() != baseline.counters.as_dict()

    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "tuple"])
    def test_unrevoked_guard_is_counter_identical(self, batch):
        spec = hybrid_instance()
        baseline = HybridHashJoin(batch=batch).join(spec())
        guard = QueryGuard(token=CancellationToken(qid=1), grant=MemoryGrant(6))
        governed = HybridHashJoin(batch=batch).set_guard(guard).join(spec())
        assert sorted(governed.relation) == sorted(baseline.relation)
        assert governed.counters.as_dict() == baseline.counters.as_dict()

    def test_revocation_mid_phase1b_still_correct(self):
        spec = hybrid_instance()
        baseline = HybridHashJoin(batch=True).join(spec())
        grant = MemoryGrant(6)
        token = CancellationToken(qid=2)
        # R is ~7 pages at 8 tuples/page: checkpoint ~30 lands in S's scan.
        token.on_check = (
            lambda tok: grant.revoke(3) if tok.checks == 30 else None
        )
        guard = QueryGuard(token=token, grant=grant)
        degraded = HybridHashJoin(batch=True).set_guard(guard).join(spec())
        assert grant.revocations == 1
        assert sorted(degraded.relation) == sorted(baseline.relation)

    def test_cancellation_aborts_join(self):
        spec = hybrid_instance()
        token = CancellationToken(qid=3)
        token.on_check = lambda tok: token.cancel() if tok.checks == 5 else None
        guard = QueryGuard(token=token)
        with pytest.raises(QueryCancelled):
            HybridHashJoin(batch=True).set_guard(guard).join(spec())


class TestCircuitBreaker:
    def test_trips_after_threshold_and_is_sticky(self):
        breaker = CircuitBreaker(threshold=2)
        assert breaker.allows_parallel()
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert not breaker.allows_parallel()
        breaker.reset()
        assert breaker.allows_parallel()
        assert breaker.serial_retries == 2  # retries survive reset

    def test_tripped_breaker_forces_serial_pool(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure()
        guard = QueryGuard(token=CancellationToken(), breaker=breaker)
        algo = HybridHashJoin(workers=4).set_guard(guard)
        assert algo.pool_workers() == 1

    def test_rejects_zero_threshold(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)


class TestValidateWorkers:
    def test_accepts_ints_and_integral_floats(self):
        assert validate_workers(1) == 1
        assert validate_workers(4) == 4
        assert validate_workers(0) == 1  # 0 means serial
        assert validate_workers(2.0) == 2

    @pytest.mark.parametrize("bad", [-1, -2.0, 1.5, True, "2", None])
    def test_rejects_invalid_counts(self, bad):
        with pytest.raises((ConfigurationError, TypeError)):
            validate_workers(bad)

    def test_join_entry_point_validates(self):
        with pytest.raises(ConfigurationError):
            HybridHashJoin(workers=-3)

    def test_facade_validates(self):
        with pytest.raises(ConfigurationError):
            MainMemoryDatabase(join_workers=-1)


class TestFacadeIntegration:
    def test_every_execute_is_governed(self):
        db = make_db()
        rows = sorted(db.execute(FILTER_QUERY))
        stats = db.governor_stats()
        assert stats["admitted"] == 1
        assert stats["active"] == 0  # released on the way out
        assert sorted(db.execute(FILTER_QUERY)) == rows
        assert db.governor_stats()["admitted"] == 2

    def test_spill_join_under_default_governor(self):
        db = make_db()
        rows = list(db.execute(SPILL_JOIN))
        assert len(rows) == 240  # owner is a permutation of emp_id

    def test_governor_config_passthrough(self):
        db = make_db(governor=GovernorConfig(max_concurrent=2))
        assert db.governor.config.max_concurrent == 2
        # Facade defaults the total budget to one grant per slot.
        assert db.governor.config.max_memory_pages == 4 * 2

    def test_release_happens_on_error_too(self):
        db = make_db()
        injector = FaultInjector(FaultPlan(cancel_at_page=2))
        db.attach_chaos(injector)
        with pytest.raises(QueryCancelled):
            db.execute(FILTER_QUERY)
        assert db.governor_stats()["active"] == 0
