"""Tests for the PR-9 vectorized join pipeline.

Four seams are covered, matching the acceptance checklist:

* **N-way equivalence** -- 3..5-table chained joins through every join
  algorithm are byte-identical (rows *and* ``OperationCounters``) across
  tuple-at-a-time, row-view batch, and columnar batch execution.
* **Adaptive re-split** -- the hybrid join's runtime skew handling fires
  under Zipf-skewed keys, produces the same rows as the static recursive
  fallback, makes the same decisions in every execution mode, and
  survives a seeded chaos sweep over the re-split fault seam with no
  leaked scratch files.
* **Plan order-invariance** -- the greedy optimizer picks the same plan
  no matter how the query lists its tables.
* **Measured statistics** -- ``join_selectivity`` consumes analyzed
  :class:`ColumnStats`, and re-analyzing a table changes join
  fingerprints so the reuse cache drops stale subtrees.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.chaos.injector import FaultInjector, FaultPlan, RESPLIT_FAULT_KINDS
from repro.cost.counters import OperationCounters
from repro.cost.parameters import CostParameters
from repro.governor.cancellation import CancellationToken
from repro.governor.guard import QueryGuard
from repro.join import ALL_JOINS, HybridHashJoin, JoinSpec
from repro.planner.planner import Planner, PlannerConfig
from repro.planner.query import JoinClause, Query
from repro.planner.selectivity import join_selectivity
from repro.storage.catalog import Catalog, ColumnStats
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema
from repro.workload.distributions import zipf_keys

PAGE_BYTES = 64

MODES = (dict(batch=False), dict(batch=True, columnar=False), dict(batch=True))


def make_relation(name, rows, columns):
    schema = Schema([Field(c, DataType.INTEGER) for c in columns])
    rel = Relation(name, schema, PAGE_BYTES)
    rel.extend_rows(rows)
    return rel


def chain_spec(r, s, r_field, s_field, memory_pages):
    params = CostParameters(
        r_pages=max(1, min(r.page_count, s.page_count)),
        s_pages=max(1, max(r.page_count, s.page_count)),
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )
    return JoinSpec(
        r=r,
        s=s,
        r_field=r_field,
        s_field=s_field,
        memory_pages=memory_pages,
        params=params,
    )


# ---------------------------------------------------------------------------
# N-way chained joins: every algorithm x every execution mode
# ---------------------------------------------------------------------------


def nway_tables(n_tables):
    """``n_tables`` relations sharing key values but not column names."""
    rng = random.Random(90 + n_tables)
    tables = []
    for i in range(n_tables):
        rows = [
            (rng.randrange(24), rng.randrange(100))
            for _ in range(70 + 30 * i)
        ]
        tables.append((("k%d" % i, "p%d" % i), rows))
    return tables


class TestNWayEquivalence:
    """3..5-way join chains are mode-invariant, rows and counters alike."""

    @pytest.mark.parametrize("memory_pages", [6, 200])
    @pytest.mark.parametrize("n_tables", [3, 4, 5])
    @pytest.mark.parametrize("name", sorted(ALL_JOINS))
    def test_chain_is_mode_invariant(self, name, n_tables, memory_pages):
        tables = nway_tables(n_tables)

        def run(kwargs):
            counters = OperationCounters()
            cols, rows = tables[0]
            current = make_relation("t0", rows, cols)
            for i in range(1, n_tables):
                cols, rows = tables[i]
                nxt = make_relation("t%d" % i, rows, cols)
                algo = ALL_JOINS[name](counters=counters, **kwargs)
                spec = chain_spec(
                    current, nxt, "k%d" % (i - 1), "k%d" % i, memory_pages
                )
                current = algo.join(spec).relation
            return sorted(current), counters.as_dict()

        try:
            runs = [run(dict(kwargs)) for kwargs in MODES]
        except ValueError:
            pytest.skip("algorithm assumptions do not hold at this grant")
        base_rows, base_counters = runs[0]
        assert base_rows, "degenerate chain: no rows survived"
        for rows, counters in runs[1:]:
            assert rows == base_rows
            assert counters == base_counters


# ---------------------------------------------------------------------------
# Adaptive re-split under skew
# ---------------------------------------------------------------------------


#: Wide pages and a key domain much larger than the bucket fan-out: hot
#: buckets hold many moderately hot keys, which is the regime where the
#: salted re-split can actually separate them (a single mega-key bucket
#: is indivisible and is deliberately left to static recursion).
SKEW_PAGE_BYTES = 512


def skewed_inputs(theta):
    r_keys = zipf_keys(1000, 62, theta=theta, seed=31)
    s_keys = zipf_keys(4000, 62, theta=theta, seed=32)
    r_rows = [(k, i) for i, k in enumerate(r_keys)]
    s_rows = [(k, i) for i, k in enumerate(s_keys)]
    return r_rows, s_rows


def skew_relation(name, rows, columns):
    schema = Schema([Field(c, DataType.INTEGER) for c in columns])
    rel = Relation(name, schema, SKEW_PAGE_BYTES)
    rel.extend_rows(rows)
    return rel


def run_hybrid(r_rows, s_rows, adaptive=True, guard=None, **kwargs):
    algo = HybridHashJoin(**kwargs)
    algo.adaptive = adaptive
    if guard is not None:
        algo.set_guard(guard)
    r = skew_relation("r", r_rows, ("key", "pay"))
    s = skew_relation("s", s_rows, ("skey", "spay"))
    memory_pages = max(3, int(r.page_count * 1.2 / 7.0) + 1)
    result = algo.join(chain_spec(r, s, "key", "skey", memory_pages))
    return algo, sorted(result.relation), result.counters.as_dict()


class TestAdaptiveResplit:
    @pytest.mark.parametrize("theta", [0.0, 0.8, 1.2])
    def test_modes_agree_on_resplit_decisions(self, theta):
        r_rows, s_rows = skewed_inputs(theta)
        runs = [
            run_hybrid(r_rows, s_rows, **dict(kwargs)) for kwargs in MODES
        ]
        base_algo, base_rows, base_counters = runs[0]
        for algo, rows, counters in runs[1:]:
            assert rows == base_rows
            assert counters == base_counters
            assert algo.resplits == base_algo.resplits
            assert algo.resplit_denied == base_algo.resplit_denied

    def test_skew_triggers_resplit(self):
        r_rows, s_rows = skewed_inputs(0.8)
        algo, rows, _ = run_hybrid(r_rows, s_rows)
        assert algo.resplits > 0
        assert rows

    def test_static_fallback_same_rows(self):
        for theta in (0.0, 0.8, 1.2):
            r_rows, s_rows = skewed_inputs(theta)
            _, adaptive_rows, _ = run_hybrid(r_rows, s_rows, adaptive=True)
            static, static_rows, _ = run_hybrid(
                r_rows, s_rows, adaptive=False
            )
            assert static.resplits == 0
            assert adaptive_rows == static_rows

    @pytest.mark.parametrize("kind", RESPLIT_FAULT_KINDS)
    def test_deterministic_resplit_fault_keeps_rows(self, kind):
        r_rows, s_rows = skewed_inputs(0.8)
        _, expected, _ = run_hybrid(r_rows, s_rows)
        injector = FaultInjector(FaultPlan(resplit_faults={0: kind}))
        guard = QueryGuard(token=CancellationToken(), injector=injector)
        algo, rows, _ = run_hybrid(r_rows, s_rows, guard=guard)
        assert rows == expected
        assert injector.resplit_faults_injected == 1
        assert algo.resplit_aborts >= 1

    def test_seeded_fault_sweep_keeps_rows_and_cleans_disk(self):
        r_rows, s_rows = skewed_inputs(0.8)
        _, expected, _ = run_hybrid(r_rows, s_rows)
        for seed in range(8):
            rng = random.Random(seed)
            faults = {
                event: RESPLIT_FAULT_KINDS[rng.randrange(2)]
                for event in range(4)
                if rng.random() < 0.5
            }
            injector = FaultInjector(FaultPlan(resplit_faults=faults))
            guard = QueryGuard(token=CancellationToken(), injector=injector)
            algo, rows, _ = run_hybrid(r_rows, s_rows, guard=guard)
            assert rows == expected, "seed %d diverged" % seed
            # Every scratch partition file was consumed and deleted.
            assert not algo.disk._files, "seed %d leaked %r" % (
                seed,
                sorted(algo.disk._files),
            )


# ---------------------------------------------------------------------------
# Planner: order-invariance and measured statistics
# ---------------------------------------------------------------------------


def star_catalog():
    cat = Catalog()
    rng = random.Random(7)
    sizes = {"fact": 400, "dim_a": 30, "dim_b": 60, "dim_c": 90}
    fact = Relation(
        "fact",
        Schema(
            [
                Field("fa", DataType.INTEGER),
                Field("fb", DataType.INTEGER),
                Field("fc", DataType.INTEGER),
            ]
        ),
        PAGE_BYTES,
    )
    fact.extend_rows(
        [
            (rng.randrange(30), rng.randrange(60), rng.randrange(90))
            for _ in range(sizes["fact"])
        ]
    )
    cat.register(fact)
    for name, col, domain in (
        ("dim_a", "a_id", 30),
        ("dim_b", "b_id", 60),
        ("dim_c", "c_id", 90),
    ):
        rel = Relation(
            name,
            Schema(
                [Field(col, DataType.INTEGER), Field(col + "_v", DataType.INTEGER)]
            ),
            PAGE_BYTES,
        )
        rel.extend_rows([(i, i * 2) for i in range(sizes[name])])
        cat.register(rel)
    for name in cat.relations():
        cat.analyze(name)
    return cat


STAR_JOINS = [
    JoinClause("fact", "fa", "dim_a", "a_id"),
    JoinClause("fact", "fb", "dim_b", "b_id"),
    JoinClause("fact", "fc", "dim_c", "c_id"),
]


class TestPlanOrderInvariance:
    def test_table_listing_order_is_immaterial(self):
        cat = star_catalog()
        planner = Planner(cat, PlannerConfig(memory_pages=200))
        tables = ["fact", "dim_a", "dim_b", "dim_c"]
        baseline = None
        for perm in itertools.permutations(tables):
            query = Query(tables=list(perm), joins=list(STAR_JOINS))
            explained = planner.explain(query)
            if baseline is None:
                baseline = explained
            else:
                assert explained == baseline, "order %r changed the plan" % (
                    perm,
                )

    def test_join_clause_order_is_immaterial(self):
        cat = star_catalog()
        planner = Planner(cat, PlannerConfig(memory_pages=200))
        tables = ["fact", "dim_a", "dim_b", "dim_c"]
        baseline = planner.explain(Query(tables=tables, joins=list(STAR_JOINS)))
        for perm in itertools.permutations(STAR_JOINS):
            explained = planner.explain(Query(tables=tables, joins=list(perm)))
            assert explained == baseline


class TestMeasuredSelectivity:
    def test_ints_keep_historical_convention(self):
        assert join_selectivity(4, 10) == pytest.approx(0.1)
        assert join_selectivity(0, 0) == 1.0

    def test_column_stats_use_measured_distinct(self):
        cat = star_catalog()
        col = cat.stats("dim_b").column("b_id")
        assert isinstance(col, ColumnStats)
        assert col.distinct == 60
        assert join_selectivity(col, 5) == pytest.approx(1.0 / 60)
        assert join_selectivity(3, col) == join_selectivity(col, col)

    def test_planner_trusts_histogram_backed_distincts(self):
        # A skewed column whose histogram-backed measurement (40 distinct)
        # exceeds the old damping cap would previously be clamped; the
        # planner now uses the measured count for join cardinality.
        cat = star_catalog()
        planner = Planner(cat, PlannerConfig(memory_pages=200))
        sub = planner._access_path(
            Query(tables=["dim_c"]), "dim_c"
        )
        assert sub.distinct_of("c_id") == 90


class TestStatsEpochFingerprints:
    def test_analyze_changes_join_fingerprint(self):
        cat = star_catalog()
        planner = Planner(cat, PlannerConfig(memory_pages=200))
        query = Query(
            tables=["fact", "dim_a"], joins=[STAR_JOINS[0]]
        )
        plan = planner.plan(query)
        ctx = planner.context()
        before = plan.fingerprint(ctx)
        assert plan.fingerprint(ctx) == before  # stable while stats hold
        cat.analyze("dim_a")
        after = plan.fingerprint(ctx)
        assert after != before
        # Scans of untouched tables keep their identity: only the join
        # node (whose ordering consumed the statistics) re-keys.
        assert before[:2] == after[:2] == ("join", plan.algorithm)

    def test_epoch_counts_analyze_runs(self):
        cat = star_catalog()
        assert cat.stats_epoch("fact") == 1
        cat.analyze("fact")
        assert cat.stats_epoch("fact") == 2
        assert cat.stats_epoch("dim_a") == 1
