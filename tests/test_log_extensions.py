"""Tests for the log-manager extensions: commit timer, truncation, and the
engine's pause operation."""

import pytest

from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.records import BeginRecord, UpdateRecord
from repro.recovery.state import DatabaseState
from repro.recovery.transactions import TransactionEngine, TransactionState
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimulatedClock())


class TestGroupCommitTimer:
    def test_lone_transaction_commits_within_bound(self, queue):
        lm = LogManager(queue, policy=CommitPolicy.GROUP, max_commit_delay=0.05)
        state = DatabaseState(10, records_per_page=8)
        engine = TransactionEngine(state, queue, lm)
        txn = engine.submit([("write", 0, 1)])
        assert txn.state is TransactionState.PRECOMMITTED
        queue.run_until(0.2)
        assert txn.state is TransactionState.COMMITTED
        # delay + one page write.
        assert txn.latency <= 0.05 + 0.011

    def test_without_timer_lone_transaction_strands(self, queue):
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        state = DatabaseState(10, records_per_page=8)
        engine = TransactionEngine(state, queue, lm)
        txn = engine.submit([("write", 0, 1)])
        queue.run_until(1.0)
        assert txn.state is TransactionState.PRECOMMITTED  # page never fills

    def test_timer_does_not_split_filling_pages(self, queue):
        """Under load, pages fill long before the timer fires: throughput
        stays at the batched rate."""
        lm = LogManager(queue, policy=CommitPolicy.GROUP, max_commit_delay=0.5)
        state = DatabaseState(1000, records_per_page=64)
        engine = TransactionEngine(state, queue, lm)
        t = 0.0
        for i in range(2000):
            engine.submit_at(t, [("write", i % 1000, 1)])
            t += 0.0005
        queue.run_until(1.0)
        # ~18 single-write txns (20+20+144=184B) per 4096B page.
        pages = lm.log.pages_written
        commits = engine.committed_count
        assert commits / max(1, pages) > 10

    def test_timer_noop_on_already_sealed_group(self, queue):
        lm = LogManager(queue, policy=CommitPolicy.GROUP, max_commit_delay=0.02)
        state = DatabaseState(10, records_per_page=8)
        engine = TransactionEngine(state, queue, lm)
        engine.submit([("write", 0, 1)])
        lm.flush()  # seals before the timer fires
        queue.run_until(0.5)
        assert engine.committed_count == 1
        assert lm.log.pages_written == 1  # the timer added no extra page


class TestTruncation:
    def _durable_log(self, queue):
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        for tid in range(10):
            lm.append(BeginRecord(tid=tid))
            for i in range(3):
                lm.append(UpdateRecord(tid=tid, record_id=i))
            lm.append_commit(tid)
        lm.flush()
        queue.run_to_completion()
        return lm

    def test_truncate_drops_prefix(self, queue):
        lm = self._durable_log(queue)
        total = len(lm.durable_log())
        dropped = lm.truncate_before(20)
        assert dropped > 0
        remaining = lm.durable_log()
        assert len(remaining) == total - dropped
        assert all(r.lsn >= 20 for r in remaining)

    def test_truncate_at_zero_is_noop(self, queue):
        lm = self._durable_log(queue)
        assert lm.truncate_before(0) == 0

    def test_truncate_counts_accumulate(self, queue):
        lm = self._durable_log(queue)
        a = lm.truncate_before(10)
        b = lm.truncate_before(25)
        assert lm.records_truncated == a + b


class TestPauseOperation:
    def test_pause_holds_locks_across_time(self, queue):
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        state = DatabaseState(10, records_per_page=8)
        engine = TransactionEngine(state, queue, lm)
        slow = engine.submit([("write", 0, 1), ("pause", 0.1), ("write", 1, 1)])
        assert slow.state is TransactionState.ACTIVE
        # A competitor arriving during the pause must wait.
        fast = engine.submit([("write", 0, 2)])
        assert fast.state is TransactionState.WAITING
        queue.run_until(0.2)
        assert slow.state is TransactionState.PRECOMMITTED
        assert fast.state is TransactionState.PRECOMMITTED
        assert state.read(0) == 2  # fast ran after slow released

    def test_paused_transaction_can_be_aborted(self, queue):
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        state = DatabaseState(10, records_per_page=8, initial_value=5)
        engine = TransactionEngine(state, queue, lm)
        txn = engine.submit([("write", 0, 99), ("pause", 1.0), ("write", 1, 1)])
        engine.abort(txn)
        assert state.read(0) == 5
        # The pending resume event fires harmlessly.
        queue.run_until(2.0)
        assert txn.state is TransactionState.ABORTED

    def test_pause_duration_shapes_latency(self, queue):
        lm = LogManager(queue, policy=CommitPolicy.GROUP,
                        max_commit_delay=0.001)
        state = DatabaseState(10, records_per_page=8)
        engine = TransactionEngine(state, queue, lm)
        txn = engine.submit([("write", 0, 1), ("pause", 0.3), ("write", 1, 1)])
        queue.run_until(1.0)
        assert txn.state is TransactionState.COMMITTED
        assert txn.latency >= 0.3
