"""Guard the public API surface: everything advertised imports and exists.

A downstream user programs against the ``__all__`` of each package; this
test walks them so a renamed symbol or a missing re-export fails loudly
instead of at the user's site.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.access",
    "repro.cost",
    "repro.join",
    "repro.operators",
    "repro.planner",
    "repro.recovery",
    "repro.sim",
    "repro.storage",
    "repro.workload",
    "repro.core",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_symbols_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), "%s has no __all__" % package
    for name in module.__all__:
        assert hasattr(module, name), "%s.%s missing" % (package, name)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_and_unique(package):
    module = importlib.import_module(package)
    names = list(module.__all__)
    assert len(names) == len(set(names)), "%s: duplicate exports" % package


def test_top_level_facade():
    import repro

    db = repro.MainMemoryDatabase()
    db.create_table("t", [("x", repro.DataType.INTEGER)])
    db.insert("t", (1,))
    assert db.sql("SELECT * FROM t").cardinality == 1
    assert repro.__version__


def test_every_public_symbol_has_a_docstring():
    missing = []
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) and not isinstance(obj, type(repr)):
                doc = getattr(obj, "__doc__", None)
                if not doc or not doc.strip():
                    missing.append("%s.%s" % (package, name))
    assert not missing, "undocumented public symbols: %s" % missing
