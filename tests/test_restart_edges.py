"""Edge-case tests for crash capture and restart recovery."""

import pytest

from repro.recovery.checkpoint import Checkpointer
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.restart import (
    CrashState,
    RecoveryError,
    crash,
    recover,
    replay_committed,
)
from repro.recovery.records import RecordSizing
from repro.recovery.state import DatabaseState, DiskSnapshot
from repro.recovery.transactions import TransactionEngine
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


def fresh_engine(n_records=40, initial=9):
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(n_records, records_per_page=8, initial_value=initial)
    lm = LogManager(queue, policy=CommitPolicy.GROUP)
    return queue, state, lm, TransactionEngine(state, queue, lm)


class TestEmptyAndTrivialCrashes:
    def test_crash_before_any_work(self):
        queue, state, lm, engine = fresh_engine()
        out = recover(crash(engine), initial_value=9)
        assert out.state.values == [9] * 40
        assert out.seconds >= 0
        assert out.log_records_scanned == 0

    def test_crash_with_only_reads(self):
        queue, state, lm, engine = fresh_engine()
        engine.submit([("read", 0), ("read", 1)])
        lm.flush()
        queue.run_to_completion()
        out = recover(crash(engine), initial_value=9)
        assert out.state.values == [9] * 40
        assert out.updates_redone == 0

    def test_double_crash_same_state(self):
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 3, 77)])
        lm.flush()
        queue.run_to_completion()
        a = recover(crash(engine), initial_value=9)
        b = recover(crash(engine), initial_value=9)
        assert a.state.values == b.state.values


class TestSnapshotInteraction:
    def test_recovery_with_snapshot_only_no_log(self):
        """Checkpoint everything, truncate the entire durable log: the
        snapshot alone restores the committed state."""
        queue, state, lm, engine = fresh_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=10.0)
        engine.submit([("write", 0, 1)])
        engine.submit([("write", 20, 2)])
        lm.flush()
        queue.run_to_completion()
        ck.checkpoint_now()
        queue.run_until(queue.clock.now + 10)
        cs = crash(engine, ck)
        bound = min(cs.dirty_first_lsn.values()) if cs.dirty_first_lsn else (
            lm.next_lsn()
        )
        lm.truncate_before(bound)
        cs2 = crash(engine, ck)
        out = recover(cs2, initial_value=9)
        assert out.state.read(0) == 1
        assert out.state.read(20) == 2

    def test_snapshot_newer_than_log_suffix(self):
        """Pages checkpointed after the last durable log record: recovery
        must not 'redo' anything below the snapshot LSNs."""
        queue, state, lm, engine = fresh_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=10.0)
        for v in (5, 6, 7):
            engine.submit([("write", 0, v)])
        lm.flush()
        queue.run_to_completion()
        ck.checkpoint_now()
        queue.run_until(queue.clock.now + 10)
        out = recover(crash(engine, ck), initial_value=9)
        assert out.state.read(0) == 7
        assert out.updates_redone == 0  # snapshot already covers them

    def test_without_checkpointer_snapshot_is_empty(self):
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 0, 1)])
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)  # no checkpointer passed
        assert cs.snapshot.page_count == 0
        out = recover(cs, initial_value=9)
        assert out.state.read(0) == 1


class TestRecoveryErrorOnCorruptState:
    """Regression: a log or snapshot referencing pages outside the disk
    image used to surface as a bare ``KeyError``/``IndexError`` from deep
    inside the redo pass; it must be a typed :class:`RecoveryError`."""

    def crashed_state(self):
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 3, 77)])
        lm.flush()
        queue.run_to_completion()
        return crash(engine)

    def test_log_record_beyond_disk_image(self):
        cs = self.crashed_state()
        update = next(r for r in cs.durable_log if hasattr(r, "record_id"))
        update.record_id = cs.n_records + 12  # page does not exist
        with pytest.raises(RecoveryError) as exc:
            recover(cs, initial_value=9)
        assert "references record" in str(exc.value)
        assert "lsn=%d" % update.lsn in str(exc.value)

    def test_negative_record_id_rejected(self):
        cs = self.crashed_state()
        update = next(r for r in cs.durable_log if hasattr(r, "record_id"))
        update.record_id = -1
        with pytest.raises(RecoveryError):
            recover(cs, initial_value=9)

    def test_rogue_snapshot_page(self):
        from repro.recovery.state import PageImage

        cs = self.crashed_state()
        pages = cs.n_records // cs.records_per_page
        cs.snapshot.install(
            PageImage(page_id=pages + 3, page_lsn=0, values=[0] * 8),
            timestamp=0.0,
        )
        with pytest.raises(RecoveryError) as exc:
            recover(cs, initial_value=9)
        assert "snapshot holds page" in str(exc.value)

    def test_recovery_error_is_a_runtime_error(self):
        # Callers that caught RuntimeError keep working.
        assert issubclass(RecoveryError, RuntimeError)
        assert not issubclass(RecoveryError, KeyError)

    def test_valid_state_still_recovers(self):
        cs = self.crashed_state()
        out = recover(cs, initial_value=9)
        assert out.state.read(3) == 77


class TestCrashStateIntrospection:
    def test_committed_and_aborted_sets(self):
        queue, state, lm, engine = fresh_engine()
        from repro.recovery.lock_table import LockMode

        ok = engine.submit([("write", 0, 1)])
        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        bad = engine.submit([("write", 1, 2), ("write", 5, 0)])
        engine.abort(bad)
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        assert ok.tid in cs.committed_tids
        assert bad.tid in cs.resolved_abort_tids
        assert bad.tid not in cs.committed_tids

    def test_crash_state_is_self_contained(self):
        """Recovery must work from the CrashState alone (a fresh process
        could deserialize it)."""
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 7, 70)])
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        rebuilt = CrashState(
            snapshot=cs.snapshot,
            durable_log=list(cs.durable_log),
            n_records=cs.n_records,
            records_per_page=cs.records_per_page,
            sizing=RecordSizing(),
            crashed_at=cs.crashed_at,
            dirty_first_lsn=dict(cs.dirty_first_lsn),
        )
        out = recover(rebuilt, initial_value=9)
        assert out.state.read(7) == 70
        assert out.state.values == replay_committed(cs, initial_value=9).values


class TestParallelRedo:
    """The batched partitioned-log path must be a drop-in replacement for
    the serial interpreter: identical image, page LSNs, committed set, and
    counters for any worker count -- only the modelled restart time
    shrinks.  Partitions replay pages independently, so these tests lean
    on workloads where the commit (topological) order matters within and
    across pages."""

    def assert_equivalent(self, serial, parallel):
        assert parallel.state.values == serial.state.values
        assert parallel.state.page_lsn == serial.state.page_lsn
        assert parallel.committed_tids == serial.committed_tids
        assert parallel.log_records_scanned == serial.log_records_scanned
        assert parallel.updates_redone == serial.updates_redone
        assert parallel.updates_undone == serial.updates_undone
        assert parallel.pages_reloaded == serial.pages_reloaded

    def rich_crash(self):
        """Overlapping winners across all five pages, a fuzzy checkpoint
        that absorbs two still-blocked writers (one later aborted, one
        still active at the crash), and a stranded unflushed tail."""
        import random

        from repro.recovery.lock_table import LockMode

        queue, state, lm, engine = fresh_engine(n_records=40, initial=9)
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=10.0)
        rng = random.Random(1984)
        for step in range(12):
            script = [
                ("write", rng.randrange(40), 100 + step) for _ in range(3)
            ]
            engine.submit(script)
        # Two victims block mid-script on a rogue lock holder; their first
        # writes are applied, logged, and then absorbed by the snapshot.
        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        blocked_active = engine.submit([("write", 8, 41), ("write", 5, 42)])
        blocked_abort = engine.submit([("write", 16, 51), ("write", 5, 52)])
        lm.flush()
        queue.run_to_completion()
        ck.checkpoint_now()
        queue.run_until(queue.clock.now + 10)
        engine.abort(blocked_abort)
        for step in range(6):
            script = [
                ("write", rng.randrange(40), 200 + step) for _ in range(2)
            ]
            engine.submit(script)
        lm.flush()
        queue.run_to_completion()
        # Stranded tail: appended after the last flush, never durable.
        engine.submit([("write", 24, 61)])
        return crash(engine, ck)

    def test_worker_counts_agree_with_serial(self):
        cs = self.rich_crash()
        serial = recover(cs, initial_value=9)
        # The workload must actually exercise both passes.
        assert serial.updates_redone > 0
        assert serial.updates_undone > 0
        for workers in (2, 4):
            parallel = recover(cs, initial_value=9, workers=workers)
            self.assert_equivalent(serial, parallel)
            assert parallel.workers == workers

    def test_full_scan_mode_agrees(self):
        cs = self.rich_crash()
        serial = recover(cs, initial_value=9, use_dirty_page_table=False)
        parallel = recover(
            cs, initial_value=9, use_dirty_page_table=False, workers=4
        )
        self.assert_equivalent(serial, parallel)

    def test_interleaved_same_page_order_preserved(self):
        """Winner updates to one record interleave with a loser's in the
        log: forward redo in LSN order must leave the *last* winner value,
        regardless of how pages land in partitions."""
        from repro.recovery.records import (
            BeginRecord,
            CommitRecord,
            UpdateRecord,
        )

        log = []

        def add(record):
            record.lsn = len(log)
            log.append(record)

        for tid in (1, 2, 3):
            add(BeginRecord(tid=tid))
        add(UpdateRecord(tid=1, record_id=0, old_value=9, new_value=10))
        add(UpdateRecord(tid=2, record_id=0, old_value=10, new_value=66))
        add(UpdateRecord(tid=3, record_id=0, old_value=66, new_value=30))
        add(UpdateRecord(tid=1, record_id=1, old_value=9, new_value=11))
        add(CommitRecord(tid=1))
        add(CommitRecord(tid=3))  # tid 2 never commits: loser
        cs = CrashState(
            snapshot=DiskSnapshot(),
            durable_log=log,
            n_records=8,
            records_per_page=8,
            sizing=RecordSizing(),
            crashed_at=1.0,
            dirty_first_lsn={0: 0},  # page 0 dirty since the first update
        )
        serial = recover(cs, initial_value=9)
        parallel = recover(cs, initial_value=9, workers=4)
        self.assert_equivalent(serial, parallel)
        assert parallel.state.read(0) == 30
        assert parallel.state.read(1) == 11

    def test_workers_exceed_touched_pages(self):
        """More workers than pages: partitions clamp, results agree."""
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 3, 77)])
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        serial = recover(cs, initial_value=9)
        parallel = recover(cs, initial_value=9, workers=8)
        self.assert_equivalent(serial, parallel)
        assert parallel.state.read(3) == 77
        assert parallel.workers == 8

    def test_corrupt_state_raises_same_error(self):
        """Validation runs before partitioning: the parallel path rejects
        a corrupt log with the identical typed error."""
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 3, 77)])
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        update = next(r for r in cs.durable_log if hasattr(r, "record_id"))
        update.record_id = cs.n_records + 12
        with pytest.raises(RecoveryError) as serial_exc:
            recover(cs, initial_value=9)
        with pytest.raises(RecoveryError) as parallel_exc:
            recover(cs, initial_value=9, workers=4)
        assert str(parallel_exc.value) == str(serial_exc.value)

    def test_clean_page_bulk_skip(self):
        """A page whose snapshot copy covers every logged update is
        dropped whole before partitioning, while a dirty page elsewhere
        keeps the redo start low enough to rescan it."""
        from repro.recovery.records import (
            BeginRecord,
            CommitRecord,
            UpdateRecord,
        )
        from repro.recovery.state import PageImage

        log = []

        def add(record):
            record.lsn = len(log)
            log.append(record)

        add(BeginRecord(tid=1))
        add(UpdateRecord(tid=1, record_id=8, old_value=9, new_value=50))
        add(UpdateRecord(tid=1, record_id=0, old_value=9, new_value=55))
        add(CommitRecord(tid=1))
        snap = DiskSnapshot()
        # Page 0 checkpointed after the lsn=2 update: clean.
        snap.install(
            PageImage(page_id=0, page_lsn=2, values=[55] + [9] * 7),
            timestamp=0.5,
        )
        cs = CrashState(
            snapshot=snap,
            durable_log=log,
            n_records=16,
            records_per_page=8,
            sizing=RecordSizing(),
            crashed_at=1.0,
            dirty_first_lsn={1: 1},  # page 1 still dirty from lsn 1 on
        )
        serial = recover(cs, initial_value=9)
        parallel = recover(cs, initial_value=9, workers=2)
        self.assert_equivalent(serial, parallel)
        assert parallel.state.read(0) == 55
        assert parallel.state.read(8) == 50
        assert serial.pages_skipped_clean == 0  # serial filters per record
        assert parallel.pages_skipped_clean == 1

    def test_simulated_time_shrinks_with_workers(self):
        """The modelled restart cost is the straggler stream's share:
        monotone non-increasing in the worker count, and exactly the
        sequential formula at one worker."""
        cs = self.rich_crash()
        serial = recover(cs, initial_value=9)
        w2 = recover(cs, initial_value=9, workers=2)
        w4 = recover(cs, initial_value=9, workers=4)
        assert serial.workers == 1
        assert w4.seconds <= w2.seconds <= serial.seconds
        assert w4.seconds < serial.seconds

    def test_phase_timings_reported(self):
        cs = self.rich_crash()
        serial = recover(cs, initial_value=9)
        parallel = recover(cs, initial_value=9, workers=4)
        for outcome in (serial, parallel):
            assert set(outcome.phase_seconds) == {
                "analysis",
                "commit_resolution",
                "undo",
                "redo",
            }
            assert all(t >= 0 for t in outcome.phase_seconds.values())
        # The batched path fuses undo into the partition replay.
        assert parallel.phase_seconds["undo"] == 0.0
