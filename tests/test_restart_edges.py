"""Edge-case tests for crash capture and restart recovery."""

import pytest

from repro.recovery.checkpoint import Checkpointer
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.restart import (
    CrashState,
    RecoveryError,
    crash,
    recover,
    replay_committed,
)
from repro.recovery.records import RecordSizing
from repro.recovery.state import DatabaseState, DiskSnapshot
from repro.recovery.transactions import TransactionEngine
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


def fresh_engine(n_records=40, initial=9):
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(n_records, records_per_page=8, initial_value=initial)
    lm = LogManager(queue, policy=CommitPolicy.GROUP)
    return queue, state, lm, TransactionEngine(state, queue, lm)


class TestEmptyAndTrivialCrashes:
    def test_crash_before_any_work(self):
        queue, state, lm, engine = fresh_engine()
        out = recover(crash(engine), initial_value=9)
        assert out.state.values == [9] * 40
        assert out.seconds >= 0
        assert out.log_records_scanned == 0

    def test_crash_with_only_reads(self):
        queue, state, lm, engine = fresh_engine()
        engine.submit([("read", 0), ("read", 1)])
        lm.flush()
        queue.run_to_completion()
        out = recover(crash(engine), initial_value=9)
        assert out.state.values == [9] * 40
        assert out.updates_redone == 0

    def test_double_crash_same_state(self):
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 3, 77)])
        lm.flush()
        queue.run_to_completion()
        a = recover(crash(engine), initial_value=9)
        b = recover(crash(engine), initial_value=9)
        assert a.state.values == b.state.values


class TestSnapshotInteraction:
    def test_recovery_with_snapshot_only_no_log(self):
        """Checkpoint everything, truncate the entire durable log: the
        snapshot alone restores the committed state."""
        queue, state, lm, engine = fresh_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=10.0)
        engine.submit([("write", 0, 1)])
        engine.submit([("write", 20, 2)])
        lm.flush()
        queue.run_to_completion()
        ck.checkpoint_now()
        queue.run_until(queue.clock.now + 10)
        cs = crash(engine, ck)
        bound = min(cs.dirty_first_lsn.values()) if cs.dirty_first_lsn else (
            lm.next_lsn()
        )
        lm.truncate_before(bound)
        cs2 = crash(engine, ck)
        out = recover(cs2, initial_value=9)
        assert out.state.read(0) == 1
        assert out.state.read(20) == 2

    def test_snapshot_newer_than_log_suffix(self):
        """Pages checkpointed after the last durable log record: recovery
        must not 'redo' anything below the snapshot LSNs."""
        queue, state, lm, engine = fresh_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=10.0)
        for v in (5, 6, 7):
            engine.submit([("write", 0, v)])
        lm.flush()
        queue.run_to_completion()
        ck.checkpoint_now()
        queue.run_until(queue.clock.now + 10)
        out = recover(crash(engine, ck), initial_value=9)
        assert out.state.read(0) == 7
        assert out.updates_redone == 0  # snapshot already covers them

    def test_without_checkpointer_snapshot_is_empty(self):
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 0, 1)])
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)  # no checkpointer passed
        assert cs.snapshot.page_count == 0
        out = recover(cs, initial_value=9)
        assert out.state.read(0) == 1


class TestRecoveryErrorOnCorruptState:
    """Regression: a log or snapshot referencing pages outside the disk
    image used to surface as a bare ``KeyError``/``IndexError`` from deep
    inside the redo pass; it must be a typed :class:`RecoveryError`."""

    def crashed_state(self):
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 3, 77)])
        lm.flush()
        queue.run_to_completion()
        return crash(engine)

    def test_log_record_beyond_disk_image(self):
        cs = self.crashed_state()
        update = next(r for r in cs.durable_log if hasattr(r, "record_id"))
        update.record_id = cs.n_records + 12  # page does not exist
        with pytest.raises(RecoveryError) as exc:
            recover(cs, initial_value=9)
        assert "references record" in str(exc.value)
        assert "lsn=%d" % update.lsn in str(exc.value)

    def test_negative_record_id_rejected(self):
        cs = self.crashed_state()
        update = next(r for r in cs.durable_log if hasattr(r, "record_id"))
        update.record_id = -1
        with pytest.raises(RecoveryError):
            recover(cs, initial_value=9)

    def test_rogue_snapshot_page(self):
        from repro.recovery.state import PageImage

        cs = self.crashed_state()
        pages = cs.n_records // cs.records_per_page
        cs.snapshot.install(
            PageImage(page_id=pages + 3, page_lsn=0, values=[0] * 8),
            timestamp=0.0,
        )
        with pytest.raises(RecoveryError) as exc:
            recover(cs, initial_value=9)
        assert "snapshot holds page" in str(exc.value)

    def test_recovery_error_is_a_runtime_error(self):
        # Callers that caught RuntimeError keep working.
        assert issubclass(RecoveryError, RuntimeError)
        assert not issubclass(RecoveryError, KeyError)

    def test_valid_state_still_recovers(self):
        cs = self.crashed_state()
        out = recover(cs, initial_value=9)
        assert out.state.read(3) == 77


class TestCrashStateIntrospection:
    def test_committed_and_aborted_sets(self):
        queue, state, lm, engine = fresh_engine()
        from repro.recovery.lock_table import LockMode

        ok = engine.submit([("write", 0, 1)])
        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        bad = engine.submit([("write", 1, 2), ("write", 5, 0)])
        engine.abort(bad)
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        assert ok.tid in cs.committed_tids
        assert bad.tid in cs.resolved_abort_tids
        assert bad.tid not in cs.committed_tids

    def test_crash_state_is_self_contained(self):
        """Recovery must work from the CrashState alone (a fresh process
        could deserialize it)."""
        queue, state, lm, engine = fresh_engine()
        engine.submit([("write", 7, 70)])
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        rebuilt = CrashState(
            snapshot=cs.snapshot,
            durable_log=list(cs.durable_log),
            n_records=cs.n_records,
            records_per_page=cs.records_per_page,
            sizing=RecordSizing(),
            crashed_at=cs.crashed_at,
            dirty_first_lsn=dict(cs.dirty_first_lsn),
        )
        out = recover(rebuilt, initial_value=9)
        assert out.state.read(7) == 70
        assert out.state.values == replay_committed(cs, initial_value=9).values
