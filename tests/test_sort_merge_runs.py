"""Focused tests for sort-merge's run formation (Knuth's claim).

Section 3.4 leans on a specific constant: replacement selection produces
runs "on the average twice as long as the number of tuples that can fit
into a priority queue in memory", i.e. ~2*|M|/F pages.  These tests verify
the executable implementation actually exhibits that behaviour, plus the
boundary cases the cost formula glosses over.
"""

import random

import pytest

from repro.cost.parameters import CostParameters
from repro.join import JoinSpec, SortMergeJoin
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema

from tests.conftest import build_relation


def spec_for(r, s, memory):
    params = CostParameters(
        r_pages=min(r.page_count, s.page_count),
        s_pages=max(r.page_count, s.page_count),
        r_tuples_per_page=8,
        s_tuples_per_page=8,
    )
    return JoinSpec(
        r=r, s=s, r_field="key", s_field="skey",
        memory_pages=memory, params=params,
    )


def form_runs(relation, memory, field="key"):
    """Run the private run-formation phase and return run page counts."""
    algo = SortMergeJoin()
    other_schema = make_schema(("skey", DataType.INTEGER), ("x", DataType.INTEGER))
    other = build_relation("s", range(memory * 64), schema=other_schema)
    spec = spec_for(relation, other, memory)
    # The spec may have swapped sides; find our relation back.
    target = spec.r if spec.r.name == relation.name else spec.s
    field = "key" if target.schema.has_field("key") else "skey"
    names = algo._form_runs(spec, target, field, "probe")
    sizes = [algo.disk.page_count(n) for n in names]
    for n in names:
        algo.disk.delete(n)
    return sizes


class TestRunFormation:
    def test_random_input_runs_average_2m(self):
        rng = random.Random(8)
        rel = build_relation("r", [rng.randrange(10**9) for _ in range(4000)])
        memory = 10  # {M} = 10 pages / F * 8 t/p = 66 tuples
        sizes = form_runs(rel, memory)
        mean_pages = sum(sizes) / len(sizes)
        expected = 2 * memory / 1.2  # 2*|M|/F pages
        assert mean_pages == pytest.approx(expected, rel=0.35)

    def test_sorted_input_yields_single_run(self):
        """Replacement selection's best case: already-sorted input becomes
        one run regardless of memory."""
        rel = build_relation("r", range(2000))
        sizes = form_runs(rel, 8)
        assert len(sizes) == 1

    def test_reverse_sorted_input_yields_m_sized_runs(self):
        """Worst case: descending input defeats replacement selection and
        runs collapse to the queue size |M|/F."""
        rel = build_relation("r", range(2000, 0, -1))
        memory = 8
        sizes = form_runs(rel, memory)
        mean_pages = sum(sizes) / len(sizes)
        assert mean_pages == pytest.approx(memory / 1.2, rel=0.3)

    def test_runs_are_sorted_and_complete(self):
        rng = random.Random(9)
        keys = [rng.randrange(500) for _ in range(1000)]
        rel = build_relation("r", keys)
        algo = SortMergeJoin()
        other_schema = make_schema(("skey", DataType.INTEGER), ("x", DataType.INTEGER))
        other = build_relation("s", range(2000), schema=other_schema)
        spec = spec_for(rel, other, 8)
        target = spec.r if spec.r.name == "r" else spec.s
        names = algo._form_runs(spec, target, "key", "t")
        recovered = []
        for name in names:
            run = []
            for page in algo.disk.scan(name):
                run.extend(k for k, _row in page)
            assert run == sorted(run), "run %s not sorted" % name
            recovered.extend(run)
        assert sorted(recovered) == sorted(keys)


class TestMergeBoundaries:
    def test_too_many_runs_rejected(self):
        rng = random.Random(10)
        r = build_relation("r", [rng.randrange(10**9) for _ in range(3000)])
        s_schema = make_schema(("skey", DataType.INTEGER), ("x", DataType.INTEGER))
        s = build_relation("s", [rng.randrange(10**9) for _ in range(3000)],
                           schema=s_schema)
        with pytest.raises(ValueError):
            SortMergeJoin().join(spec_for(r, s, 4))

    def test_in_memory_short_circuit_no_io(self):
        rng = random.Random(11)
        r = build_relation("r", [rng.randrange(50) for _ in range(200)])
        s_schema = make_schema(("skey", DataType.INTEGER), ("x", DataType.INTEGER))
        s = build_relation("s", [rng.randrange(50) for _ in range(200)],
                           schema=s_schema)
        algo = SortMergeJoin()
        result = algo.join(spec_for(r, s, 500))
        assert result.counters.sequential_ios == 0
        assert result.counters.random_ios == 0
        assert result.cardinality > 0
