"""Tests for hash and sort aggregation (Section 3.9)."""

import random
from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.counters import OperationCounters
from repro.operators.aggregate import (
    AggregateFunction,
    AggregateSpec,
    hash_aggregate,
    sort_aggregate,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema


@pytest.fixture
def sales():
    schema = make_schema(
        ("dept", DataType.INTEGER), ("amount", DataType.INTEGER)
    )
    rel = Relation("sales", schema, 64)
    rng = random.Random(10)
    for _ in range(400):
        rel.insert_unchecked((rng.randrange(8), rng.randrange(100)))
    return rel


def reference(rel):
    groups = defaultdict(list)
    for dept, amount in rel:
        groups[dept].append(amount)
    return groups


ALL_AGGS = [
    AggregateSpec(AggregateFunction.COUNT, alias="n"),
    AggregateSpec(AggregateFunction.SUM, "amount", "total"),
    AggregateSpec(AggregateFunction.MIN, "amount", "lo"),
    AggregateSpec(AggregateFunction.MAX, "amount", "hi"),
    AggregateSpec(AggregateFunction.AVG, "amount", "mean"),
]


class TestHashAggregate:
    def test_all_functions(self, sales):
        out = hash_aggregate(sales, ["dept"], ALL_AGGS)
        ref = reference(sales)
        assert out.cardinality == len(ref)
        for dept, n, total, lo, hi, mean in out:
            values = ref[dept]
            assert n == len(values)
            assert total == pytest.approx(sum(values))
            assert lo == min(values)
            assert hi == max(values)
            assert mean == pytest.approx(sum(values) / len(values))

    def test_output_schema(self, sales):
        out = hash_aggregate(sales, ["dept"], ALL_AGGS)
        assert out.schema.names == ["dept", "n", "total", "lo", "hi", "mean"]

    def test_count_without_column(self, sales):
        out = hash_aggregate(
            sales, ["dept"], [AggregateSpec(AggregateFunction.COUNT)]
        )
        assert sum(row[1] for row in out) == 400

    def test_sum_requires_column(self):
        with pytest.raises(ValueError):
            AggregateSpec(AggregateFunction.SUM)

    def test_empty_input(self):
        rel = Relation(
            "e", make_schema(("g", DataType.INTEGER), ("v", DataType.INTEGER)), 64
        )
        out = hash_aggregate(rel, ["g"], [AggregateSpec(AggregateFunction.COUNT)])
        assert out.cardinality == 0

    def test_charges_hash_per_tuple(self, sales):
        counters = OperationCounters()
        hash_aggregate(sales, ["dept"], ALL_AGGS, counters)
        assert counters.hashes == 400

    def test_multi_column_grouping(self, sales):
        out = hash_aggregate(
            sales,
            ["dept", "amount"],
            [AggregateSpec(AggregateFunction.COUNT, alias="n")],
        )
        ref = Counter((d, a) for d, a in sales)
        assert out.cardinality == len(ref)
        for dept, amount, n in out:
            assert n == ref[(dept, amount)]


class TestOverflowSpill:
    def test_spills_and_still_correct(self):
        """More groups than the memory grant admits -> hybrid overflow."""
        schema = make_schema(("g", DataType.INTEGER), ("v", DataType.INTEGER))
        rel = Relation("big", schema, 64)  # 8 tuples/page
        rng = random.Random(3)
        for _ in range(2000):
            rel.insert_unchecked((rng.randrange(600), 1))
        counters = OperationCounters()
        disk = SimulatedDisk(counters)
        out = hash_aggregate(
            rel,
            ["g"],
            [AggregateSpec(AggregateFunction.COUNT, alias="n")],
            counters,
            memory_pages=10,  # ~66 groups fit
            disk=disk,
        )
        ref = Counter(g for g, _ in rel)
        assert out.cardinality == len(ref)
        assert {row[0]: row[1] for row in out} == dict(ref)
        # Overflow really went through the disk.
        assert counters.sequential_ios + counters.random_ios > 0
        # Scratch cleaned up.
        assert disk.files() == []

    def test_one_pass_when_memory_sufficient(self):
        schema = make_schema(("g", DataType.INTEGER), ("v", DataType.INTEGER))
        rel = Relation("small", schema, 64)
        for i in range(100):
            rel.insert_unchecked((i % 5, 1))
        counters = OperationCounters()
        hash_aggregate(
            rel,
            ["g"],
            [AggregateSpec(AggregateFunction.COUNT, alias="n")],
            counters,
            memory_pages=50,
        )
        assert counters.sequential_ios + counters.random_ios == 0


class TestSortAggregate:
    def test_agrees_with_hash(self, sales):
        hashed = hash_aggregate(sales, ["dept"], ALL_AGGS)
        sorted_ = sort_aggregate(sales, ["dept"], ALL_AGGS)
        assert sorted(hashed) == sorted(sorted_)

    def test_output_in_group_order(self, sales):
        out = sort_aggregate(
            sales, ["dept"], [AggregateSpec(AggregateFunction.COUNT, alias="n")]
        )
        depts = [row[0] for row in out]
        assert depts == sorted(depts)

    def test_charges_sort_work(self, sales):
        counters = OperationCounters()
        sort_aggregate(sales, ["dept"], ALL_AGGS, counters)
        assert counters.swaps > 0
        # Hash aggregation does the same job with no swaps at all -- the
        # Section 3.9 argument.
        hash_counters = OperationCounters()
        hash_aggregate(sales, ["dept"], ALL_AGGS, hash_counters)
        assert hash_counters.swaps == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), min_size=1))
def test_property_hash_and_sort_agree(rows):
    schema = make_schema(("g", DataType.INTEGER), ("v", DataType.INTEGER))
    rel = Relation("p", schema, 64)
    for row in rows:
        rel.insert_unchecked(row)
    aggs = [
        AggregateSpec(AggregateFunction.COUNT, alias="n"),
        AggregateSpec(AggregateFunction.SUM, "v", "s"),
    ]
    a = sorted(hash_aggregate(rel, ["g"], aggs))
    b = sorted(sort_aggregate(rel, ["g"], aggs))
    assert a == b
