"""Tests for paged heap relations."""

import pytest

from repro.cost.counters import OperationCounters
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema, make_schema


@pytest.fixture
def schema():
    return make_schema(("key", DataType.INTEGER), ("val", DataType.INTEGER))


@pytest.fixture
def rel(schema):
    return Relation("t", schema, page_bytes=64)  # 8 tuples/page


class TestGeometry:
    def test_tuples_per_page(self, rel):
        assert rel.tuples_per_page == 8

    def test_page_count_grows(self, rel):
        assert rel.page_count == 0
        for i in range(9):
            rel.insert((i, i))
        assert rel.page_count == 2
        assert rel.cardinality == 9
        assert len(rel) == 9

    def test_table2_density(self):
        """A 100-byte tuple on 4 KB pages gives the paper's 40/page."""
        schema = Schema([Field("payload", DataType.STRING, width=100)])
        rel = Relation("w", schema, page_bytes=4096)
        assert rel.tuples_per_page == 40


class TestInsertFetch:
    def test_insert_returns_tid(self, rel):
        tid = rel.insert((1, 10))
        assert tid == (0, 0)
        assert rel.fetch(tid) == (1, 10)

    def test_insert_validates(self, rel):
        with pytest.raises(TypeError):
            rel.insert(("x", 1))
        with pytest.raises(ValueError):
            rel.insert((1,))

    def test_tids_across_pages(self, rel):
        tids = [rel.insert((i, i)) for i in range(10)]
        assert tids[8] == (1, 0)
        assert rel.fetch((1, 1)) == (9, 9)

    def test_update(self, rel):
        tid = rel.insert((1, 10))
        old = rel.update(tid, (1, 99))
        assert old == (1, 10)
        assert rel.fetch(tid) == (1, 99)

    def test_extend(self, rel):
        assert rel.extend([(i, i) for i in range(5)]) == 5
        assert rel.cardinality == 5

    def test_truncate(self, rel):
        rel.insert((1, 1))
        rel.truncate()
        assert rel.cardinality == 0
        assert rel.page_count == 0


class TestScan:
    def test_iteration_order_is_physical(self, rel):
        rows = [(i, i * 2) for i in range(20)]
        rel.extend(rows)
        assert list(rel) == rows

    def test_scan_yields_tids(self, rel):
        rel.extend([(i, i) for i in range(10)])
        pairs = list(rel.scan())
        assert pairs[0] == ((0, 0), (0, 0))
        assert pairs[9] == ((1, 1), (9, 9))

    def test_key_of(self, rel):
        rel.insert((5, 50))
        key = rel.key_of("val")
        assert key(next(iter(rel))) == 50

    def test_value_accessor(self, rel):
        rel.insert((5, 50))
        row = next(iter(rel))
        assert rel.value(row, "key") == 5


class TestSpill:
    def test_spill_and_load_roundtrip(self, rel, schema):
        rel.extend([(i, i) for i in range(30)])
        disk = SimulatedDisk(OperationCounters())
        name = rel.spill(disk)
        loaded = Relation.load(disk, name, "t2", schema, page_bytes=64)
        assert list(loaded) == list(rel)
        assert loaded.page_count == rel.page_count

    def test_spill_charges_sequential_io(self, rel):
        rel.extend([(i, i) for i in range(30)])
        counters = OperationCounters()
        disk = SimulatedDisk(counters)
        rel.spill(disk)
        assert counters.sequential_ios + counters.random_ios == rel.page_count
        assert counters.random_ios <= 1

    def test_spill_overwrites_previous(self, rel):
        disk = SimulatedDisk(OperationCounters())
        rel.insert((1, 1))
        name = rel.spill(disk)
        rel.insert((2, 2))
        rel.spill(disk)
        assert disk.page_count(name) == 1  # fresh spill, not appended


def test_empty_name_rejected(schema):
    with pytest.raises(ValueError):
        Relation("", schema)
