"""Tests for cross product, division, and set operators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.counters import OperationCounters
from repro.operators.relational import (
    cross_product,
    difference,
    divide,
    intersect,
    union_,
)
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema


def rel(name, rows, fields=("a", "b")):
    schema = make_schema(*((f, DataType.INTEGER) for f in fields))
    r = Relation(name, schema, 64)
    for row in rows:
        r.insert_unchecked(tuple(row))
    return r


class TestCrossProduct:
    def test_cardinality_is_product(self):
        r = rel("r", [(1, 1), (2, 2)])
        s = rel("s", [(10, 0), (20, 0), (30, 0)], fields=("c", "d"))
        out = cross_product(r, s)
        assert out.cardinality == 6
        assert out.schema.names == ["a", "b", "c", "d"]

    def test_empty_side(self):
        r = rel("r", [(1, 1)])
        s = rel("s", [], fields=("c", "d"))
        assert cross_product(r, s).cardinality == 0

    def test_name_clash_prefixed(self):
        r = rel("r", [(1, 1)])
        s = rel("s", [(2, 2)])
        out = cross_product(r, s)
        assert out.schema.names == ["r_a", "r_b", "s_a", "s_b"]

    def test_charges_move_per_output(self):
        counters = OperationCounters()
        r = rel("r", [(1, 1), (2, 2)])
        s = rel("s", [(3, 3)], fields=("c", "d"))
        cross_product(r, s, counters)
        assert counters.moves == 2


class TestDivision:
    @pytest.fixture
    def supplies(self):
        # (supplier, part)
        return rel(
            "supplies",
            [
                (1, 10), (1, 20), (1, 30),   # supplier 1: all parts
                (2, 10), (2, 30),            # supplier 2: missing 20
                (3, 10), (3, 20), (3, 30), (3, 40),  # 3: all + extra
                (4, 99),                     # 4: irrelevant part only
            ],
            fields=("supplier", "part"),
        )

    @pytest.fixture
    def parts(self):
        return rel("parts", [(10,), (20,), (30,)], fields=("part_id",))

    def test_suppliers_of_every_part(self, supplies, parts):
        out = divide(supplies, parts, ["supplier"], ["part"], ["part_id"])
        assert sorted(out) == [(1,), (3,)]
        assert out.schema.names == ["supplier"]

    def test_empty_divisor_returns_all_groups(self, supplies):
        empty = rel("none", [], fields=("part_id",))
        out = divide(supplies, empty, ["supplier"], ["part"], ["part_id"])
        assert sorted(out) == [(1,), (2,), (3,), (4,)]

    def test_duplicates_in_dividend_do_not_overcount(self):
        dup = rel(
            "dup",
            [(1, 10), (1, 10), (1, 10)],  # same pair thrice
            fields=("supplier", "part"),
        )
        parts = rel("parts", [(10,), (20,)], fields=("part_id",))
        out = divide(dup, parts, ["supplier"], ["part"], ["part_id"])
        assert out.cardinality == 0  # 20 never supplied

    def test_attribute_arity_checked(self, supplies, parts):
        with pytest.raises(ValueError):
            divide(supplies, parts, ["supplier"], ["part", "supplier"],
                   ["part_id"])
        with pytest.raises(ValueError):
            divide(supplies, parts, [], ["part"], ["part_id"])

    def test_division_identity(self):
        """(R x S) / S == R for distinct R, the algebraic sanity check."""
        r = rel("r", [(1,), (2,), (3,)], fields=("x",))
        s = rel("s", [(7,), (8,)], fields=("y",))
        product = cross_product(r, s)
        out = divide(product, s, ["x"], ["y"], ["y"])
        assert sorted(out) == [(1,), (2,), (3,)]


class TestSetOperators:
    def test_union_distinct(self):
        a = rel("a", [(1, 1), (2, 2)])
        b = rel("b", [(2, 2), (3, 3)])
        assert sorted(union_(a, b)) == [(1, 1), (2, 2), (3, 3)]

    def test_union_all(self):
        a = rel("a", [(1, 1)])
        b = rel("b", [(1, 1)])
        assert union_(a, b, distinct=False).cardinality == 2

    def test_intersect(self):
        a = rel("a", [(1, 1), (2, 2), (2, 2)])
        b = rel("b", [(2, 2), (3, 3)])
        assert sorted(intersect(a, b)) == [(2, 2)]

    def test_difference(self):
        a = rel("a", [(1, 1), (2, 2), (2, 2)])
        b = rel("b", [(2, 2)])
        assert sorted(difference(a, b)) == [(1, 1)]
        assert sorted(difference(b, a)) == []

    def test_incompatible_schemas_rejected(self):
        a = rel("a", [(1, 1)])
        schema = make_schema(("x", DataType.STRING), ("y", DataType.INTEGER))
        b = Relation("b", schema, 64)
        for op in (union_, intersect, difference):
            with pytest.raises(ValueError):
                op(a, b)

    def test_arity_mismatch_rejected(self):
        a = rel("a", [(1, 1)])
        b = rel("b", [(1,)], fields=("x",))
        with pytest.raises(ValueError):
            union_(a, b)


@settings(max_examples=40, deadline=None)
@given(
    a_rows=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30),
    b_rows=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30),
)
def test_property_set_operators_match_python_sets(a_rows, b_rows):
    a = rel("a", a_rows)
    b = rel("b", b_rows)
    sa, sb = set(a_rows), set(b_rows)
    assert set(union_(a, b)) == sa | sb
    assert set(intersect(a, b)) == sa & sb
    assert set(difference(a, b)) == sa - sb
    # Each set-semantics output is duplicate free.
    for out in (union_(a, b), intersect(a, b), difference(a, b)):
        rows = list(out)
        assert len(rows) == len(set(rows))


@settings(max_examples=30, deadline=None)
@given(
    pairs=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 4)), max_size=40),
    members=st.lists(st.integers(0, 4), max_size=5),
)
def test_property_division_matches_definition(pairs, members):
    dividend = rel("d", pairs, fields=("x", "y"))
    divisor = rel("m", [(m,) for m in set(members)], fields=("y",))
    out = divide(dividend, divisor, ["x"], ["y"], ["y"])
    required = set(members)
    by_x = {}
    for x, y in pairs:
        by_x.setdefault(x, set()).add(y)
    if required:
        expected = {x for x, ys in by_x.items() if required <= ys}
    else:
        expected = set(by_x)
    assert {row[0] for row in out} == expected
