"""Tests for the SQL front end."""

import pytest

from repro import DataType, MainMemoryDatabase
from repro.planner.sql import SqlError, parse_sql


@pytest.fixture
def db():
    db = MainMemoryDatabase()
    db.create_table(
        "emp",
        [
            ("emp_id", DataType.INTEGER),
            ("name", DataType.STRING),
            ("salary", DataType.INTEGER),
            ("dept", DataType.INTEGER),
        ],
    )
    rows = [
        (1, "Jones", 52_000, 1),
        (2, "Smith", 61_000, 1),
        (3, "Johnson", 48_000, 2),
        (4, "Jackson", 75_000, 2),
        (5, "Miller", 55_000, 3),
        (6, "Joyce", 44_000, 3),
    ]
    for row in rows:
        db.insert("emp", row)
    db.create_table(
        "dept", [("dept_id", DataType.INTEGER), ("dname", DataType.STRING)]
    )
    for row in [(1, "toys"), (2, "tools"), (3, "books")]:
        db.insert("dept", row)
    db.analyze()
    return db


class TestBasicSelect:
    def test_select_star(self, db):
        out = db.sql("SELECT * FROM emp")
        assert out.cardinality == 6
        assert out.schema.names == ["emp_id", "name", "salary", "dept"]

    def test_projection(self, db):
        out = db.sql("SELECT name, salary FROM emp")
        assert out.schema.names == ["name", "salary"]
        assert out.cardinality == 6

    def test_distinct(self, db):
        out = db.sql("SELECT DISTINCT dept FROM emp")
        assert sorted(out) == [(1,), (2,), (3,)]

    def test_where_comparison(self, db):
        out = db.sql("SELECT name FROM emp WHERE salary > 54000")
        assert {r[0] for r in out} == {"Smith", "Jackson", "Miller"}

    def test_where_string_equality(self, db):
        out = db.sql("SELECT emp_id FROM emp WHERE name = 'Jones'")
        assert list(out) == [(1,)]

    def test_where_like_prefix(self, db):
        out = db.sql("SELECT name FROM emp WHERE name LIKE 'J%'")
        assert {r[0] for r in out} == {"Jones", "Johnson", "Jackson", "Joyce"}

    def test_where_conjunction(self, db):
        out = db.sql(
            "SELECT name FROM emp WHERE salary >= 48000 AND dept = 2"
        )
        assert {r[0] for r in out} == {"Johnson", "Jackson"}

    def test_parenthesised_or(self, db):
        out = db.sql(
            "SELECT name FROM emp WHERE (dept = 1 OR dept = 3) "
            "AND salary < 56000"
        )
        assert {r[0] for r in out} == {"Jones", "Miller", "Joyce"}

    def test_not_predicate(self, db):
        out = db.sql("SELECT name FROM emp WHERE NOT dept = 2")
        assert out.cardinality == 4

    def test_not_equal_operators(self, db):
        a = db.sql("SELECT name FROM emp WHERE dept != 2")
        b = db.sql("SELECT name FROM emp WHERE dept <> 2")
        assert sorted(a) == sorted(b)

    def test_string_escaping(self, db):
        db.insert("emp", (7, "O''Hara".replace("''", "'"), 40_000, 1))
        out = db.sql("SELECT emp_id FROM emp WHERE name = 'O''Hara'")
        assert list(out) == [(7,)]


class TestJoins:
    def test_join_on(self, db):
        out = db.sql(
            "SELECT name, dname FROM emp "
            "JOIN dept ON emp.dept = dept.dept_id"
        )
        assert out.cardinality == 6
        assert out.schema.names == ["name", "dname"]

    def test_implicit_join_in_where(self, db):
        explicit = db.sql(
            "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.dept_id"
        )
        implicit = db.sql(
            "SELECT name, dname FROM emp, dept WHERE dept = dept_id"
        )
        assert sorted(explicit) == sorted(implicit)

    def test_join_with_filter(self, db):
        out = db.sql(
            "SELECT name, dname FROM emp "
            "JOIN dept ON emp.dept = dept.dept_id "
            "WHERE salary > 54000 AND dname = 'toys'"
        )
        assert list(out) == [("Smith", "toys")]

    def test_qualified_columns(self, db):
        out = db.sql(
            "SELECT emp.name FROM emp JOIN dept ON emp.dept = dept.dept_id "
            "WHERE dept.dname = 'books'"
        )
        assert {r[0] for r in out} == {"Miller", "Joyce"}


class TestAggregates:
    def test_group_by(self, db):
        out = db.sql(
            "SELECT dept, COUNT(*) AS n, AVG(salary) AS mean "
            "FROM emp GROUP BY dept"
        )
        got = {row[0]: (row[1], row[2]) for row in out}
        assert got[1] == (2, pytest.approx(56_500))
        assert got[3] == (2, pytest.approx(49_500))

    def test_aggregate_without_group_by(self, db):
        out = db.sql("SELECT dept, MAX(salary) FROM emp GROUP BY dept")
        got = dict(out)
        assert got[2] == 75_000

    def test_count_star_and_column(self, db):
        out = db.sql("SELECT dept, COUNT(salary) FROM emp GROUP BY dept")
        assert sum(row[1] for row in out) == 6

    def test_join_then_aggregate(self, db):
        out = db.sql(
            "SELECT dname, SUM(salary) AS payroll FROM emp "
            "JOIN dept ON emp.dept = dept.dept_id GROUP BY dname"
        )
        got = dict(out)
        assert got["toys"] == pytest.approx(113_000)

    def test_explain_sql(self, db):
        text = db.sql_explain(
            "SELECT dname, COUNT(*) FROM emp "
            "JOIN dept ON emp.dept = dept.dept_id GROUP BY dname"
        )
        assert "Aggregate" in text and "Join" in text


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",                                   # truncated
            "SELECT * FROM nope",                       # unknown table
            "SELECT wat FROM emp",                      # unknown column
            "SELECT * FROM emp WHERE name LIKE '%J'",   # non-prefix LIKE
            "SELECT * FROM emp WHERE name LIKE 'a%b%'", # multiple %
            "SELECT name, SUM(salary) FROM emp GROUP BY dept",  # col not grouped
            "SELECT name FROM emp GROUP BY name",       # group w/o aggregates
            "SELECT * FROM emp, emp",                   # duplicate table
            "SELECT * FROM emp WHERE salary >",         # missing literal
            "SELECT *, COUNT(*) FROM emp",              # star + aggregate
            "SELECT * FROM emp JOIN dept ON dept = salary",  # join within... resolves
        ],
    )
    def test_rejected(self, db, bad):
        with pytest.raises(SqlError):
            db.sql(bad)

    def test_ambiguous_column(self, db):
        db.create_table("emp2", [("name", DataType.STRING)])
        with pytest.raises(SqlError):
            parse_sql("SELECT name FROM emp, emp2", db.catalog)

    def test_sum_star_rejected(self, db):
        with pytest.raises(SqlError):
            db.sql("SELECT dept, SUM(*) FROM emp GROUP BY dept")
