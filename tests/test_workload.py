"""Tests for the workload generators."""

import pytest

from repro.workload.banking import BankingWorkload
from repro.workload.distributions import (
    name_keys,
    sequential_keys,
    shuffled_keys,
    uniform_keys,
    zipf_keys,
)
from repro.workload.generator import (
    employees_relation,
    join_inputs,
    wisconsin_relation,
)


class TestDistributions:
    def test_uniform_seeded(self):
        assert uniform_keys(10, 100, seed=1) == uniform_keys(10, 100, seed=1)
        assert uniform_keys(10, 100, seed=1) != uniform_keys(10, 100, seed=2)

    def test_uniform_in_domain(self):
        assert all(0 <= k < 50 for k in uniform_keys(500, 50))

    def test_uniform_validates(self):
        with pytest.raises(ValueError):
            uniform_keys(5, 0)

    def test_sequential(self):
        assert sequential_keys(3, start=5) == [5, 6, 7]

    def test_shuffled_is_permutation(self):
        keys = shuffled_keys(100, seed=3)
        assert sorted(keys) == list(range(100))
        assert keys != list(range(100))

    def test_zipf_skew(self):
        keys = zipf_keys(5000, 100, theta=0.99, seed=2)
        from collections import Counter

        counts = Counter(keys)
        top = counts.most_common(1)[0][1]
        # Rank-1 key dominates a uniform share by a wide margin.
        assert top > 3 * (5000 / 100)
        assert all(0 <= k < 100 for k in keys)

    def test_zipf_theta_zero_is_uniformish(self):
        keys = zipf_keys(5000, 10, theta=0.0, seed=2)
        from collections import Counter

        counts = Counter(keys)
        assert max(counts.values()) < 2 * min(counts.values())

    def test_zipf_validates(self):
        with pytest.raises(ValueError):
            zipf_keys(10, 10, theta=5.0)

    def test_name_keys_have_j_prefixes(self):
        names = name_keys(500, seed=1)
        assert len(names) == 500
        assert any(n.startswith("J") for n in names)


class TestGenerators:
    def test_wisconsin_shape(self):
        rel = wisconsin_relation("w", 1000)
        assert rel.cardinality == 1000
        u1 = [row[0] for row in rel]
        assert sorted(u1) == list(range(1000))
        assert all(row[2] == row[0] % 10 for row in rel)

    def test_join_inputs_match_rate(self):
        r, s = join_inputs(r_tuples=500, s_tuples=1500, key_domain=500)
        r_keys = {row[0] for row in r}
        matches = sum(1 for row in s if row[0] in r_keys)
        # R draws 500 keys from a 500-key domain with repeats, covering
        # ~(1 - 1/e) ~ 63% of it; S should hit at about that rate.
        assert 700 < matches < 1200

    def test_join_inputs_schemas_distinct(self):
        r, s = join_inputs(100, 100)
        assert r.schema.names == ["rkey", "rpayload"]
        assert s.schema.names == ["skey", "spayload"]

    def test_employees_queryable(self):
        rel = employees_relation(200)
        assert rel.cardinality == 200
        assert rel.schema.names == ["emp_id", "name", "salary", "dept"]
        jays = [row for row in rel if row[1].startswith("J")]
        assert jays  # the paper's "J*" query has results

    def test_employees_density_is_realistic(self):
        rel = employees_relation(200)
        # 4+24+4+4 = 36 bytes -> 113 tuples per 4 KB page.
        assert rel.tuples_per_page == 4096 // 36


class TestBanking:
    def test_validation(self):
        with pytest.raises(ValueError):
            BankingWorkload(1)
        with pytest.raises(ValueError):
            BankingWorkload(10, transfer_fraction=0.9, deposit_fraction=0.9)

    def test_scripts_access_in_sorted_order(self):
        bank = BankingWorkload(100, seed=1)
        for script, _ in bank.scripts(200):
            ids = [op[1] for op in script]
            assert ids == sorted(ids)  # deadlock-free canonical order

    def test_transfer_conserves_money(self):
        bank = BankingWorkload(10, transfer_fraction=1.0, deposit_fraction=0.0)
        script, injected = bank.next_script()
        assert injected == 0
        deltas = [op[2].delta for op in script if op[0] == "write"]
        assert sum(deltas) == 0

    def test_deposit_reports_amount(self):
        bank = BankingWorkload(10, transfer_fraction=0.0, deposit_fraction=1.0)
        script, injected = bank.next_script()
        assert injected > 0
        deltas = [op[2].delta for op in script if op[0] == "write"]
        assert sum(deltas) == injected

    def test_inquiry_is_read_only(self):
        bank = BankingWorkload(
            10, transfer_fraction=0.0, deposit_fraction=0.0
        )
        script, injected = bank.next_script()
        assert injected == 0
        assert all(op[0] == "read" for op in script)

    def test_mix_is_seeded(self):
        a = [s for s, _ in BankingWorkload(50, seed=9).scripts(50)]
        b = [s for s, _ in BankingWorkload(50, seed=9).scripts(50)]
        assert [[op[:2] for op in s] for s in a] == [
            [op[:2] for op in s] for s in b
        ]
