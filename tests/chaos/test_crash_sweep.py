"""Property-based crash sweeps: recovery is correct at *every* point.

Exhaustive mode crashes a 20-transaction banking workload at every
schedulable point (event boundaries, log dispatches, stable appends,
checkpoint dispatches) and checks the full recovery contract after each:
durability of acknowledged commits, atomicity of losers, redo bounded by
the stable dirty-page table, idempotent double recovery, and the
dict-backed differential oracle.

Seeded mode draws whole fault schedules (crash point + slow writes + torn
log pages + dropped checkpoint installs) from integer seeds; a failure
prints the seed, replayable with ``pytest tests/chaos --chaos-seed N``.
No hypothesis dependency: the seeds *are* the shrunk examples.
"""

import pytest

from repro.chaos import (
    FaultInjector,
    ScenarioConfig,
    check_run,
    exhaustive_sweep,
    profile_points,
    run_scenario,
    seeded_sweep,
)
from repro.recovery.log_manager import CommitPolicy

#: The stack shapes the sweep covers: every commit discipline, plus the
#: partitioned log where group ordering is the subtle part.
STACKS = [
    pytest.param(CommitPolicy.CONVENTIONAL, 1, id="conventional"),
    pytest.param(CommitPolicy.GROUP, 1, id="group"),
    pytest.param(CommitPolicy.GROUP, 3, id="group-3dev"),
    pytest.param(CommitPolicy.STABLE, 1, id="stable"),
]


def config_for(policy, devices, **overrides):
    return ScenarioConfig(policy=policy, devices=devices, **overrides)


class TestExhaustiveSweep:
    @pytest.mark.parametrize("policy,devices", STACKS)
    def test_every_crash_point_recovers_correctly(self, policy, devices):
        """The acceptance sweep: >= 20 transactions, every point, all
        invariants including the differential oracle."""
        config = config_for(policy, devices)
        assert config.n_transactions >= 20
        report = exhaustive_sweep(config)
        assert report.ok, report.summary()
        # Every enumerated point actually crashed and was verified.
        assert report.crashes == report.runs == report.total_points
        assert report.total_points > 0
        # All six invariants ran at every crash point.
        assert report.invariants_checked == 6 * report.crashes

    def test_points_cover_more_than_event_boundaries(self):
        """The stable policy's durable appends are synchronous, so its
        sweep must expose points that no event boundary reaches."""
        config = config_for(CommitPolicy.STABLE, 1)
        run = run_scenario(config, FaultInjector.counting())
        labels = run.injector.trace  # last TRACE_DEPTH labels
        assert run.injector.points > 0
        # The full run ends with flush/drain activity; profile a crash in
        # the middle instead to inspect a mixed label window.
        mid = run.injector.points // 2
        crashed = run_scenario(config, FaultInjector.crash_at(mid))
        assert crashed.crashed
        kinds = {label.split()[0] for label in crashed.injector.trace}
        assert "stable" in kinds or "event:txn" in kinds

    def test_deposit_heavy_workload(self):
        """Money injection (deposits) exercises the conservation check."""
        config = config_for(
            CommitPolicy.GROUP,
            1,
            transfer_fraction=0.3,
            deposit_fraction=0.6,
            workload_seed=7,
        )
        report = exhaustive_sweep(config)
        assert report.ok, report.summary()

    def test_transfer_only_conserves_total(self):
        config = config_for(
            CommitPolicy.GROUP,
            1,
            transfer_fraction=1.0,
            deposit_fraction=0.0,
            workload_seed=11,
        )
        report = exhaustive_sweep(config)
        assert report.ok, report.summary()

    def test_tight_checkpoint_cadence(self):
        """Sweeping with near-continuous checkpointing maximizes the
        in-flight-copy window the dirty-page-table merge must cover."""
        config = config_for(
            CommitPolicy.GROUP, 1, checkpoint_interval=0.005
        )
        report = exhaustive_sweep(config)
        assert report.ok, report.summary()


class TestSeededSweep:
    @pytest.mark.parametrize("policy,devices", STACKS)
    def test_random_fault_schedules(self, policy, devices, chaos_seeds):
        """>= 100 seeded schedules by default (``--chaos-seeds``); any
        failure reports its seed for ``--chaos-seed`` replay."""
        config = config_for(policy, devices)
        report = seeded_sweep(config, chaos_seeds)
        assert report.ok, report.summary()
        assert report.runs == len(chaos_seeds)
        # Schedules must actually exercise the fault arsenal, not only
        # clean crashes (sanity that sampling probabilities are alive).
        if len(chaos_seeds) >= 50:
            assert report.delays_injected > 0
            assert report.checkpoint_writes_dropped > 0

    def test_seeded_schedule_is_deterministic(self):
        """The same seed yields the identical crash point and fault mix --
        the property replayability rests on."""
        config = config_for(CommitPolicy.CONVENTIONAL, 1)
        points = profile_points(config)
        a = run_scenario(config, FaultInjector.seeded(3, points))
        b = run_scenario(config, FaultInjector.seeded(3, points))
        assert a.crashed == b.crashed
        assert a.injector.points == b.injector.points
        assert a.injector.trace == b.injector.trace
        assert a.injector.plan == b.injector.plan
        check_run(a)
        check_run(b)

    def test_torn_pages_reach_the_sweep(self):
        """Across enough seeds, some crash points must catch pages in
        flight and tear them -- otherwise the torn-page path is dead code
        and the sweep's coverage claim is hollow."""
        config = config_for(CommitPolicy.CONVENTIONAL, 1)
        report = seeded_sweep(config, range(60))
        assert report.ok, report.summary()
        assert report.pages_torn > 0


class TestSweepReporting:
    def test_failure_carries_replay_hint(self):
        from repro.chaos import ChaosFailure

        failure = ChaosFailure(
            mode="seeded",
            key=42,
            invariant="durability",
            detail="tid 7 lost",
            plan="crash@10 seed=42",
        )
        assert "--chaos-seed 42" in failure.replay_hint()
        assert "durability" in str(failure)

    def test_summary_counts(self):
        config = config_for(CommitPolicy.GROUP, 1, n_transactions=20)
        report = exhaustive_sweep(config, stride=7)
        assert report.ok
        text = report.summary()
        assert "all invariants held" in text
        assert str(report.runs) in text
