"""Crash sweeps over the batched restart path (parallel partitioned redo).

The sweeps in ``test_crash_sweep.py`` verify the serial recovery contract
at every crash point.  This file turns on the opt-in seventh invariant:
after each crash, recovering the same state through the parallel
partitioned-log path must reproduce the serial image, page LSNs,
committed set, and counters exactly.  It also drives the two seams the
parallel path adds -- the mid-group seal point in the log manager and the
partition-dispatch/merge points inside redo itself -- and confirms that a
crash *during* parallel redo just means running recovery again.
"""

import pytest

from repro.chaos import (
    FaultInjector,
    ScenarioConfig,
    capture,
    exhaustive_sweep,
    profile_points,
    run_scenario,
    seeded_sweep,
)
from repro.chaos.injector import CrashSignal
from repro.recovery.log_manager import CommitPolicy
from repro.recovery.restart import recover

STACKS = [
    pytest.param(CommitPolicy.GROUP, 1, id="group"),
    pytest.param(CommitPolicy.GROUP, 3, id="group-3dev"),
    pytest.param(CommitPolicy.STABLE, 1, id="stable"),
]


def config_for(policy, devices, **overrides):
    return ScenarioConfig(policy=policy, devices=devices, **overrides)


class TestParallelRedoSweep:
    @pytest.mark.parametrize("policy,devices", STACKS)
    def test_every_crash_point_parallel_equivalent(self, policy, devices):
        """The acceptance sweep with the parallel-redo invariant armed:
        at every crash point, four workers recover the identical state."""
        config = config_for(policy, devices)
        report = exhaustive_sweep(config, redo_workers=4)
        assert report.ok, report.summary()
        assert report.crashes == report.total_points > 0
        # The base six invariants plus parallel-redo equivalence.
        assert report.invariants_checked == 7 * report.crashes

    def test_seeded_schedules_parallel_equivalent(self, chaos_seeds):
        """Random fault schedules (slow writes, torn pages, dropped
        checkpoint installs) with the parallel-redo invariant armed."""
        config = config_for(CommitPolicy.GROUP, 1)
        report = seeded_sweep(config, chaos_seeds, redo_workers=4)
        assert report.ok, report.summary()
        assert report.runs == len(chaos_seeds)


class TestGroupSealSeam:
    def test_mid_group_seal_points_are_schedulable(self):
        """The adaptive flush policy's seal is a numbered crash point:
        sweeping the point space must land crashes exactly there, with the
        group id and flush reason in the label."""
        config = config_for(CommitPolicy.GROUP, 1)
        points = profile_points(config)
        seal_labels = []
        for point in range(points):
            run = run_scenario(config, FaultInjector.crash_at(point))
            if run.crashed and "group seal" in run.injector.trace[-1]:
                seal_labels.append(run.injector.trace[-1])
        assert seal_labels, "no crash point landed on a group seal"
        assert all(label.split()[2].startswith("g") for label in seal_labels)
        reasons = {label.split()[3] for label in seal_labels}
        assert reasons <= {"fill", "timer", "barrier", "force", "flush",
                           "dependency", "drain"}


class TestMidRedoCrash:
    def mid_run_crash_state(self):
        config = config_for(CommitPolicy.GROUP, 1)
        points = profile_points(config)
        run = run_scenario(config, FaultInjector.crash_at(points // 2))
        assert run.crashed
        return config, capture(run)

    def test_crash_during_parallel_redo_then_rerun(self):
        """A crash on a partition-dispatch seam aborts the restart; the
        durable state is untouched, so a clean re-run (serial or parallel)
        recovers exactly what an undisturbed recovery would have."""
        config, crash_state = self.mid_run_crash_state()
        serial = recover(crash_state, initial_value=config.initial_balance)
        assert serial.log_records_scanned > 0  # real redo work exists
        injector = FaultInjector.crash_at(0)
        with pytest.raises(CrashSignal):
            recover(
                crash_state,
                initial_value=config.initial_balance,
                workers=4,
                injector=injector,
            )
        assert injector.trace[-1] == "redo partition 0 dispatch"
        rerun = recover(
            crash_state, initial_value=config.initial_balance, workers=4
        )
        assert rerun.state.values == serial.state.values
        assert rerun.committed_tids == serial.committed_tids
        assert rerun.updates_redone == serial.updates_redone

    def test_merge_seam_is_schedulable(self):
        """Crash points cover the coordinator merge too -- the last
        instant a restart can die with partitions replayed but the
        outcome unpublished."""
        config, crash_state = self.mid_run_crash_state()
        labels = []
        point = 0
        while True:
            injector = FaultInjector.crash_at(point)
            try:
                recover(
                    crash_state,
                    initial_value=config.initial_balance,
                    workers=4,
                    injector=injector,
                )
                break  # point beyond the last seam: recovery completed
            except CrashSignal:
                labels.append(injector.trace[-1])
                point += 1
        assert labels[-1] == "parallel redo merge"
        assert any(label.startswith("redo partition") for label in labels)
