"""Unit tests for the chaos machinery itself.

The sweep in test_crash_sweep.py proves the system satisfies the recovery
contract; this file proves the *checker* would notice if it did not --
every invariant is driven to a violation on a deliberately corrupted
crash state -- and covers the injector seams module by module.
"""

import pytest

from repro.chaos import (
    CrashSignal,
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    InvariantViolation,
    ScenarioConfig,
    ShadowDatabase,
    capture,
    run_scenario,
)
from repro.recovery.log_manager import CommitPolicy
from repro.recovery.records import CommitRecord, UpdateRecord
from repro.recovery.state import DatabaseState


def settled_run(**overrides):
    """A fault-free run driven to full durability, plus its checker."""
    config = ScenarioConfig(**overrides)
    run = run_scenario(config, FaultInjector.counting())
    assert not run.crashed
    checker = InvariantChecker(
        initial_value=config.initial_balance,
        scripts_by_tid=run.scripts_by_tid,
        deposit_by_tid=run.deposit_by_tid,
    )
    return run, checker


class TestInjectorPoints:
    def test_counting_mode_never_crashes(self):
        injector = FaultInjector.counting()
        for i in range(100):
            injector.point("p%d" % i)
        assert injector.points == 100
        assert not injector.crashed

    def test_crash_at_fires_exactly_once_at_the_point(self):
        injector = FaultInjector.crash_at(5)
        for i in range(5):
            injector.point("warmup")
        with pytest.raises(CrashSignal) as exc:
            injector.point("boom")
        assert exc.value.point == 5
        assert exc.value.label == "boom"
        # After the crash the injector goes quiet (capture code may still
        # tick points; a second CrashSignal would mask the first).
        injector.point("post-crash")
        assert injector.points == 7

    def test_trace_is_bounded(self):
        injector = FaultInjector.counting()
        for i in range(100):
            injector.point("p%d" % i)
        assert len(injector.trace) == FaultInjector.TRACE_DEPTH
        assert injector.trace[-1] == "p99"

    def test_sampled_faults_are_seed_deterministic(self):
        plan = FaultPlan(write_delay_prob=0.5, write_delay_max=0.02, seed=9)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        assert [a.write_delay(0) for _ in range(50)] == [
            b.write_delay(0) for _ in range(50)
        ]

    def test_healthy_plan_injects_nothing(self):
        injector = FaultInjector.counting()
        assert injector.write_delay(0) == 0.0
        assert not injector.drop_checkpoint_write(0)


class TestDeviceSeams:
    def test_log_device_in_flight_lifecycle(self):
        from repro.recovery.log_device import LogDevice
        from repro.sim.clock import SimulatedClock
        from repro.sim.events import EventQueue

        queue = EventQueue(SimulatedClock())
        device = LogDevice(queue)
        device.write_page(["a", "b"])
        device.write_page(["c"])
        assert [(n, p) for n, p in device.in_flight_writes()] == [
            (0, ["a", "b"]),
            (1, ["c"]),
        ]
        queue.run_to_completion()
        assert device.in_flight_writes() == []

    def test_injected_write_delay_extends_completion_and_fifo(self):
        from repro.recovery.log_device import LogDevice
        from repro.sim.clock import SimulatedClock
        from repro.sim.events import EventQueue

        queue = EventQueue(SimulatedClock())
        device = LogDevice(queue)
        device.fault_injector = FaultInjector(
            FaultPlan(write_delay_prob=1.0, write_delay_max=0.05, seed=1)
        )
        first = device.write_page(["a"])
        second = device.write_page(["b"])
        assert first > 0.010  # stretched beyond the healthy write time
        assert second > first  # FIFO preserved: the queue backs up behind it
        queue.run_to_completion()
        assert device.pages_written == 2
        assert [p.page_number for p in device.pages] == [0, 1]

    def test_dropped_checkpoint_install_keeps_redo_bound(self):
        """A lost snapshot write must leave the in-flight dirty-table
        entry in place so recovery still starts redo early enough."""
        run, checker = settled_run(checkpoint_interval=10.0)
        engine, ck = run.engine, run.checkpointer
        engine.submit([("write", 0, 1)])
        run.log_manager.flush()
        run.queue.run_until(run.queue.clock.now + 0.1)
        ck.fault_injector = FaultInjector(
            FaultPlan(drop_checkpoint_prob=1.0, seed=2)
        )
        ck.checkpoint_now([0])
        pages_before = ck.snapshot.page_count
        run.queue.run_until(run.queue.clock.now + 1.0)
        assert ck.installs_dropped >= 1
        assert ck.snapshot.page_count == pages_before  # copy never landed
        assert 0 in ck.in_flight  # the redo bound survives
        cs = capture(run)
        assert 0 in cs.dirty_first_lsn

    def test_buffer_pool_fault_is_a_crash_point(self):
        from repro.storage.buffer import BufferPool

        pool = BufferPool(4)
        pool.fault_injector = FaultInjector.crash_at(0)
        with pytest.raises(CrashSignal):
            pool.access("page-0")

    def test_database_facade_crash_points(self):
        from repro.core.database import MainMemoryDatabase
        from repro.storage.tuples import DataType

        db = MainMemoryDatabase().attach_chaos(FaultInjector.crash_at(2))
        db.create_table("t", [("k", DataType.INTEGER)])
        db.insert("t", (1,))
        db.insert("t", (2,))
        with pytest.raises(CrashSignal):
            db.insert("t", (3,))
        # The bulk load died mid-stream: exactly two rows landed.
        assert len(list(db.table("t").scan())) == 2


class TestShadowDatabase:
    def test_callable_and_literal_writes(self):
        shadow = ShadowDatabase(4, initial_value=10)
        shadow.apply_script([
            ("write", 0, 42),
            ("read", 1),
            ("write", 1, lambda v: v + 5),
            ("pause", 0.5),
        ])
        assert shadow.as_list() == [42, 15, 10, 10]

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            ShadowDatabase(2).apply_script([("frobnicate", 0)])

    def test_replay_in_commit_order(self):
        shadow = ShadowDatabase(2, initial_value=0)
        scripts = {1: [("write", 0, lambda v: v + 1)],
                   2: [("write", 0, lambda v: v * 10)]}
        shadow.replay(scripts, [1, 2])
        assert shadow.read(0) == 10
        fresh = ShadowDatabase(2, initial_value=0).replay(scripts, [2, 1])
        assert fresh.read(0) == 1

    def test_phantom_commit_rejected(self):
        with pytest.raises(KeyError):
            ShadowDatabase(2).replay({}, [99])

    def test_diff_and_matches(self):
        shadow = ShadowDatabase(3, initial_value=0)
        shadow.write(1, 7)
        state = DatabaseState(3, records_per_page=2, initial_value=0)
        assert not shadow.matches(state)
        assert shadow.diff(state) == [(1, 7, 0)]
        state.values[1] = 7
        assert shadow.matches(state)


class TestCheckerDetectsViolations:
    """Corrupt the durable state on purpose: every invariant must fire."""

    def test_lost_commit_record_is_a_durability_violation(self):
        run, checker = settled_run()
        cs = capture(run)
        acked = run.acked_tids
        victim = sorted(acked)[0]
        cs.durable_log = [
            r
            for r in cs.durable_log
            if not (isinstance(r, CommitRecord) and r.tid == victim)
        ]
        with pytest.raises(InvariantViolation) as exc:
            checker.check(cs, acked, run.active_tids)
        assert exc.value.invariant == "durability"
        assert str(victim) in exc.value.detail

    def test_phantom_commit_of_active_txn_is_detected(self):
        run, checker = settled_run()
        cs = capture(run)
        committed = sorted(run.acked_tids)[0]
        # Pretend that transaction was still running when we crashed: a
        # durable commit record for it must now be flagged.
        with pytest.raises(InvariantViolation) as exc:
            checker.check(cs, set(), {committed})
        assert exc.value.invariant == "durability"
        assert "active" in exc.value.detail

    def test_corrupted_update_record_caught_by_differential_oracle(self):
        """Tampering an after-image fools the log-replay oracle (it reads
        the same bytes) but not the shadow database, which re-executes the
        workload scripts -- the reason the differential oracle exists.
        No checkpoints: with a snapshot in play the tamper would desync
        recovery from the log replay and trip atomicity first."""
        run, checker = settled_run(checkpoint_interval=50.0)
        cs = capture(run)
        committed = run.acked_tids
        update = next(
            r
            for r in cs.durable_log
            if isinstance(r, UpdateRecord) and r.tid in committed
        )
        update.new_value += 1
        with pytest.raises(InvariantViolation) as exc:
            checker.check(cs, run.acked_tids, run.active_tids)
        assert exc.value.invariant == "differential-oracle"

    def test_corrupted_dirty_page_table_is_detected(self):
        """An empty stable dirty-page table claims 'nothing to redo'; if
        updates were actually missing from the snapshot, bounded recovery
        diverges from the full scan and the checker objects."""
        run, checker = settled_run(checkpoint_interval=50.0)  # no sweeps
        cs = capture(run)
        assert cs.dirty_first_lsn  # something was genuinely dirty
        cs.dirty_first_lsn = {}
        with pytest.raises(InvariantViolation) as exc:
            checker.check(cs, run.acked_tids, run.active_tids)
        assert exc.value.invariant in ("atomicity", "bounded-redo")

    def test_conservation_catches_minted_money(self):
        run, checker = settled_run(
            transfer_fraction=1.0,
            deposit_fraction=0.0,
            checkpoint_interval=50.0,
        )
        cs = capture(run)
        update = next(
            r
            for r in cs.durable_log
            if isinstance(r, UpdateRecord) and r.tid in run.acked_tids
        )
        update.new_value += 1000
        with pytest.raises(InvariantViolation) as exc:
            checker.check(cs, run.acked_tids, run.active_tids)
        assert exc.value.invariant in ("differential-oracle", "conservation")

    def test_clean_state_passes_everything(self):
        run, checker = settled_run()
        report = checker.check(capture(run), run.acked_tids, run.active_tids)
        assert report.invariants_checked == 6
        assert report.outcome.committed_tids >= run.acked_tids


class TestTornPages:
    def test_torn_prefix_merges_into_durable_log(self):
        """Tear every in-flight page at a crash caught mid-write: the
        surviving prefix records join the durable log exactly once."""
        config = ScenarioConfig(policy=CommitPolicy.CONVENTIONAL)
        # Crash just after the first log dispatches (pages in flight).
        found = False
        for point in range(5, 40):
            injector = FaultInjector(
                FaultPlan(crash_at_point=point, tear_prob=1.0, seed=point)
            )
            run = run_scenario(config, injector)
            if not run.crashed:
                break
            if run.log_manager.log.in_flight_writes():
                found = True
                cs = capture(run)
                lsns = [r.lsn for r in cs.durable_log]
                assert lsns == sorted(set(lsns))  # merged, deduplicated
                break
        assert found, "no crash point caught a page in flight"

    def test_tear_keeps_record_boundaries(self):
        injector = FaultInjector(FaultPlan(tear_prob=1.0, seed=3))

        class FakeLog:
            def in_flight_writes(self):
                return [(0, 0, ["r1", "r2", "r3"])]

        class FakeManager:
            log = FakeLog()

        survivors = injector.torn_records(FakeManager())
        assert survivors == ["r1", "r2", "r3"][: len(survivors)]
