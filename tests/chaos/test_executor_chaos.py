"""Seeded chaos sweeps over the governed query executor.

Mirrors the recovery sweeps for the query side of the house: integer
seeds fully determine where queries are cancelled, where memory grants
are revoked, and which parallel bucket jobs are killed/hung/garbled.
Every run must satisfy the DegradedRunOracle -- rows identical to the
undisturbed run or a typed governor error, and counter-identical when no
degradation actually fired.

Replay one failing schedule with ``pytest tests/chaos --chaos-seed N``.
"""

from __future__ import annotations

from repro.chaos import (
    ExecutorScenario,
    FaultInjector,
    FaultPlan,
    capture_baseline,
    executor_sweep,
    run_executor_seed,
)
from repro.chaos.executor import build_database, scenario_queries


class TestSeededSerialSweep:
    def test_sweep_passes_the_degraded_run_oracle(self, chaos_seeds):
        report = executor_sweep(chaos_seeds)
        assert report.ok, report.summary()
        assert report.runs == len(chaos_seeds)
        if len(chaos_seeds) >= 20:
            # The seed distribution must actually exercise both seams.
            assert report.queries_cancelled > 0
            assert report.grants_revoked > 0

    def test_runs_are_replayable(self):
        scenario = ExecutorScenario()
        baseline = capture_baseline(scenario)
        first, fails_a = run_executor_seed(scenario, baseline, seed=2)
        second, fails_b = run_executor_seed(scenario, baseline, seed=2)
        assert not fails_a and not fails_b
        assert first.plan.describe() == second.plan.describe()
        assert (first.queries_cancelled, first.grants_revoked) == (
            second.queries_cancelled,
            second.grants_revoked,
        )


class TestParallelWorkerFaults:
    """Worker kill/hang/garble in hybrid phase 2, with grant revocation."""

    SCENARIO = ExecutorScenario(join_workers=2, worker_timeout=1.5)

    def test_sweep_with_worker_faults_passes_oracle(self):
        report = executor_sweep(range(8), self.SCENARIO)
        assert report.ok, report.summary()
        # The fixed seed range covers both acceptance seams: worker
        # faults (including kills) and grant revocation.
        assert report.worker_faults_injected >= 1
        assert report.grants_revoked >= 1
        assert report.queries_cancelled >= 1

    def test_deterministic_worker_kill_recovers_serially(self):
        baseline_db = build_database(self.SCENARIO)
        queries = dict(scenario_queries())
        expected = sorted(baseline_db.execute(queries["spill-join"]), key=repr)
        expected_counters = baseline_db.counters.snapshot()

        db = build_database(self.SCENARIO)
        injector = FaultInjector(FaultPlan(worker_faults={0: "kill"}))
        db.attach_chaos(injector)
        rows = sorted(db.execute(queries["spill-join"]), key=repr)
        assert rows == expected
        assert injector.worker_faults_injected == 1
        # The failure was recorded against the session breaker...
        assert db.governor.breaker.failures == 1
        assert db.governor.breaker.allows_parallel()  # below threshold
        # ...and the serial retry was counter-identical.
        assert db.counters.snapshot() == expected_counters

    def test_deterministic_garbled_result_is_detected(self):
        baseline_db = build_database(self.SCENARIO)
        queries = dict(scenario_queries())
        expected = sorted(baseline_db.execute(queries["spill-join"]), key=repr)

        db = build_database(self.SCENARIO)
        injector = FaultInjector(FaultPlan(worker_faults={1: "garble"}))
        db.attach_chaos(injector)
        rows = sorted(db.execute(queries["spill-join"]), key=repr)
        assert rows == expected
        assert db.governor.breaker.failures == 1

    def test_repeated_faults_trip_breaker_to_serial(self):
        db = build_database(self.SCENARIO)
        injector = FaultInjector(
            FaultPlan(worker_faults={0: "garble", 1: "garble", 2: "garble"})
        )
        db.attach_chaos(injector)
        queries = dict(scenario_queries())
        baseline_db = build_database(self.SCENARIO)
        expected = sorted(baseline_db.execute(queries["spill-join"]), key=repr)
        rows = sorted(db.execute(queries["spill-join"]), key=repr)
        assert rows == expected
        stats = db.governor_stats()["breaker"]
        if stats["failures"] >= stats["threshold"]:
            assert stats["tripped"]
            # Subsequent joins run serially: no new jobs are dispatched.
            jobs_before = injector.worker_jobs
            again = sorted(db.execute(queries["spill-join"]), key=repr)
            assert again == expected
            assert injector.worker_jobs == jobs_before
