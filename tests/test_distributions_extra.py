"""Statistical sanity checks on the key distributions.

These complement test_workload.py with distribution-shape assertions the
Section 3.3 partitioning argument depends on (the central-limit claim for
uniform keys, the heavy tail for Zipf).
"""

import math
from collections import Counter

import pytest

from repro.join.partition import partition_hash
from repro.workload.distributions import uniform_keys, zipf_keys


class TestUniformPartitioningClaim:
    def test_partition_sizes_concentrate(self):
        """Section 3.3: "if the number of keys in each partition is large,
        then the central limit theorem assures us that the relative
        variation ... will be small."  Check the relative spread of hash
        partition sizes shrinks as keys grow."""
        def relative_spread(n_keys):
            keys = uniform_keys(n_keys, n_keys, seed=5)
            buckets = Counter(partition_hash(k) % 8 for k in keys)
            sizes = [buckets.get(i, 0) for i in range(8)]
            mean = sum(sizes) / 8
            return (max(sizes) - min(sizes)) / mean

        assert relative_spread(40_000) < relative_spread(400)
        assert relative_spread(40_000) < 0.1

    def test_uniform_chi_square_reasonable(self):
        n, domain = 20_000, 20
        keys = uniform_keys(n, domain, seed=6)
        counts = Counter(keys)
        expected = n / domain
        chi2 = sum(
            (counts.get(v, 0) - expected) ** 2 / expected
            for v in range(domain)
        )
        # 19 degrees of freedom: chi2 beyond ~45 would be wildly non-uniform.
        assert chi2 < 45


class TestZipfShape:
    def test_rank_frequency_decays(self):
        keys = zipf_keys(50_000, 200, theta=1.0, seed=7)
        counts = Counter(keys)
        ranked = [c for _, c in counts.most_common()]
        # Frequency roughly halves by rank 2 and is tiny by rank 100.
        assert ranked[0] > 1.5 * ranked[1]
        assert ranked[0] > 20 * ranked[min(99, len(ranked) - 1)]

    def test_theta_controls_skew(self):
        def top_share(theta):
            keys = zipf_keys(20_000, 100, theta=theta, seed=8)
            counts = Counter(keys)
            return counts.most_common(1)[0][1] / len(keys)

        assert top_share(0.2) < top_share(0.8) < top_share(1.4)

    def test_partitions_skew_under_zipf(self):
        """The flip side of the CLT claim: Zipf keys defeat even a perfect
        hash, because a single key's mass lands in one bucket."""
        keys = zipf_keys(20_000, 1000, theta=1.2, seed=9)
        buckets = Counter(partition_hash(k) % 8 for k in keys)
        sizes = sorted(buckets.values())
        assert sizes[-1] > 1.5 * sizes[0]
