"""Tests for the packed columnar page layout (repro.storage.codecs/page).

Two properties anchor the PR-7 storage refactor:

* **Packing**: schema-typed columns land in contiguous ``array('q')`` /
  ``array('d')`` buffers; strings and anything that will not round-trip
  exactly falls back to the object list, *per column*.
* **Fidelity**: the row view (``page.tuples``) is byte-identical to the
  historical tuple storage -- same values, same exact Python types --
  no matter which buffer a column happens to occupy, and no matter
  whether numpy is available to accelerate the kernels.
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro.cost.counters import OperationCounters
from repro.operators.selection import Comparison, select
from repro.storage import codecs
from repro.storage.codecs import (
    FLOAT_KIND,
    INT_KIND,
    OBJECT_KIND,
    column_kinds,
    compress_column,
    infer_kind,
    is_packed,
    packed_view,
)
from repro.storage.page import Page
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema


MIXED_SCHEMA = Schema(
    [
        Field("id", DataType.INTEGER),
        Field("score", DataType.FLOAT),
        Field("name", DataType.STRING),
    ]
)


def mixed_relation(n=50, page_bytes=256):
    rel = Relation("t", MIXED_SCHEMA, page_bytes)
    rel.extend_rows([(i, i * 0.5, "name%d" % i) for i in range(n)])
    return rel


# ---------------------------------------------------------------------------
# Codec-level behaviour
# ---------------------------------------------------------------------------


class TestCodecs:
    def test_column_kinds_follow_schema(self):
        assert column_kinds(MIXED_SCHEMA) == (INT_KIND, FLOAT_KIND, OBJECT_KIND)

    def test_infer_kind_is_exact_typed(self):
        assert infer_kind(3) == INT_KIND
        assert infer_kind(3.0) == FLOAT_KIND
        assert infer_kind("3") == OBJECT_KIND
        # bool is an int subclass but must not pack: True would come
        # back as 1.
        assert infer_kind(True) == OBJECT_KIND

    def test_compress_column_preserves_packedness(self):
        col = array("q", range(8))
        mask = [i % 2 == 0 for i in range(8)]
        out = compress_column(col, mask)
        assert is_packed(out) and list(out) == [0, 2, 4, 6]
        obj = compress_column(list("abcdefgh"), mask)
        assert obj == ["a", "c", "e", "g"]

    @pytest.mark.skipif(codecs.np is None, reason="numpy not installed")
    def test_packed_view_is_zero_copy(self):
        col = array("q", [1, 2, 3])
        view = packed_view(col)
        assert list(view) == [1, 2, 3]
        col[1] = 99  # mutations show through: same buffer, not a copy
        assert view[1] == 99
        assert packed_view([1, 2, 3]) is None  # object lists never view

    @pytest.mark.skipif(codecs.np is None, reason="numpy not installed")
    def test_compress_column_accepts_numpy_masks(self):
        col = array("d", [0.5 * i for i in range(8)])
        mask = packed_view(array("q", range(8))) % 2 == 0
        out = compress_column(col, mask)
        assert is_packed(out) and list(out) == [0.0, 1.0, 2.0, 3.0]


# ---------------------------------------------------------------------------
# Page packing and demotion
# ---------------------------------------------------------------------------


class TestPagePacking:
    def test_schema_columns_pack(self):
        rel = mixed_relation()
        for page in rel.pages:
            cols = page.columns
            assert is_packed(cols[0]) and cols[0].typecode == INT_KIND
            assert is_packed(cols[1]) and cols[1].typecode == FLOAT_KIND
            assert type(cols[2]) is list

    def test_row_view_round_trips_types(self):
        rel = mixed_relation()
        for i, row in enumerate(rel):
            assert row == (i, i * 0.5, "name%d" % i)
            assert type(row[0]) is int and type(row[1]) is float

    def test_oversized_int_demotes_column(self):
        page = Page.for_schema(0, MIXED_SCHEMA, 4096)
        page.add((1, 1.0, "a"))
        page.add((2**70, 2.0, "b"))  # does not fit in int64
        assert type(page.column(0)) is list
        assert page.tuples == [(1, 1.0, "a"), (2**70, 2.0, "b")]
        # The other columns keep their packed buffers.
        assert is_packed(page.column(1))

    def test_int_into_float_column_demotes(self):
        # FLOAT columns legally hold ints; packing 2 as 2.0 would lie.
        page = Page.for_schema(0, MIXED_SCHEMA, 4096)
        page.add((1, 1.5, "a"))
        page.add((2, 2, "b"))
        assert type(page.column(1)) is list
        row = page[1]
        assert row[1] == 2 and type(row[1]) is int

    def test_bulk_extend_demotes_and_rolls_back_partial_write(self):
        page = Page.for_schema(0, MIXED_SCHEMA, 4096)
        rows = [(0, 0.0, "x"), (1, 1.0, "y"), (2**70, 2.0, "z")]
        assert page.extend_rows(rows) == 3
        assert page.tuples == rows  # no duplicated prefix from the retry

    def test_replace_and_remove_keep_columns_consistent(self):
        page = Page.for_schema(0, MIXED_SCHEMA, 4096)
        for i in range(4):
            page.add((i, float(i), str(i)))
        page.replace(1, (10, 10.0, "ten"))
        assert page[1] == (10, 10.0, "ten")
        removed = page.remove_slot(0)
        assert removed == (0, 0.0, "0")
        assert len(page) == 3 and is_packed(page.column(0))

    def test_copy_is_independent(self):
        page = Page.for_schema(0, MIXED_SCHEMA, 4096)
        page.add((1, 1.0, "a"))
        dup = page.copy()
        dup.add((2, 2.0, "b"))
        assert len(page) == 1 and len(dup) == 2

    def test_extend_columns_buffer_to_buffer(self):
        rel = mixed_relation(n=30)
        out = Relation("out", MIXED_SCHEMA, 256)
        for page in rel.pages:
            out.extend_columns(page.columns, len(page))
        assert list(out) == list(rel)
        for page in out.pages:
            assert is_packed(page.column(0)) and is_packed(page.column(1))

    def test_storage_stats_report_packing(self):
        stats = mixed_relation().storage_stats()
        # Two of three columns pack on every page (id, score; name is
        # the object-list fallback).
        assert stats["total_columns"] == 3 * stats["pages"]
        assert stats["packed_columns"] == 2 * stats["pages"]
        assert stats["packed_fraction"] == pytest.approx(2 / 3)
        assert stats["buffer_bytes"] > 0


# ---------------------------------------------------------------------------
# numpy is an optional accelerator, never a semantic dependency
# ---------------------------------------------------------------------------


PREDICATES = [
    Comparison("id", "<", 20),
    Comparison("score", ">=", 5.0) & Comparison("id", "<", 35),
    ~Comparison("name", "=", "name3"),
]


class TestNumpyFallback:
    @pytest.mark.parametrize("pred_index", range(len(PREDICATES)))
    def test_select_identical_without_numpy(self, monkeypatch, pred_index):
        predicate = PREDICATES[pred_index]

        def run():
            counters = OperationCounters()
            out = select(mixed_relation(120), predicate, counters)
            return list(out), counters.as_dict()

        with_np = run()
        monkeypatch.setattr(codecs, "np", None)
        assert run() == with_np

    def test_compress_column_without_numpy(self, monkeypatch):
        monkeypatch.setattr(codecs, "np", None)
        col = array("q", range(10))
        out = compress_column(col, [v % 3 == 0 for v in col])
        assert is_packed(out) and list(out) == [0, 3, 6, 9]
        assert packed_view(col) is None

    def test_huge_ints_never_take_the_vector_path(self):
        # int64-range check: a value numpy would overflow or round must
        # fall back to exact Python comparison.
        schema = Schema([Field("k", DataType.INTEGER)])
        rel = Relation("big", schema, 256)
        rel.extend_rows([(2**64 + i,) for i in range(10)] + [(5,)])
        out = select(rel, Comparison("k", ">", 2**64 + 4), OperationCounters())
        assert sorted(out) == [(2**64 + i,) for i in range(5, 10)]

    def test_float_predicate_on_int_column_is_exact(self):
        schema = Schema([Field("k", DataType.INTEGER)])
        rel = Relation("t", schema, 256)
        rel.extend_rows([(i,) for i in range(10)])
        out = select(rel, Comparison("k", "<", 4.5), OperationCounters())
        assert sorted(out) == [(i,) for i in range(5)]


# ---------------------------------------------------------------------------
# Whole-relation fuzz: row view == reference rows under random schemas
# ---------------------------------------------------------------------------


def test_random_rows_round_trip():
    rng = random.Random(42)
    rel = Relation("fuzz", MIXED_SCHEMA, 128)
    reference = []
    for i in range(300):
        roll = rng.random()
        if roll < 0.1:
            row = (2**70 + i, float(i), "s%d" % i)  # force demotion
        elif roll < 0.2:
            row = (i, i, "s%d" % i)  # int in the FLOAT column
        else:
            row = (i, rng.random(), "s%d" % i)
        reference.append(row)
    rel.extend_rows(reference)
    assert list(rel) == reference
    for got, want in zip(rel, reference):
        assert [type(v) for v in got] == [type(v) for v in want]
