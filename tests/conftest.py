"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest


def pytest_addoption(parser):
    group = parser.getgroup("chaos", "fault-injection sweeps (tests/chaos)")
    group.addoption(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="replay exactly one chaos fault schedule (deterministic: the "
        "seed fully determines the crash point, write delays, torn pages, "
        "and dropped checkpoint installs)",
    )
    group.addoption(
        "--chaos-seeds",
        type=int,
        default=100,
        metavar="N",
        help="number of seeded random fault schedules the chaos sweep "
        "verifies (default 100; nightly CI runs more)",
    )


@pytest.fixture
def chaos_seeds(request) -> list:
    """The fault-schedule seeds this run should verify.

    ``--chaos-seed N`` narrows to one schedule for replaying a failure;
    otherwise ``--chaos-seeds`` many consecutive seeds starting at 0.
    """
    replay = request.config.getoption("--chaos-seed")
    if replay is not None:
        return [replay]
    return list(range(request.config.getoption("--chaos-seeds")))

from repro.cost.counters import OperationCounters
from repro.cost.parameters import CostParameters
from repro.lint.runtime import (
    install_recorder,
    record_session_edges,
    session_edges,
    uninstall_recorder,
)
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema


@pytest.fixture(autouse=True)
def lock_order_recorder():
    """Record every tracked-lock acquisition and fail on ABBA cycles.

    Installed process-wide before each test, so any engine object built
    inside the test gets TrackedLock instances; teardown asserts the
    observed acquisition graph is acyclic, making every threaded test
    double as a lock-order check.  Each test's edges are also folded
    into the session-wide union so the static-vs-runtime lock-graph
    diff (tests/lint/test_lock_graph_diff.py) sees the whole run.
    """
    recorder = install_recorder()
    try:
        yield recorder
        recorder.assert_acyclic()
    finally:
        record_session_edges(recorder)
        uninstall_recorder()


def pytest_sessionfinish(session, exitstatus):
    """Optionally export the runtime-observed lock graph as an artifact.

    ``REPRO_LOCK_GRAPH_OUT=<path>`` makes the full-suite run drop its
    accumulated edge set as JSON; CI merges it with the static graph via
    ``python -m repro.lint --lock-graph --runtime-graph <path>``.
    """
    import json
    import os

    out = os.environ.get("REPRO_LOCK_GRAPH_OUT")
    if not out:
        return
    edges = sorted(session_edges())
    payload = {
        "schema_version": 2,
        "kind": "runtime-lock-graph",
        "edges": [[a, b] for a, b in edges],
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture
def counters() -> OperationCounters:
    return OperationCounters()


@pytest.fixture
def small_params() -> CostParameters:
    """Table 2 constants on a small (executable-scale) join instance."""
    return CostParameters(
        r_pages=50,
        s_pages=150,
        r_tuples_per_page=8,
        s_tuples_per_page=8,
    )


@pytest.fixture
def kv_schema() -> Schema:
    return Schema(
        [Field("key", DataType.INTEGER), Field("payload", DataType.INTEGER)]
    )


def build_relation(
    name: str,
    keys,
    schema: Schema = None,
    page_bytes: int = 64,
) -> Relation:
    """A (key, ordinal) relation over ``keys``, 8 tuples per 64-byte page."""
    if schema is None:
        schema = Schema(
            [Field("key", DataType.INTEGER), Field("payload", DataType.INTEGER)]
        )
    rel = Relation(name, schema, page_bytes)
    for i, k in enumerate(keys):
        rel.insert_unchecked((k, i))
    return rel


@pytest.fixture
def r_relation() -> Relation:
    rng = random.Random(42)
    return build_relation("r", [rng.randrange(100) for _ in range(300)])


@pytest.fixture
def s_relation() -> Relation:
    rng = random.Random(43)
    schema = Schema(
        [Field("skey", DataType.INTEGER), Field("sval", DataType.INTEGER)]
    )
    return build_relation(
        "s", [rng.randrange(100) for _ in range(900)], schema=schema
    )
