"""Tests for the multi-version read layer (Section 6 / REED83)."""

import pytest

from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.state import DatabaseState
from repro.recovery.transactions import TransactionEngine
from repro.recovery.versioning import VersionManager
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def setup():
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(100, records_per_page=16, initial_value=10)
    lm = LogManager(queue, policy=CommitPolicy.GROUP)
    engine = TransactionEngine(state, queue, lm)
    versions = VersionManager(engine)
    return queue, lm, engine, versions


class TestSnapshots:
    def test_snapshot_sees_prior_commits(self, setup):
        queue, lm, engine, versions = setup
        engine.submit([("write", 0, 42)])
        snap = versions.snapshot()
        assert snap.read(0) == 42
        assert snap.read(1) == 10  # untouched: base value

    def test_snapshot_isolated_from_later_writes(self, setup):
        queue, lm, engine, versions = setup
        engine.submit([("write", 0, 1)])
        snap = versions.snapshot()
        engine.submit([("write", 0, 2)])
        assert snap.read(0) == 1
        assert versions.snapshot().read(0) == 2

    def test_snapshot_excludes_uncommitted(self, setup):
        queue, lm, engine, versions = setup
        from repro.recovery.lock_table import LockMode

        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        engine.submit([("write", 0, 77), ("write", 5, 1)])  # blocks on 5
        snap = versions.snapshot()
        # The in-memory state is dirty (77) but the snapshot is clean.
        assert engine.state.read(0) == 77
        assert snap.read(0) == 10

    def test_snapshot_is_transaction_consistent(self, setup):
        """A transfer is visible either fully or not at all, never half."""
        queue, lm, engine, versions = setup
        for _ in range(20):
            engine.submit(
                [("write", 0, lambda v: v - 1), ("write", 1, lambda v: v + 1)]
            )
            snap = versions.snapshot()
            assert snap.read(0) + snap.read(1) == 20
            snap.release()

    def test_total_is_conserved_under_transfers(self, setup):
        queue, lm, engine, versions = setup
        import random

        rng = random.Random(3)
        for _ in range(100):
            a, b = sorted(rng.sample(range(100), 2))
            amt = rng.randrange(5)
            engine.submit(
                [
                    ("write", a, lambda v, amt=amt: v - amt),
                    ("write", b, lambda v, amt=amt: v + amt),
                ]
            )
        snap = versions.snapshot()
        assert snap.total() == 100 * 10

    def test_reads_take_no_locks(self, setup):
        queue, lm, engine, versions = setup
        snap = versions.snapshot()
        snap.read(0)
        snap.read_many(range(50))
        assert len(engine.locks) == 0 or not engine.locks.holders(0)

    def test_released_snapshot_rejects_reads(self, setup):
        queue, lm, engine, versions = setup
        snap = versions.snapshot()
        snap.release()
        with pytest.raises(RuntimeError):
            snap.read(0)

    def test_context_manager_releases(self, setup):
        queue, lm, engine, versions = setup
        with versions.snapshot() as snap:
            snap.read(0)
        assert versions.oldest_pin() is None


class TestOrdering:
    def test_versions_ordered_by_commit_lsn(self, setup):
        """A dependent writer's version must come after its dependency's,
        even though both pre-commit in the same instant."""
        queue, lm, engine, versions = setup
        engine.submit([("write", 0, 1)])
        engine.submit([("write", 0, lambda v: v + 10)])  # depends on first
        snap = versions.snapshot()
        assert snap.read(0) == 11

    def test_aborted_transactions_publish_nothing(self, setup):
        queue, lm, engine, versions = setup
        from repro.recovery.lock_table import LockMode

        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        txn = engine.submit([("write", 0, 77), ("write", 5, 1)])
        engine.abort(txn)
        snap = versions.snapshot()
        assert snap.read(0) == 10
        assert versions.versions_recorded == 0


class TestPruning:
    def test_prune_respects_pins(self, setup):
        queue, lm, engine, versions = setup
        engine.submit([("write", 0, 1)])
        pinned = versions.snapshot()
        engine.submit([("write", 0, 2)])
        engine.submit([("write", 0, 3)])
        versions.prune()
        assert pinned.read(0) == 1  # still readable
        assert versions.snapshot().read(0) == 3

    def test_prune_after_release_drops_history(self, setup):
        queue, lm, engine, versions = setup
        for v in range(1, 6):
            engine.submit([("write", 0, v)])
        before = versions.live_versions
        versions.prune()  # no pins: only the newest survives per record
        assert versions.live_versions < before
        assert versions.snapshot().read(0) == 5

    def test_prune_keeps_visibility_for_oldest_pin(self, setup):
        queue, lm, engine, versions = setup
        engine.submit([("write", 0, 1)])
        engine.submit([("write", 0, 2)])
        pin = versions.snapshot()
        engine.submit([("write", 0, 3)])
        engine.submit([("write", 0, 4)])
        versions.prune()
        assert pin.read(0) == 2
        assert versions.snapshot().read(0) == 4

    def test_double_attach_rejected(self, setup):
        queue, lm, engine, versions = setup
        with pytest.raises(ValueError):
            VersionManager(engine)
