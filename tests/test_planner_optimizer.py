"""Tests for the Section 4 planner: pushdown, ordering, algorithm choice."""

import random

import pytest

from repro.access.btree import BPlusTree
from repro.cost.parameters import CostParameters
from repro.operators.aggregate import AggregateFunction, AggregateSpec
from repro.operators.selection import Comparison
from repro.planner.plan import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    JoinNode,
    ProjectNode,
    ScanNode,
)
from repro.planner.planner import Planner, PlannerConfig
from repro.planner.query import JoinClause, Query
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema


@pytest.fixture
def catalog():
    """A three-table star: orders -> customers, orders -> items."""
    cat = Catalog()
    rng = random.Random(12)

    customers = Relation(
        "customers",
        make_schema(("cust_id", DataType.INTEGER), ("region", DataType.INTEGER)),
        64,
    )
    for i in range(50):
        customers.insert_unchecked((i, i % 5))
    cat.register(customers)

    items = Relation(
        "items",
        make_schema(("item_id", DataType.INTEGER), ("price", DataType.INTEGER)),
        64,
    )
    for i in range(20):
        items.insert_unchecked((i, 10 + i))
    cat.register(items)

    orders = Relation(
        "orders",
        make_schema(
            ("order_id", DataType.INTEGER),
            ("cust", DataType.INTEGER),
            ("item", DataType.INTEGER),
            ("qty", DataType.INTEGER),
        ),
        64,
    )
    for i in range(500):
        orders.insert_unchecked(
            (i, rng.randrange(50), rng.randrange(20), rng.randrange(1, 9))
        )
    cat.register(orders)

    for name in cat.relations():
        cat.analyze(name)
    return cat


@pytest.fixture
def planner(catalog):
    return Planner(catalog, PlannerConfig(memory_pages=500))


def reference_query_result(catalog, region):
    out = []
    customers = {row[0]: row for row in catalog.relation("customers")}
    items = {row[0]: row for row in catalog.relation("items")}
    for order in catalog.relation("orders"):
        cust = customers[order[1]]
        if cust[1] != region:
            continue
        item = items[order[2]]
        out.append(order + cust + item)
    return out


class TestSingleTablePlans:
    def test_scan_plus_filter(self, planner):
        q = Query(
            tables=["orders"],
            predicates=[("orders", Comparison("qty", ">", 4))],
        )
        plan = planner.plan(q)
        assert isinstance(plan, FilterNode)
        assert isinstance(plan.child, ScanNode)
        result = plan.execute(planner.context())
        assert all(row[3] > 4 for row in result)

    def test_no_predicates_is_bare_scan(self, planner):
        plan = planner.plan(Query(tables=["orders"]))
        assert isinstance(plan, ScanNode)

    def test_index_scan_chosen_for_selective_equality(self, catalog):
        index = BPlusTree()
        rel = catalog.relation("orders")
        for tid, row in rel.scan():
            index.insert(row[0], tid)
        catalog.register_index("orders", "order_id", index)
        planner = Planner(catalog)
        q = Query(
            tables=["orders"],
            predicates=[("orders", Comparison("order_id", "=", 7))],
        )
        plan = planner.plan(q)
        assert isinstance(plan, IndexScanNode)
        rows = list(plan.execute(planner.context()))
        assert len(rows) == 1 and rows[0][0] == 7

    def test_unselective_predicate_keeps_scan(self, catalog):
        index = BPlusTree()
        rel = catalog.relation("orders")
        for tid, row in rel.scan():
            index.insert(row[3], tid)
        catalog.register_index("orders", "qty", index)
        planner = Planner(catalog)
        q = Query(
            tables=["orders"],
            predicates=[("orders", Comparison("qty", ">=", 1))],  # keeps all
        )
        plan = planner.plan(q)
        assert isinstance(plan, FilterNode)


class TestJoinPlans:
    def test_two_way_join_correct(self, planner, catalog):
        q = Query(
            tables=["orders", "customers"],
            joins=[JoinClause("orders", "cust", "customers", "cust_id")],
        )
        plan = planner.plan(q)
        assert isinstance(plan, JoinNode)
        result = plan.execute(planner.context())
        assert result.cardinality == 500  # FK join preserves orders

    def test_three_way_join_matches_reference(self, planner, catalog):
        q = Query(
            tables=["orders", "customers", "items"],
            predicates=[("customers", Comparison("region", "=", 2))],
            joins=[
                JoinClause("orders", "cust", "customers", "cust_id"),
                JoinClause("orders", "item", "items", "item_id"),
            ],
        )
        plan = planner.plan(q)
        result = plan.execute(planner.context())
        expected = reference_query_result(catalog, region=2)
        got = sorted(tuple(sorted(map(repr, row))) for row in result)
        want = sorted(tuple(sorted(map(repr, row))) for row in expected)
        assert got == want

    def test_hash_algorithm_chosen_with_large_memory(self, planner):
        """Section 4's claim: with ample memory the cost-based choice is
        always a hash algorithm."""
        q = Query(
            tables=["orders", "customers"],
            joins=[JoinClause("orders", "cust", "customers", "cust_id")],
        )
        plan = planner.plan(q)
        assert plan.algorithm in ("hybrid-hash", "simple-hash")

    def test_restricting_algorithms(self, catalog):
        planner = Planner(
            catalog,
            PlannerConfig(join_algorithms=["sort-merge"]),
        )
        q = Query(
            tables=["orders", "customers"],
            joins=[JoinClause("orders", "cust", "customers", "cust_id")],
        )
        assert planner.plan(q).algorithm == "sort-merge"

    def test_selective_table_seeds_the_ordering(self, planner):
        """The most selective input sits deepest in the tree."""
        q = Query(
            tables=["orders", "customers", "items"],
            predicates=[("customers", Comparison("region", "=", 2))],
            joins=[
                JoinClause("orders", "cust", "customers", "cust_id"),
                JoinClause("orders", "item", "items", "item_id"),
            ],
        )
        plan = planner.plan(q)
        # Walk to the deepest join: its inputs should include the filtered
        # customers (estimated ~10 rows) or tiny items, not raw orders.
        deepest = plan
        while isinstance(deepest.left, JoinNode):
            deepest = deepest.left
        left_rows = deepest.left.estimated_rows
        assert left_rows <= 50

    def test_disconnected_query_rejected(self, planner):
        q = Query(tables=["orders", "customers"])  # no join clause
        with pytest.raises(ValueError):
            planner.plan(q)

    def test_column_clash_rejected(self, catalog):
        clash = Relation(
            "clash", make_schema(("cust_id", DataType.INTEGER)), 64
        )
        catalog.register(clash)
        planner = Planner(catalog)
        q = Query(
            tables=["customers", "clash"],
            joins=[JoinClause("customers", "cust_id", "clash", "cust_id")],
        )
        with pytest.raises(ValueError):
            planner.plan(q)


class TestAggregateAndProjection:
    def test_group_by_plan(self, planner, catalog):
        q = Query(
            tables=["orders"],
            group_by=["item"],
            aggregates=[AggregateSpec(AggregateFunction.SUM, "qty", "total")],
        )
        plan = planner.plan(q)
        assert isinstance(plan, AggregateNode)
        result = plan.execute(planner.context())
        totals = {row[0]: row[1] for row in result}
        expected = {}
        for row in catalog.relation("orders"):
            expected[row[2]] = expected.get(row[2], 0) + row[3]
        assert totals == pytest.approx(expected)

    def test_distinct_projection_plan(self, planner, catalog):
        q = Query(tables=["orders"], projection=["item"], distinct=True)
        plan = planner.plan(q)
        assert isinstance(plan, ProjectNode)
        result = plan.execute(planner.context())
        assert sorted(result) == [
            (v,) for v in sorted({row[2] for row in catalog.relation("orders")})
        ]

    def test_aggregate_defaults_to_hash_method(self, planner):
        q = Query(
            tables=["orders"],
            group_by=["item"],
            aggregates=[AggregateSpec(AggregateFunction.COUNT, alias="n")],
        )
        plan = planner.plan(q)
        assert plan.method == "hash"


class TestExplain:
    def test_explain_is_readable(self, planner):
        q = Query(
            tables=["orders", "customers"],
            predicates=[("customers", Comparison("region", "=", 1))],
            joins=[JoinClause("orders", "cust", "customers", "cust_id")],
        )
        text = planner.explain(q)
        assert "Join" in text
        assert "Scan(orders)" in text
        assert "cost=" in text

    def test_costs_accumulate_up_the_tree(self, planner):
        q = Query(
            tables=["orders", "customers"],
            joins=[JoinClause("orders", "cust", "customers", "cust_id")],
        )
        plan = planner.plan(q)
        ctx = planner.context()
        assert plan.total_cost(ctx) >= plan.left.total_cost(ctx)
        assert plan.total_cost(ctx) >= plan.estimated_cost(ctx)


class TestQueryValidation:
    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            Query(tables=[])

    def test_duplicate_tables_rejected(self):
        with pytest.raises(ValueError):
            Query(tables=["a", "a"])

    def test_predicate_on_unknown_table(self):
        with pytest.raises(ValueError):
            Query(tables=["a"], predicates=[("b", Comparison("x", "=", 1))])

    def test_join_on_unknown_table(self):
        with pytest.raises(ValueError):
            Query(tables=["a"], joins=[JoinClause("a", "x", "b", "y")])

    def test_projection_and_aggregates_exclusive(self):
        with pytest.raises(ValueError):
            Query(
                tables=["a"],
                projection=["x"],
                aggregates=[AggregateSpec(AggregateFunction.COUNT)],
            )
