"""Differential tests: batch execution == tuple-at-a-time execution.

The page-at-a-time batch executor must be *observationally identical* to
the historical tuple-at-a-time loops: same output rows (order included,
where the operator defines one) and -- because the counters are the
paper's cost model -- byte-for-byte identical ``OperationCounters``
totals, IO classification included.  Likewise, the worker-pool variants
of the partitioned hash joins must be bit-identical to serial execution
for any worker count.

Every test runs the same workload once per execution mode on fresh
relations, disks, and counters, then compares rows and
``counters.as_dict()``.
"""

from __future__ import annotations

import random

import pytest

from repro.cost.counters import OperationCounters
from repro.cost.parameters import CostParameters
from repro.join import (
    ALL_JOINS,
    GraceHashJoin,
    HybridHashJoin,
    JoinSpec,
)
from repro.operators.aggregate import (
    AggregateFunction,
    AggregateSpec,
    hash_aggregate,
    sort_aggregate,
)
from repro.operators.projection import hash_project, sort_project
from repro.operators.relational import (
    cross_product,
    difference,
    divide,
    intersect,
    union_,
)
from repro.operators.selection import Comparison, Prefix, select
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------

PAGE_BYTES = 64  # 8 integer pairs per page: plenty of page boundaries


def kv_relation(name, pairs, columns=("key", "payload")):
    schema = Schema([Field(c, DataType.INTEGER) for c in columns])
    rel = Relation(name, schema, PAGE_BYTES)
    rel.extend_rows([tuple(p) for p in pairs])
    return rel


def seeded_pairs(seed, n, key_range):
    rng = random.Random(seed)
    return [(rng.randrange(key_range), i) for i in range(n)]


#: tuple-at-a-time, row-view batch, and columnar batch execution.  The
#: set operators only distinguish the first two (their batch loops
#: consume the cached row views either way).
MODES = (dict(batch=False), dict(batch=True, columnar=False), dict(batch=True))
ROW_MODES = (dict(batch=False), dict(batch=True))


def run_modes(fn, modes=MODES):
    """Run ``fn(mode_kwargs)`` per execution mode; return [(rows, counters)]."""
    results = []
    for kwargs in modes:
        results.append(fn(dict(kwargs)))
    return results


def assert_equivalent(runs, ordered=True):
    (base_rows, base_counters) = runs[0]
    for rows, counters in runs[1:]:
        if ordered:
            assert list(rows) == list(base_rows)
        else:
            assert sorted(rows) == sorted(base_rows)
        assert counters == base_counters


# ---------------------------------------------------------------------------
# Storage bulk paths
# ---------------------------------------------------------------------------


class TestStorageBulk:
    def test_extend_rows_matches_repeated_insert(self):
        rows = seeded_pairs(0, 61, 40)
        one = kv_relation("one", [])
        for row in rows:
            one.insert_unchecked(row)
        bulk = kv_relation("bulk", [])
        assert bulk.extend_rows(rows) == len(rows)
        assert list(one) == list(bulk)
        assert [p.tuples for p in one.pages] == [p.tuples for p in bulk.pages]
        assert bulk.cardinality == len(rows)

    def test_extend_validates_like_insert(self):
        rel = kv_relation("v", [])
        with pytest.raises(TypeError):
            rel.extend([(1, 2), ("bad", 3)])
        with pytest.raises(ValueError):
            rel.extend([(1, 2, 3)])
        assert rel.cardinality == 0  # failed batch inserts nothing

    def test_mutations_bump_version(self):
        rel = kv_relation("ver", [(1, 1)])
        v0 = rel.version
        rel.extend_rows([(2, 2)])
        assert rel.version > v0
        v1 = rel.version
        rel.truncate()
        assert rel.version > v1 and rel.cardinality == 0


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------

PREDICATES = [
    Comparison("key", "<", 20),
    Comparison("key", "=", 7),
    (Comparison("key", ">", 5) & Comparison("payload", "<", 90))
    | Comparison("key", "=", 0),
    ~Comparison("key", ">=", 30),
]


class TestSelection:
    @pytest.mark.parametrize("pred_index", range(len(PREDICATES)))
    def test_select(self, pred_index):
        predicate = PREDICATES[pred_index]

        def run(kwargs):
            counters = OperationCounters()
            rel = kv_relation("t", seeded_pairs(1, 123, 40))
            out = select(rel, predicate, counters, **kwargs)
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run))

    def test_select_prefix(self):
        schema = Schema(
            [Field("name", DataType.STRING), Field("n", DataType.INTEGER)]
        )
        rel = Relation("s", schema, 256)
        rng = random.Random(2)
        rel.extend_rows(
            [(rng.choice(["abc", "abd", "xyz", "ab"]), i) for i in range(50)]
        )

        def run(kwargs):
            counters = OperationCounters()
            out = select(rel, Prefix("name", "ab"), counters, **kwargs)
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run))


class TestProjection:
    @pytest.mark.parametrize("distinct", [False, True])
    @pytest.mark.parametrize("memory_pages", [None, 2])
    def test_hash_project(self, distinct, memory_pages):
        def run(kwargs):
            counters = OperationCounters()
            rel = kv_relation("t", seeded_pairs(3, 200, 25))
            out = hash_project(
                rel,
                ["key"],
                distinct=distinct,
                counters=counters,
                memory_pages=memory_pages,
                disk=SimulatedDisk(counters),
                **kwargs,
            )
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run))

    @pytest.mark.parametrize("distinct", [False, True])
    def test_sort_project(self, distinct):
        def run(kwargs):
            counters = OperationCounters()
            rel = kv_relation("t", seeded_pairs(4, 150, 30))
            out = sort_project(
                rel, ["key"], distinct=distinct, counters=counters, **kwargs
            )
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run))


AGGS = [
    AggregateSpec(AggregateFunction.COUNT),
    AggregateSpec(AggregateFunction.SUM, "payload"),
    AggregateSpec(AggregateFunction.MIN, "payload"),
    AggregateSpec(AggregateFunction.MAX, "payload"),
    AggregateSpec(AggregateFunction.AVG, "payload"),
]


class TestAggregation:
    @pytest.mark.parametrize("memory_pages", [None, 2])
    def test_hash_aggregate(self, memory_pages):
        def run(kwargs):
            counters = OperationCounters()
            rel = kv_relation("t", seeded_pairs(5, 300, 60))
            out = hash_aggregate(
                rel,
                ["key"],
                AGGS,
                counters=counters,
                memory_pages=memory_pages,
                disk=SimulatedDisk(counters),
                **kwargs,
            )
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run))

    def test_sort_aggregate(self):
        def run(kwargs):
            counters = OperationCounters()
            rel = kv_relation("t", seeded_pairs(6, 180, 23))
            out = sort_aggregate(rel, ["key"], AGGS, counters=counters, **kwargs)
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run))


class TestRelationalOperators:
    def test_cross_product(self):
        def run(kwargs):
            counters = OperationCounters()
            r = kv_relation("r", seeded_pairs(7, 23, 10))
            s = kv_relation("s", seeded_pairs(8, 17, 10), columns=("k2", "p2"))
            out = cross_product(r, s, counters, **kwargs)
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run))

    @pytest.mark.parametrize("distinct", [False, True])
    def test_union(self, distinct):
        def run(kwargs):
            counters = OperationCounters()
            a = kv_relation("a", seeded_pairs(9, 80, 15))
            b = kv_relation("b", seeded_pairs(10, 70, 15))
            out = union_(a, b, distinct=distinct, counters=counters, **kwargs)
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run, modes=ROW_MODES))

    def test_intersect(self):
        def run(kwargs):
            counters = OperationCounters()
            a = kv_relation("a", seeded_pairs(11, 90, 12))
            b = kv_relation("b", seeded_pairs(12, 85, 12))
            out = intersect(a, b, counters, **kwargs)
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run, modes=ROW_MODES))

    def test_difference(self):
        def run(kwargs):
            counters = OperationCounters()
            a = kv_relation("a", seeded_pairs(13, 90, 12))
            b = kv_relation("b", seeded_pairs(14, 40, 12))
            out = difference(a, b, counters, **kwargs)
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run, modes=ROW_MODES))

    def test_divide(self):
        schema = Schema(
            [Field("g", DataType.INTEGER), Field("x", DataType.INTEGER)]
        )
        rng = random.Random(15)
        r_rows = [(rng.randrange(8), rng.randrange(4)) for _ in range(120)]
        d_rows = [(v,) for v in (0, 1)]

        def run(kwargs):
            counters = OperationCounters()
            r = Relation("r", schema, PAGE_BYTES)
            r.extend_rows(r_rows)
            d = Relation(
                "d", Schema([Field("x", DataType.INTEGER)]), PAGE_BYTES
            )
            d.extend_rows(d_rows)
            out = divide(r, d, ["g"], ["x"], counters=counters, **kwargs)
            return list(out), counters.as_dict()

        assert_equivalent(run_modes(run))


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def join_spec(r, s, memory_pages):
    params = CostParameters(
        r_pages=max(1, min(r.page_count, s.page_count)),
        s_pages=max(1, max(r.page_count, s.page_count)),
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )
    return JoinSpec(
        r=r,
        s=s,
        r_field="key",
        s_field="skey",
        memory_pages=memory_pages,
        params=params,
    )


DATASETS = {
    "uniform": (seeded_pairs(20, 240, 80), seeded_pairs(21, 560, 80)),
    # Heavy skew: exercises hybrid's recursive overflow handling.
    "skewed": (
        [(1, i) for i in range(150)] + seeded_pairs(22, 90, 30),
        [(1, i) for i in range(80)] + seeded_pairs(23, 200, 30),
    ),
}


class TestJoinEquivalence:
    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    @pytest.mark.parametrize("memory_pages", [4, 16, 400])
    @pytest.mark.parametrize("name", sorted(ALL_JOINS))
    def test_batch_matches_tuple(self, name, memory_pages, dataset):
        r_pairs, s_pairs = DATASETS[dataset]

        def run(kwargs):
            algo = ALL_JOINS[name](**kwargs)
            r = kv_relation("r", r_pairs)
            s = kv_relation("s", s_pairs, columns=("skey", "spay"))
            result = algo.join(join_spec(r, s, memory_pages))
            return sorted(result.relation), result.counters.as_dict()

        try:
            runs = run_modes(run)
        except ValueError:
            pytest.skip("algorithm assumptions do not hold at this grant")
        assert_equivalent(runs, ordered=False)


class TestParallelDeterminism:
    """Worker pools must not change results or counted costs."""

    @pytest.mark.parametrize("algorithm", [GraceHashJoin, HybridHashJoin])
    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_workers_bit_identical(self, algorithm, dataset):
        r_pairs, s_pairs = DATASETS[dataset]

        def run(workers):
            algo = algorithm(batch=True, workers=workers)
            r = kv_relation("r", r_pairs)
            s = kv_relation("s", s_pairs, columns=("skey", "spay"))
            result = algo.join(join_spec(r, s, memory_pages=4))
            return list(result.relation), result.counters.as_dict()

        base_rows, base_counters = run(1)
        for workers in (2, 4):
            rows, counters = run(workers)
            assert rows == base_rows  # exact order, not just multiset
            assert counters == base_counters
