"""Tests for the paper's 'emp.name = "J*"' prefix query path."""

import pytest

from repro import DataType, MainMemoryDatabase
from repro.access.btree import BPlusTree
from repro.access.hash_index import HashIndex
from repro.operators.selection import Prefix, select, select_via_index
from repro.planner import Query
from repro.planner.plan import IndexScanNode
from repro.planner.planner import Planner
from repro.workload import employees_relation


@pytest.fixture
def emp():
    return employees_relation(400, seed=5)


class TestPrefixPredicate:
    def test_validation(self):
        with pytest.raises(ValueError):
            Prefix("name", "")

    def test_evaluate(self, emp):
        pred = Prefix("name", "J")
        matches = [row for row in emp if pred.evaluate(emp.schema, row)]
        assert matches
        assert all(row[1].startswith("J") for row in matches)

    def test_scan_select(self, emp):
        out = select(emp, Prefix("name", "Jo"))
        expected = [row for row in emp if row[1].startswith("Jo")]
        assert sorted(out) == sorted(expected)


class TestIndexedPrefix:
    def build_btree(self, emp):
        index = BPlusTree()
        for tid, row in emp.scan():
            index.insert(row[1], tid)
        return index

    def test_matches_scan(self, emp):
        index = self.build_btree(emp)
        via_index = sorted(select_via_index(emp, index, Prefix("name", "J")))
        via_scan = sorted(select(emp, Prefix("name", "J")))
        assert via_index == via_scan

    def test_narrow_prefix(self, emp):
        index = self.build_btree(emp)
        some_name = next(iter(emp))[1]
        out = select_via_index(emp, index, Prefix("name", some_name))
        assert all(row[1].startswith(some_name) for row in out)
        assert out.cardinality >= 1

    def test_hash_index_rejected(self, emp):
        index = HashIndex()
        for tid, row in emp.scan():
            index.insert(row[1], tid)
        with pytest.raises(ValueError):
            select_via_index(emp, index, Prefix("name", "J"))

    def test_prefix_scan_is_sequential_on_leaves(self, emp):
        """The Section 2 'case 2' claim: matching records live on few
        contiguous leaf pages."""
        index = self.build_btree(emp)
        low, high = Prefix("name", "J").range_bounds
        leaf_pages = list(index.scan_pages(low, high))
        matches = sum(1 for row in emp if row[1].startswith("J"))
        assert len(leaf_pages) <= max(2, matches)  # clustered, not 1/page


class TestPlannerIntegration:
    def test_planner_uses_btree_for_prefix(self, emp):
        db = MainMemoryDatabase()
        db.register_table(emp)
        db.create_index("emp", "name", kind="btree")
        db.analyze()
        planner = Planner(db.catalog)
        q = Query(tables=["emp"], predicates=[("emp", Prefix("name", "Jon"))])
        plan = planner.plan(q)
        assert isinstance(plan, IndexScanNode)
        result = plan.execute(planner.context())
        expected = [row for row in emp if row[1].startswith("Jon")]
        assert sorted(result) == sorted(expected)

    def test_planner_scans_without_ordered_index(self, emp):
        db = MainMemoryDatabase()
        db.register_table(emp)
        db.create_index("emp", "name", kind="hash")  # equality only
        db.analyze()
        planner = Planner(db.catalog)
        q = Query(tables=["emp"], predicates=[("emp", Prefix("name", "J"))])
        plan = planner.plan(q)
        assert not isinstance(plan, IndexScanNode)
        result = plan.execute(planner.context())
        assert all(row[1].startswith("J") for row in result)

    def test_prefix_selectivity_shrinks_with_length(self, emp):
        from repro.planner.selectivity import estimate_selectivity
        from repro.storage.catalog import RelationStats

        stats = RelationStats(cardinality=1000)
        s1 = estimate_selectivity(Prefix("name", "J"), stats)
        s2 = estimate_selectivity(Prefix("name", "Jon"), stats)
        assert 0 < s2 < s1 <= 1
