"""Tests for the footnote-1 paged binary tree."""

import random

import pytest

from repro.access.paged_binary import PagedBinaryTree


@pytest.fixture
def tree():
    return PagedBinaryTree(nodes_per_page=8)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            PagedBinaryTree(nodes_per_page=0)

    def test_insert_search(self, tree):
        for k in (5, 2, 8):
            tree.insert(k, k * 10)
        assert tree.search(2) == [20]
        assert tree.search(7) == []

    def test_duplicates(self, tree):
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.search(1) == ["a", "b"]
        assert tree.distinct_keys == 1

    def test_range_scan_sorted(self, tree):
        keys = list(range(50))
        random.Random(2).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.range_scan(10, 15)] == list(range(10, 16))


class TestDelete:
    def test_delete_leaf_and_internal(self, tree):
        for k in (5, 2, 8, 1, 3):
            tree.insert(k, k)
        assert tree.delete(1) == 1
        assert tree.delete(5) == 1  # two children
        assert sorted(k for k, _ in tree.range_scan()) == [2, 3, 8]

    def test_delete_root(self, tree):
        tree.insert(1, "a")
        assert tree.delete(1) == 1
        assert tree.search(1) == []

    def test_delete_missing(self, tree):
        assert tree.delete(5) == 0

    def test_delete_single_value(self, tree):
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.search(1) == ["b"]

    def test_random_delete_consistency(self, tree):
        keys = list(range(200))
        random.Random(7).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        for k in keys[:100]:
            assert tree.delete(k) == 1
        assert sorted(k for k, _ in tree.range_scan()) == sorted(keys[100:])


class TestPaging:
    def test_page_clustering_beats_avl(self):
        """The footnote's point: consecutive path nodes often share a page,
        so a lookup touches far fewer pages than nodes."""
        tree = PagedBinaryTree(nodes_per_page=16)
        keys = list(range(2000))
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        depth_pages = [len(tree.path_pages(k)) for k in range(0, 2000, 53)]
        mean_pages = sum(depth_pages) / len(depth_pages)
        # An AVL tree would touch ~log2(2000) ~ 11 pages.
        assert mean_pages < 9

    def test_page_count_bounded(self):
        tree = PagedBinaryTree(nodes_per_page=16)
        for k in range(160):
            tree.insert(k, k)
        assert tree.page_count >= 160 // 16
        # Sequential insert chains right: new page whenever parent page
        # fills.
        assert tree.page_count <= 160

    def test_unbalanced_worst_case(self):
        """The footnote's caveat: "paged binary trees are not balanced and
        the worst case access time may be significantly poorer"."""
        tree = PagedBinaryTree(nodes_per_page=8)
        for k in range(256):  # sorted insertion: a right spine
            tree.insert(k, k)
        assert tree.height() == 256
