"""Tests for the AVL tree, including hypothesis invariant checks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.avl import AVLTree
from repro.cost.counters import OperationCounters


@pytest.fixture
def tree():
    return AVLTree()


class TestBasics:
    def test_empty(self, tree):
        assert len(tree) == 0
        assert tree.search(1) == []
        assert tree.height == 0
        assert tree.minimum() is None and tree.maximum() is None

    def test_insert_and_search(self, tree):
        tree.insert(5, "a")
        tree.insert(3, "b")
        tree.insert(8, "c")
        assert tree.search(3) == ["b"]
        assert tree.search(9) == []
        assert len(tree) == 3
        assert tree.distinct_keys == 3

    def test_duplicate_keys_accumulate(self, tree):
        tree.insert(1, "x")
        tree.insert(1, "y")
        assert tree.search(1) == ["x", "y"]
        assert len(tree) == 2
        assert tree.distinct_keys == 1

    def test_min_max(self, tree):
        for k in (5, 1, 9, 3):
            tree.insert(k, k)
        assert tree.minimum() == 1
        assert tree.maximum() == 9

    def test_contains(self, tree):
        tree.insert(2, "v")
        assert tree.contains(2)
        assert not tree.contains(3)


class TestBalance:
    def test_sorted_insertion_stays_logarithmic(self, tree):
        n = 1024
        for k in range(n):
            tree.insert(k, k)
        # A plain BST would have height 1024; AVL stays ~1.44*log2(n).
        assert tree.height <= 15
        tree.check_invariants()

    def test_random_insertion_invariants(self, tree):
        rng = random.Random(5)
        for _ in range(500):
            tree.insert(rng.randrange(200), 0)
        tree.check_invariants()

    def test_search_path_length_matches_knuth(self, tree):
        """The Section 2 model assumes ~log2(n)+0.25 comparisons -- path
        lengths (pages touched) should track log2(n)."""
        import math

        n = 2000
        keys = list(range(n))
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        lengths = [len(tree.path_pages(k)) for k in range(0, n, 37)]
        mean = sum(lengths) / len(lengths)
        assert abs(mean - math.log2(n)) < 2.0


class TestDelete:
    def test_delete_leaf(self, tree):
        for k in (2, 1, 3):
            tree.insert(k, k)
        assert tree.delete(3) == 1
        assert tree.search(3) == []
        tree.check_invariants()

    def test_delete_internal_with_two_children(self, tree):
        for k in (5, 2, 8, 1, 3, 7, 9):
            tree.insert(k, k)
        assert tree.delete(5) == 1
        assert tree.search(5) == []
        assert sorted(k for k, _ in tree.items()) == [1, 2, 3, 7, 8, 9]
        tree.check_invariants()

    def test_delete_single_value_of_duplicates(self, tree):
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.search(1) == ["b"]
        assert tree.distinct_keys == 1

    def test_delete_all_values_of_key(self, tree):
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1) == 2
        assert tree.distinct_keys == 0

    def test_delete_missing(self, tree):
        tree.insert(1, "a")
        assert tree.delete(99) == 0
        assert tree.delete(1, "zz") == 0
        assert len(tree) == 1

    def test_mass_delete_keeps_invariants(self, tree):
        keys = list(range(300))
        random.Random(2).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        random.Random(3).shuffle(keys)
        for k in keys[:150]:
            assert tree.delete(k) == 1
        tree.check_invariants()
        remaining = sorted(k for k, _ in tree.items())
        assert remaining == sorted(keys[150:])


class TestRangeScan:
    def test_full_scan_in_order(self, tree):
        keys = [9, 1, 7, 3, 5]
        for k in keys:
            tree.insert(k, k * 10)
        assert [k for k, _ in tree.range_scan()] == sorted(keys)

    def test_bounded_scan(self, tree):
        for k in range(20):
            tree.insert(k, k)
        got = [k for k, _ in tree.range_scan(5, 9)]
        assert got == [5, 6, 7, 8, 9]

    def test_scan_with_duplicates(self, tree):
        tree.insert(1, "a")
        tree.insert(1, "b")
        tree.insert(2, "c")
        assert list(tree.range_scan()) == [(1, "a"), (1, "b"), (2, "c")]

    def test_open_ended_scans(self, tree):
        for k in range(10):
            tree.insert(k, k)
        assert [k for k, _ in tree.range_scan(low=7)] == [7, 8, 9]
        assert [k for k, _ in tree.range_scan(high=2)] == [0, 1, 2]


class TestCounters:
    def test_search_charges_comparisons(self):
        counters = OperationCounters()
        tree = AVLTree(counters)
        for k in range(100):
            tree.insert(k, k)
        before = counters.comparisons
        tree.search(50)
        # ~log2(100) node visits, up to 2 comparisons each.
        assert 1 <= counters.comparisons - before <= 20


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-1000, 1000)))
def test_property_matches_sorted_reference(keys):
    """The tree agrees with a sorted-list reference under any insertions."""
    tree = AVLTree()
    for k in keys:
        tree.insert(k, k)
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == sorted(keys)
    assert len(tree) == len(keys)
    assert tree.distinct_keys == len(set(keys))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 50), min_size=1),
    st.lists(st.integers(0, 50)),
)
def test_property_delete_matches_multiset(inserts, deletes):
    """Deletes agree with multiset semantics and keep the tree balanced."""
    from collections import Counter

    tree = AVLTree()
    reference = Counter()
    for k in inserts:
        tree.insert(k, k)
        reference[k] += 1
    for k in deletes:
        removed = tree.delete(k, k) if reference[k] else tree.delete(k, k)
        if reference[k]:
            assert removed == 1
            reference[k] -= 1
        else:
            assert removed == 0
    tree.check_invariants()
    expected = sorted(
        k for k, count in reference.items() for _ in range(count)
    )
    assert sorted(k for k, _ in tree.items()) == expected
