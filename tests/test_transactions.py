"""Tests for the transaction engine."""

import pytest

from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.state import DatabaseState
from repro.recovery.transactions import TransactionEngine, TransactionState
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def setup():
    clock = SimulatedClock()
    queue = EventQueue(clock)
    state = DatabaseState(n_records=100, records_per_page=16, initial_value=10)
    lm = LogManager(queue, policy=CommitPolicy.GROUP)
    engine = TransactionEngine(state, queue, lm)
    return queue, state, lm, engine


def finish(queue, lm):
    lm.flush()
    queue.run_to_completion()


class TestExecution:
    def test_simple_write(self, setup):
        queue, state, lm, engine = setup
        txn = engine.submit([("write", 0, 99)])
        finish(queue, lm)
        assert txn.state is TransactionState.COMMITTED
        assert state.read(0) == 99

    def test_read_collects_values(self, setup):
        queue, state, lm, engine = setup
        txn = engine.submit([("read", 3), ("read", 5)])
        finish(queue, lm)
        assert txn.reads == {3: 10, 5: 10}

    def test_callable_write_sees_current_value(self, setup):
        queue, state, lm, engine = setup
        engine.submit([("write", 0, lambda v: v + 5)])
        engine.submit([("write", 0, lambda v: v * 2)])
        finish(queue, lm)
        assert state.read(0) == 30

    def test_unknown_operation_rejected(self, setup):
        queue, state, lm, engine = setup
        with pytest.raises(ValueError):
            engine.submit([("frobnicate", 0)])

    def test_commit_latency_recorded(self, setup):
        queue, state, lm, engine = setup
        txn = engine.submit([("write", 0, 1)])
        finish(queue, lm)
        assert txn.latency == pytest.approx(0.010)  # one page write

    def test_throughput_helper(self, setup):
        queue, state, lm, engine = setup
        for i in range(4):
            engine.submit([("write", i, 1)])
        finish(queue, lm)
        assert engine.throughput(2.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            engine.throughput(0)


class TestLockingAndWaits:
    def test_conflicting_writer_waits_until_precommit(self, setup):
        queue, state, lm, engine = setup
        # t1 holds record 0 until it finishes its (single-step) script,
        # so t2, submitted inside the same instant, must queue.
        t1 = engine.submit([("write", 0, 1), ("write", 1, 1)])
        assert t1.state is TransactionState.PRECOMMITTED
        t2 = engine.submit([("write", 0, 2)])
        # t1 already pre-committed, so t2 was granted with a dependency.
        assert t2.state is TransactionState.PRECOMMITTED
        assert 1 in t2.dependencies
        finish(queue, lm)
        assert state.read(0) == 2

    def test_waiting_state_while_blocked(self, setup):
        queue, state, lm, engine = setup

        # Build a real wait: t1 is *kept active* by submitting it as two
        # events; simplest is to block t2 behind an uncommitted t1 that
        # still holds its lock because its script has not finished.  The
        # engine runs scripts to completion synchronously, so instead we
        # emulate contention through the lock table directly.
        from repro.recovery.lock_table import LockMode

        engine.locks.acquire(999, 0, LockMode.EXCLUSIVE)  # external holder
        t2 = engine.submit([("write", 0, 2)])
        assert t2.state is TransactionState.WAITING
        # Holder releases via precommit; waiter resumes and pre-commits.
        notices = engine.locks.precommit(999)
        engine._resume_granted(notices)
        assert t2.state is TransactionState.PRECOMMITTED
        assert 999 in t2.dependencies
        finish(queue, lm)
        assert state.read(0) == 2

    def test_dependent_commits_after_dependency(self, setup):
        queue, state, lm, engine = setup
        t1 = engine.submit([("write", 0, 1)])
        t2 = engine.submit([("write", 0, 2)])
        finish(queue, lm)
        assert t1.committed_at <= t2.committed_at

    def test_shared_readers_do_not_conflict(self, setup):
        queue, state, lm, engine = setup
        t1 = engine.submit([("read", 0)])
        t2 = engine.submit([("read", 0)])
        assert t1.state is TransactionState.PRECOMMITTED
        assert t2.state is TransactionState.PRECOMMITTED


class TestAbort:
    def test_abort_restores_values(self, setup):
        queue, state, lm, engine = setup
        from repro.recovery.lock_table import LockMode

        # Block the transaction mid-script so it stays active.
        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        txn = engine.submit([("write", 0, 77), ("write", 5, 1)])
        assert txn.state is TransactionState.WAITING
        assert state.read(0) == 77  # first write applied
        engine.abort(txn)
        assert state.read(0) == 10  # rolled back
        assert txn.state is TransactionState.ABORTED

    def test_abort_after_precommit_rejected(self, setup):
        queue, state, lm, engine = setup
        txn = engine.submit([("write", 0, 1)])
        with pytest.raises(ValueError):
            engine.abort(txn)

    def test_abort_releases_locks(self, setup):
        queue, state, lm, engine = setup
        from repro.recovery.lock_table import LockMode

        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        txn = engine.submit([("write", 0, 77), ("write", 5, 1)])
        engine.abort(txn)
        t2 = engine.submit([("write", 0, 3)])
        assert t2.state is TransactionState.PRECOMMITTED
        finish(queue, lm)
        assert state.read(0) == 3


class TestDirtyPageTable:
    def test_first_update_recorded(self, setup):
        queue, state, lm, engine = setup
        engine.submit([("write", 0, 1)])
        engine.submit([("write", 1, 2)])  # same page (16 records/page)
        table = engine.dirty_table.first_update_lsn
        assert list(table.keys()) == [0]
        assert table[0] <= 2

    def test_pages_tracked_separately(self, setup):
        queue, state, lm, engine = setup
        engine.submit([("write", 0, 1)])
        engine.submit([("write", 50, 2)])  # page 3
        assert set(engine.dirty_table.first_update_lsn) == {0, 3}


class TestScheduling:
    def test_submit_at_delays(self, setup):
        queue, state, lm, engine = setup
        engine.submit_at(0.5, [("write", 0, 9)])
        queue.run_until(1.0)
        lm.flush()
        queue.run_to_completion()
        assert state.read(0) == 9
        assert engine.committed[0].started_at == pytest.approx(0.5)

    def test_mean_commit_latency(self, setup):
        queue, state, lm, engine = setup
        for i in range(3):
            engine.submit([("write", i, 1)])
        finish(queue, lm)
        assert engine.mean_commit_latency() > 0
