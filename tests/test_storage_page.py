"""Tests for the slotted page."""

import pytest

from repro.storage.page import Page
from repro.storage.tuples import DataType, make_schema


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Page(0, 0)


def test_for_schema_sizing():
    schema = make_schema(("a", DataType.INTEGER), ("b", DataType.INTEGER))
    page = Page.for_schema(3, schema, 64)
    assert page.capacity == 8
    assert page.page_id == 3


def test_add_until_full():
    page = Page(0, 2)
    assert page.add((1,)) == 0
    assert page.add((2,)) == 1
    assert page.is_full
    with pytest.raises(OverflowError):
        page.add((3,))


def test_add_marks_dirty():
    page = Page(0, 4)
    assert not page.dirty
    page.add((1,))
    assert page.dirty


def test_iteration_and_indexing():
    page = Page(0, 4)
    page.add(("a",))
    page.add(("b",))
    assert list(page) == [("a",), ("b",)]
    assert page[1] == ("b",)
    assert len(page) == 2
    assert page.free_slots == 2


def test_replace_returns_old():
    page = Page(0, 2)
    page.add((1,))
    old = page.replace(0, (9,))
    assert old == (1,)
    assert page[0] == (9,)


def test_remove_slot_shifts():
    page = Page(0, 4)
    for v in range(3):
        page.add((v,))
    removed = page.remove_slot(0)
    assert removed == (0,)
    assert list(page) == [(1,), (2,)]


def test_clear():
    page = Page(0, 4)
    page.add((1,))
    page.clear()
    assert page.is_empty
    assert len(page) == 0


def test_copy_is_independent():
    page = Page(0, 4)
    page.add((1,))
    clone = page.copy()
    page.add((2,))
    assert len(clone) == 1
    assert len(page) == 2
    assert clone.page_id == page.page_id
