"""Tests for checkpointing, crash, and restart recovery -- the Section 5
correctness core.  The oracle: recovery must reproduce exactly the state
obtained by replaying every durably-committed transaction in LSN order.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery.checkpoint import Checkpointer
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.restart import crash, recover, replay_committed
from repro.recovery.state import DatabaseState, DiskSnapshot
from repro.recovery.stable_memory import StableMemory
from repro.recovery.transactions import TransactionEngine
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue
from repro.workload.banking import BankingWorkload


def build_engine(policy=CommitPolicy.GROUP, devices=1, n_records=200,
                 records_per_page=16, initial=100, compress=False):
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(n_records, records_per_page, initial_value=initial)
    stable = StableMemory(4 * 1024 * 1024) if policy is CommitPolicy.STABLE else None
    lm = LogManager(queue, policy=policy, devices=devices, stable=stable,
                    compress=compress)
    engine = TransactionEngine(state, queue, lm)
    return queue, state, lm, engine


def run_banking(engine, queue, horizon, arrival=0.002, seed=5,
                n_accounts=200):
    bank = BankingWorkload(n_accounts, seed=seed)
    t = 0.0
    while t < horizon:
        script, _ = bank.next_script()
        engine.submit_at(t, script)
        t += arrival
    queue.run_until(horizon)


class TestCheckpointer:
    def test_sweep_copies_dirty_pages(self):
        queue, state, lm, engine = build_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=0.1)
        engine.submit([("write", 0, 1)])
        engine.submit([("write", 50, 2)])
        lm.flush()
        queue.run_until(0.05)  # log durable
        ck.checkpoint_now()
        queue.run_until(1.0)
        assert snap.page_count == 2

    def test_wal_rule_defers_install_until_log_durable(self):
        queue, state, lm, engine = build_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=0.1)
        engine.submit([("write", 0, 1)])
        # Log record still buffered: the sweep dispatches the copy but
        # forces the log, and the install waits for durability.
        assert ck.checkpoint_now() == 1
        queue.run_until(0.005)
        assert snap.page_count == 0  # before the log page lands: nothing
        queue.run_until(1.0)
        assert snap.page_count == 1
        assert lm.durable_lsn_horizon() >= snap.pages[0].page_lsn

    def test_periodic_sweeps(self):
        queue, state, lm, engine = build_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=0.2)
        ck.start()
        run_banking(engine, queue, horizon=1.0)
        assert ck.sweeps >= 4

    def test_validation(self):
        queue, state, lm, engine = build_engine()
        with pytest.raises(ValueError):
            Checkpointer(engine, DiskSnapshot(), interval=0)

    def test_stop_halts_sweeping(self):
        queue, state, lm, engine = build_engine()
        ck = Checkpointer(engine, DiskSnapshot(), interval=0.1)
        ck.start()
        ck.stop()
        queue.run_until(1.0)
        assert ck.sweeps == 0


class TestCrashCapture:
    def test_volatile_state_excluded(self):
        queue, state, lm, engine = build_engine()
        engine.submit([("write", 0, 42)])
        # No flush: the update is only in the volatile log buffer.
        cs = crash(engine)
        assert cs.durable_log == []
        assert cs.committed_tids == set()

    def test_durable_log_included(self):
        queue, state, lm, engine = build_engine()
        engine.submit([("write", 0, 42)])
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        assert 1 in cs.committed_tids

    def test_in_flight_checkpoint_bounds_merged(self):
        queue, state, lm, engine = build_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=10.0)
        engine.submit([("write", 0, 42)])
        lm.flush()
        queue.run_to_completion()
        ck.checkpoint_now()  # dispatched, never installed (no queue run)
        cs = crash(engine, ck)
        assert 0 in cs.dirty_first_lsn


class TestRecoveryBasics:
    def test_recovers_committed_update(self):
        queue, state, lm, engine = build_engine()
        engine.submit([("write", 0, 42)])
        lm.flush()
        queue.run_to_completion()
        out = recover(crash(engine), initial_value=100)
        assert out.state.read(0) == 42

    def test_uncommitted_update_discarded(self):
        queue, state, lm, engine = build_engine()
        engine.submit([("write", 0, 42)])  # commit record never durable
        out = recover(crash(engine), initial_value=100)
        assert out.state.read(0) == 100

    def test_snapshot_shortens_redo(self):
        queue, state, lm, engine = build_engine()
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=0.05)
        ck.start()
        run_banking(engine, queue, horizon=1.0)
        lm.flush()
        # A started checkpointer reschedules itself forever, so settle the
        # log and the final sweep with bounded runs instead of draining.
        queue.run_until(queue.clock.now + 1.0)
        ck.checkpoint_now()
        queue.run_until(queue.clock.now + 60)
        cs = crash(engine, ck)
        with_table = recover(cs, initial_value=100)
        without_table = recover(cs, initial_value=100, use_dirty_page_table=False)
        assert with_table.state.values == without_table.state.values
        assert with_table.log_records_scanned <= without_table.log_records_scanned

    def test_recovery_time_components(self):
        queue, state, lm, engine = build_engine()
        run_banking(engine, queue, horizon=0.5)
        lm.flush()
        queue.run_to_completion()
        out = recover(crash(engine), initial_value=100)
        assert out.seconds > 0
        assert out.pages_reloaded == 0  # never checkpointed


class TestRecoveryOracle:
    @pytest.mark.parametrize("policy,devices,compress", [
        (CommitPolicy.CONVENTIONAL, 1, False),
        (CommitPolicy.GROUP, 1, False),
        (CommitPolicy.GROUP, 3, False),
        (CommitPolicy.STABLE, 1, False),
        (CommitPolicy.STABLE, 1, True),
    ])
    def test_matches_replay_oracle(self, policy, devices, compress):
        queue, state, lm, engine = build_engine(
            policy=policy, devices=devices, compress=compress
        )
        snap = DiskSnapshot()
        ck = Checkpointer(engine, snap, interval=0.13)
        ck.start()
        run_banking(engine, queue, horizon=1.5, arrival=0.001)
        cs = crash(engine, ck)
        out = recover(cs, initial_value=100)
        oracle = replay_committed(cs, initial_value=100)
        assert out.state.values == oracle.values

    def test_crash_at_many_points_always_consistent(self):
        """Crash at several horizons: the recovered bank always balances
        (transfers conserve money; only committed deposits add)."""
        for horizon in (0.05, 0.21, 0.48, 0.97, 1.33):
            queue, state, lm, engine = build_engine()
            snap = DiskSnapshot()
            ck = Checkpointer(engine, snap, interval=0.09)
            ck.start()
            bank = BankingWorkload(200, transfer_fraction=1.0,
                                   deposit_fraction=0.0, seed=8)
            t = 0.0
            while t < horizon:
                script, _ = bank.next_script()
                engine.submit_at(t, script)
                t += 0.0015
            queue.run_until(horizon)
            cs = crash(engine, ck)
            out = recover(cs, initial_value=100)
            assert out.state.total_balance() == 200 * 100, horizon
            oracle = replay_committed(cs, initial_value=100)
            assert out.state.values == oracle.values


class TestAbortRecovery:
    def test_durably_aborted_txn_nets_to_identity(self):
        queue, state, lm, engine = build_engine()
        from repro.recovery.lock_table import LockMode

        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        txn = engine.submit([("write", 0, 77), ("write", 5, 1)])
        engine.abort(txn)
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        assert txn.tid in cs.resolved_abort_tids
        out = recover(cs, initial_value=100)
        assert out.state.read(0) == 100

    def test_committed_after_abort_on_same_record(self):
        queue, state, lm, engine = build_engine()
        from repro.recovery.lock_table import LockMode

        engine.locks.acquire(999, 5, LockMode.EXCLUSIVE)
        victim = engine.submit([("write", 0, 77), ("write", 5, 1)])
        engine.abort(victim)
        winner = engine.submit([("write", 0, 55)])
        lm.flush()
        queue.run_to_completion()
        cs = crash(engine)
        out = recover(cs, initial_value=100)
        assert out.state.read(0) == 55


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    horizon=st.floats(0.02, 0.8),
    interval=st.floats(0.03, 0.3),
    policy=st.sampled_from([CommitPolicy.CONVENTIONAL, CommitPolicy.GROUP,
                            CommitPolicy.STABLE]),
    devices=st.integers(1, 3),
)
def test_property_recovery_equals_oracle(seed, horizon, interval, policy,
                                         devices):
    """For arbitrary workloads, crash points, checkpoint cadences, commit
    policies, and device counts: recovery == replay-committed oracle."""
    if policy is CommitPolicy.STABLE:
        devices = 1
    queue, state, lm, engine = build_engine(policy=policy, devices=devices,
                                            n_records=80)
    snap = DiskSnapshot()
    ck = Checkpointer(engine, snap, interval=interval)
    ck.start()
    bank = BankingWorkload(80, seed=seed)
    t = 0.0
    while t < horizon:
        script, _ = bank.next_script()
        engine.submit_at(t, script)
        t += 0.002
    queue.run_until(horizon)
    cs = crash(engine, ck)
    out = recover(cs, initial_value=100)
    oracle = replay_committed(cs, initial_value=100)
    assert out.state.values == oracle.values
