"""Tests for the buffer pool, including the Section 2 fault-rate model."""

import random

import pytest

from repro.storage.buffer import BufferPool, ReplacementPolicy


class TestBasics:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_first_access_faults(self):
        pool = BufferPool(4)
        assert pool.access("p1") is False
        assert pool.faults == 1

    def test_second_access_hits(self):
        pool = BufferPool(4)
        pool.access("p1")
        assert pool.access("p1") is True
        assert pool.hits == 1

    def test_eviction_at_capacity(self):
        pool = BufferPool(2, policy=ReplacementPolicy.FIFO)
        pool.access("a")
        pool.access("b")
        pool.access("c")  # evicts "a" (FIFO)
        assert pool.resident == 2
        assert not pool.contains("a")
        assert pool.contains("b") and pool.contains("c")

    def test_fault_rate(self):
        pool = BufferPool(10)
        for _ in range(2):
            for p in range(5):
                pool.access(p)
        assert pool.fault_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        pool = BufferPool(2)
        pool.access("a")
        pool.reset_stats()
        assert pool.accesses == 0

    def test_on_fault_callback(self):
        faults = []
        pool = BufferPool(2, on_fault=faults.append)
        pool.access("a")
        pool.access("a")
        pool.access("b")
        assert faults == ["a", "b"]


class TestPolicies:
    def test_lru_refreshes_recency(self):
        pool = BufferPool(2, policy=ReplacementPolicy.LRU)
        pool.access("a")
        pool.access("b")
        pool.access("a")  # refresh a
        pool.access("c")  # evicts b (LRU), not a
        assert pool.contains("a")
        assert not pool.contains("b")

    def test_fifo_ignores_recency(self):
        pool = BufferPool(2, policy=ReplacementPolicy.FIFO)
        pool.access("a")
        pool.access("b")
        pool.access("a")  # hit, but FIFO order unchanged
        pool.access("c")  # evicts a (oldest insertion)
        assert not pool.contains("a")
        assert pool.contains("b")

    def test_random_is_seeded(self):
        def run(seed):
            pool = BufferPool(3, policy=ReplacementPolicy.RANDOM, seed=seed)
            for p in range(100):
                pool.access(p % 7)
            return pool.faults

        assert run(1) == run(1)


class TestSectionTwoFaultModel:
    def test_random_replacement_matches_closed_form(self):
        """Section 2's model: uniform access to S pages through |M| frames
        with random replacement faults at ~(1 - |M|/S)."""
        total_pages = 200
        memory = 80
        pool = BufferPool(memory, policy=ReplacementPolicy.RANDOM, seed=9)
        rng = random.Random(4)
        # warm up
        for _ in range(5000):
            pool.access(rng.randrange(total_pages))
        pool.reset_stats()
        for _ in range(20000):
            pool.access(rng.randrange(total_pages))
        predicted = 1 - memory / total_pages
        assert pool.fault_rate == pytest.approx(predicted, abs=0.03)

    def test_no_faults_when_everything_fits(self):
        pool = BufferPool(100)
        for _ in range(3):
            for p in range(50):
                pool.access(p)
        assert pool.faults == 50  # only the cold misses


class TestDirtyTracking:
    def test_dirty_pages_listed(self):
        pool = BufferPool(4)
        pool.access("a", dirty=True)
        pool.access("b")
        assert pool.dirty_pages() == ["a"]

    def test_dirty_sticks_across_clean_access(self):
        pool = BufferPool(4)
        pool.access("a", dirty=True)
        pool.access("a", dirty=False)
        assert pool.dirty_pages() == ["a"]

    def test_mark_clean(self):
        pool = BufferPool(4)
        pool.access("a", dirty=True)
        pool.mark_clean("a")
        assert pool.dirty_pages() == []

    def test_pin_all_does_not_count(self):
        pool = BufferPool(4)
        pool.pin_all(["a", "b"])
        assert pool.accesses == 0
        assert pool.resident == 2
        assert pool.access("a") is True
