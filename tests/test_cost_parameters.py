"""Tests for the Table 2 / Table 3 parameter records."""

import pytest

from repro.cost.parameters import (
    TABLE2_DEFAULTS,
    TABLE3_RANGES,
    CostParameters,
    table3_grid,
    table3_sample,
)


class TestTable2Defaults:
    def test_exact_paper_values(self):
        p = TABLE2_DEFAULTS
        assert p.comp == pytest.approx(3e-6)
        assert p.hash == pytest.approx(9e-6)
        assert p.move == pytest.approx(20e-6)
        assert p.swap == pytest.approx(60e-6)
        assert p.io_seq == pytest.approx(10e-3)
        assert p.io_rand == pytest.approx(25e-3)
        assert p.fudge == pytest.approx(1.2)
        assert p.r_pages == 10_000
        assert p.s_pages == 10_000

    def test_tuple_counts(self):
        # 40 tuples/page x 10,000 pages = 400,000 tuples per relation.
        assert TABLE2_DEFAULTS.r_tuples == 400_000
        assert TABLE2_DEFAULTS.s_tuples == 400_000

    def test_minimum_memory_is_sqrt_sf(self):
        # sqrt(10000 * 1.2) ~ 109.5 -> 110
        assert TABLE2_DEFAULTS.minimum_memory_pages == 110


class TestValidation:
    def test_r_larger_than_s_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(r_pages=200, s_pages=100)

    def test_fudge_below_one_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(fudge=0.9)

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(comp=0.0)
        with pytest.raises(ValueError):
            CostParameters(io_seq=-1.0)

    def test_zero_density_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(r_tuples_per_page=0)


class TestMemoryRatio:
    def test_ratio_one_is_r_times_f(self):
        assert TABLE2_DEFAULTS.memory_for_ratio(1.0) == 12_000

    def test_ratio_half(self):
        assert TABLE2_DEFAULTS.memory_for_ratio(0.5) == 6_000

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(ValueError):
            TABLE2_DEFAULTS.memory_for_ratio(0.0)

    def test_tiny_ratio_floors_at_one_page(self):
        small = CostParameters(r_pages=1, s_pages=1)
        assert small.memory_for_ratio(1e-9) == 1


class TestWithUpdates:
    def test_returns_modified_copy(self):
        p = TABLE2_DEFAULTS.with_updates(comp=5e-6)
        assert p.comp == pytest.approx(5e-6)
        assert TABLE2_DEFAULTS.comp == pytest.approx(3e-6)

    def test_validation_applies_to_copies(self):
        with pytest.raises(ValueError):
            TABLE2_DEFAULTS.with_updates(r_pages=999_999)


class TestTable3:
    def test_ranges_match_paper(self):
        assert TABLE3_RANGES["comp"] == pytest.approx((1e-6, 10e-6))
        assert TABLE3_RANGES["hash"] == pytest.approx((2e-6, 50e-6))
        assert TABLE3_RANGES["io_rand"] == pytest.approx((15e-3, 35e-3))
        assert TABLE3_RANGES["s_pages"] == (10_000, 200_000)

    def test_grid_corner_count(self):
        # 8 swept axes at 2 points each.
        corners = list(table3_grid(points_per_axis=2))
        assert len(corners) == 2 ** 8

    def test_grid_points_are_valid(self):
        for params in table3_grid(points_per_axis=2):
            assert params.r_pages <= params.s_pages
            assert params.io_rand >= params.io_seq
            assert params.swap >= params.comp

    def test_grid_needs_two_points(self):
        with pytest.raises(ValueError):
            list(table3_grid(points_per_axis=1))

    def test_sample_is_reproducible(self):
        a = table3_sample(10, seed=7)
        b = table3_sample(10, seed=7)
        assert a == b

    def test_sample_within_ranges(self):
        for params in table3_sample(25):
            lo, hi = TABLE3_RANGES["comp"]
            assert lo <= params.comp <= hi
            assert params.r_pages <= params.s_pages
