"""Tests for log records and the paper's byte sizing."""

import pytest

from repro.recovery.records import (
    DEFAULT_SIZING,
    AbortRecord,
    BeginRecord,
    CommitRecord,
    RecordSizing,
    UpdateRecord,
)


class TestSizing:
    def test_update_record_size(self):
        assert DEFAULT_SIZING.update_bytes == 24 + 120

    def test_compressed_drops_one_image(self):
        assert DEFAULT_SIZING.compressed_update_bytes == 24 + 60
        saving = DEFAULT_SIZING.update_bytes - DEFAULT_SIZING.compressed_update_bytes
        # "approximately half of the size of the log stores the old values"
        assert saving == 60

    def test_typical_transaction_near_400_bytes(self):
        """Section 5.1: a typical transaction writes ~400 bytes of log."""
        total = DEFAULT_SIZING.typical_transaction_bytes(updates=3)
        assert 350 <= total <= 500

    def test_ten_typical_transactions_fit_one_page(self):
        """The arithmetic behind 1000 tps group commit: ~10 transactions
        per 4096-byte log page."""
        per_txn = DEFAULT_SIZING.typical_transaction_bytes(updates=3)
        assert 8 <= DEFAULT_SIZING.page_bytes // per_txn <= 12


class TestRecordSizes:
    def test_sizes_dispatch_by_type(self):
        s = DEFAULT_SIZING
        assert BeginRecord(tid=1).size(s) == s.begin_bytes
        assert CommitRecord(tid=1).size(s) == s.commit_bytes
        assert AbortRecord(tid=1).size(s) == s.abort_bytes
        assert UpdateRecord(tid=1, record_id=0).size(s) == s.update_bytes

    def test_compressed_size(self):
        rec = UpdateRecord(tid=1, record_id=0, old_value=1, new_value=2)
        assert rec.compressed_size(DEFAULT_SIZING) == 84

    def test_base_record_size_abstract(self):
        from repro.recovery.records import LogRecord

        with pytest.raises(NotImplementedError):
            LogRecord(tid=1).size(DEFAULT_SIZING)

    def test_lsn_defaults_unassigned(self):
        assert BeginRecord(tid=1).lsn == -1

    def test_update_carries_images(self):
        rec = UpdateRecord(tid=3, record_id=17, old_value="a", new_value="b")
        assert (rec.tid, rec.record_id) == (3, 17)
        assert (rec.old_value, rec.new_value) == ("a", "b")


def test_custom_sizing():
    sizing = RecordSizing(value_bytes=100, page_bytes=8192)
    assert sizing.update_bytes == 224
    assert UpdateRecord(tid=1).size(sizing) == 224
