"""Tests for the three-set lock table of Section 5.2."""

import pytest

from repro.recovery.lock_table import LockMode, LockTable


@pytest.fixture
def table():
    return LockTable()


class TestModes:
    def test_shared_compatible_with_shared(self):
        assert LockMode.SHARED.compatible(LockMode.SHARED)

    def test_exclusive_incompatible(self):
        assert not LockMode.EXCLUSIVE.compatible(LockMode.SHARED)
        assert not LockMode.SHARED.compatible(LockMode.EXCLUSIVE)
        assert not LockMode.EXCLUSIVE.compatible(LockMode.EXCLUSIVE)


class TestAcquire:
    def test_free_grant(self, table):
        grant = table.acquire(1, "x", LockMode.EXCLUSIVE)
        assert grant.granted
        assert grant.dependencies == ()
        assert table.holders("x") == {1: LockMode.EXCLUSIVE}

    def test_shared_sharing(self, table):
        assert table.acquire(1, "x", LockMode.SHARED).granted
        assert table.acquire(2, "x", LockMode.SHARED).granted
        assert len(table.holders("x")) == 2

    def test_exclusive_blocks(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        assert not table.acquire(2, "x", LockMode.EXCLUSIVE).granted
        assert table.waiters("x") == [(2, LockMode.EXCLUSIVE)]

    def test_reacquire_held_lock(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        assert table.acquire(1, "x", LockMode.SHARED).granted  # X covers S
        assert table.acquire(1, "x", LockMode.EXCLUSIVE).granted

    def test_upgrade_when_sole_holder(self, table):
        table.acquire(1, "x", LockMode.SHARED)
        assert table.acquire(1, "x", LockMode.EXCLUSIVE).granted
        assert table.holders("x") == {1: LockMode.EXCLUSIVE}

    def test_upgrade_blocked_by_other_sharers(self, table):
        table.acquire(1, "x", LockMode.SHARED)
        table.acquire(2, "x", LockMode.SHARED)
        assert not table.acquire(1, "x", LockMode.EXCLUSIVE).granted

    def test_fifo_no_barging(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.acquire(2, "x", LockMode.EXCLUSIVE)  # waits
        # A shared request behind an exclusive waiter must queue too.
        assert not table.acquire(3, "x", LockMode.SHARED).granted
        assert [t for t, _ in table.waiters("x")] == [2, 3]


class TestPrecommit:
    def test_precommit_moves_to_third_set(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.precommit(1)
        assert table.holders("x") == {}
        assert table.precommitted("x") == {1}

    def test_waiter_granted_with_dependency(self, table):
        """"When a transaction is granted a lock, it becomes dependent on
        the pre-committed transactions that formerly held the lock.""" """"""
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.acquire(2, "x", LockMode.EXCLUSIVE)
        notices = table.precommit(1)
        assert len(notices) == 1
        assert notices[0].tid == 2
        assert notices[0].dependencies == (1,)
        assert table.holders("x") == {2: LockMode.EXCLUSIVE}

    def test_immediate_grant_sees_precommitted(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.precommit(1)
        grant = table.acquire(2, "x", LockMode.EXCLUSIVE)
        assert grant.granted
        assert grant.dependencies == (1,)

    def test_finalize_clears_dependency_source(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.precommit(1)
        table.finalize(1)
        assert table.precommitted("x") == set()
        grant = table.acquire(2, "x", LockMode.EXCLUSIVE)
        assert grant.dependencies == ()

    def test_chained_dependencies(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.acquire(2, "x", LockMode.EXCLUSIVE)
        table.precommit(1)
        notices = table.precommit(2)
        assert notices == []
        # A third arrival depends on both pre-committed holders.
        grant = table.acquire(3, "x", LockMode.EXCLUSIVE)
        assert set(grant.dependencies) == {1, 2}

    def test_shared_waiters_granted_together(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.acquire(2, "x", LockMode.SHARED)
        table.acquire(3, "x", LockMode.SHARED)
        notices = table.precommit(1)
        assert {n.tid for n in notices} == {2, 3}


class TestAbort:
    def test_abort_releases_without_precommit(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.abort(1)
        assert table.holders("x") == {}
        assert table.precommitted("x") == set()

    def test_abort_grants_waiters_with_abort_dependency(self, table):
        """Waiters must not durably commit before the aborter's rollback
        is on the log, so the notice carries the aborter as a dependency."""
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.acquire(2, "x", LockMode.EXCLUSIVE)
        notices = table.abort(1)
        assert notices[0].tid == 2
        assert 1 in notices[0].dependencies

    def test_lock_garbage_collected(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.abort(1)
        assert len(table) == 0

    def test_precommitted_lock_survives_until_finalize(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        table.precommit(1)
        assert len(table) == 1
        table.finalize(1)
        assert len(table) == 0


class TestIntrospection:
    def test_locks_held(self, table):
        table.acquire(1, "x", LockMode.SHARED)
        table.acquire(1, "y", LockMode.EXCLUSIVE)
        assert table.locks_held(1) == {"x", "y"}

    def test_empty_queries(self, table):
        assert table.holders("nope") == {}
        assert table.waiters("nope") == []
        assert table.precommitted("nope") == set()


class TestBatchedPrecommit:
    """precommit_batch / finalize_batch must be observationally identical
    to looping the single-transaction calls -- same grants, same
    dependency edges, same final table state."""

    def mirrored(self, script):
        """Run ``script`` (a list of acquire specs) on two tables."""
        a, b = LockTable(), LockTable()
        for tid, obj, mode in script:
            a.acquire(tid, obj, mode)
            b.acquire(tid, obj, mode)
        return a, b

    def snapshot(self, table, objs):
        return {
            obj: (
                table.holders(obj),
                table.waiters(obj),
                table.precommitted(obj),
            )
            for obj in objs
        }

    def test_batch_matches_sequential_precommit(self):
        script = [
            (1, "x", LockMode.EXCLUSIVE),
            (2, "y", LockMode.EXCLUSIVE),
            (3, "x", LockMode.EXCLUSIVE),  # waits on 1
            (3, "y", LockMode.SHARED),  # waits on 2
            (4, "x", LockMode.SHARED),  # waits behind 3
        ]
        batched, sequential = self.mirrored(script)
        batch_notices = batched.precommit_batch([1, 2])
        seq_notices = []
        for tid in (1, 2):
            seq_notices.extend(sequential.precommit(tid))
        assert {
            (n.tid, n.obj, tuple(sorted(n.dependencies)))
            for n in batch_notices
        } == {
            (n.tid, n.obj, tuple(sorted(n.dependencies)))
            for n in seq_notices
        }
        assert self.snapshot(batched, ["x", "y"]) == self.snapshot(
            sequential, ["x", "y"]
        )

    def test_waiter_behind_two_batch_members(self):
        """A waiter blocked behind two members of the same commit group is
        granted in the single promotion sweep, depending on both."""
        table = LockTable()
        table.acquire(1, "x", LockMode.SHARED)
        table.acquire(2, "x", LockMode.SHARED)
        table.acquire(3, "x", LockMode.EXCLUSIVE)  # waits on both sharers
        notices = table.precommit_batch([1, 2])
        assert len(notices) == 1
        assert notices[0].tid == 3
        assert set(notices[0].dependencies) == {1, 2}
        assert table.holders("x") == {3: LockMode.EXCLUSIVE}

    def test_single_tid_batch_is_precommit(self):
        batched, single = self.mirrored(
            [(1, "x", LockMode.EXCLUSIVE), (2, "x", LockMode.EXCLUSIVE)]
        )
        bn = batched.precommit_batch([1])
        sn = single.precommit(1)
        assert [(n.tid, tuple(n.dependencies)) for n in bn] == [
            (n.tid, tuple(n.dependencies)) for n in sn
        ]

    def test_finalize_batch_matches_loop(self):
        batched, sequential = self.mirrored(
            [
                (1, "x", LockMode.EXCLUSIVE),
                (2, "y", LockMode.EXCLUSIVE),
                (3, "z", LockMode.SHARED),
            ]
        )
        for table in (batched, sequential):
            table.precommit_batch([1, 2, 3])
        batched.finalize_batch([1, 2])
        sequential.finalize(1)
        sequential.finalize(2)
        assert self.snapshot(batched, ["x", "y", "z"]) == self.snapshot(
            sequential, ["x", "y", "z"]
        )
        assert len(batched) == len(sequential) == 1  # tid 3 still parked

    def test_empty_batch_is_noop(self, table):
        table.acquire(1, "x", LockMode.EXCLUSIVE)
        assert table.precommit_batch([]) == []
        table.finalize_batch([])
        assert table.holders("x") == {1: LockMode.EXCLUSIVE}
