"""Tests for the MainMemoryDatabase facade."""

import pytest

from repro import DataType, MainMemoryDatabase
from repro.operators import AggregateFunction, AggregateSpec, Comparison
from repro.planner import JoinClause, Query
from repro.workload import employees_relation


@pytest.fixture
def db():
    database = MainMemoryDatabase()
    database.create_table(
        "emp",
        [
            ("emp_id", DataType.INTEGER),
            ("name", DataType.STRING),
            ("salary", DataType.INTEGER),
            ("dept", DataType.INTEGER),
        ],
    )
    rows = [
        (1, "Jones", 52_000, 1),
        (2, "Smith", 61_000, 1),
        (3, "Johnson", 48_000, 2),
        (4, "Jackson", 75_000, 2),
        (5, "Miller", 55_000, 3),
    ]
    for row in rows:
        database.insert("emp", row)
    database.create_table(
        "dept", [("dept_id", DataType.INTEGER), ("dname", DataType.STRING)]
    )
    for row in [(1, "toys"), (2, "tools"), (3, "books")]:
        database.insert("dept", row)
    database.analyze()
    return database


class TestDDL:
    def test_create_and_drop(self, db):
        db.create_table("tmp", [("x", DataType.INTEGER)])
        assert "tmp" in db.catalog.relations()
        db.drop_table("tmp")
        assert "tmp" not in db.catalog.relations()

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValueError):
            db.create_table("emp", [("x", DataType.INTEGER)])

    def test_register_external_relation(self):
        db = MainMemoryDatabase()
        db.register_table(employees_relation(50))
        assert db.table("emp").cardinality == 50

    @pytest.mark.parametrize("kind", ["btree", "avl", "hash", "paged-binary"])
    def test_create_index_kinds(self, db, kind):
        db.create_index("emp", "name", kind=kind)
        assert db.lookup("emp", "name", "Jones")[0][0] == 1

    def test_unknown_index_kind(self, db):
        with pytest.raises(ValueError):
            db.create_index("emp", "name", kind="lsm")

    def test_drop_index(self, db):
        db.create_index("emp", "name")
        db.drop_index("emp", "name")
        assert db.catalog.index("emp", "name") is None


class TestDML:
    def test_insert_maintains_indexes(self, db):
        db.create_index("emp", "name")
        db.insert("emp", (6, "Davis", 44_000, 3))
        assert db.lookup("emp", "name", "Davis")[0][0] == 6

    def test_insert_many(self, db):
        n = db.insert_many(
            "emp", [(10 + i, "X%d" % i, 30_000, 1) for i in range(5)]
        )
        assert n == 5
        assert db.table("emp").cardinality == 10

    def test_delete_where(self, db):
        db.create_index("emp", "dept")
        removed = db.delete_where("emp", "dept", 2)
        assert removed == 2
        assert db.table("emp").cardinality == 3
        assert db.lookup("emp", "dept", 2) == []
        # Index still serves surviving rows.
        assert len(db.lookup("emp", "dept", 1)) == 2

    def test_delete_where_no_match(self, db):
        assert db.delete_where("emp", "dept", 99) == 0


class TestLookups:
    def test_lookup_without_index_scans(self, db):
        assert db.lookup("emp", "name", "Smith")[0][0] == 2

    def test_range_lookup_via_btree(self, db):
        db.create_index("emp", "salary", kind="btree")
        rows = db.range_lookup("emp", "salary", 50_000, 62_000)
        assert sorted(r[0] for r in rows) == [1, 2, 5]

    def test_range_lookup_without_index_scans(self, db):
        rows = db.range_lookup("emp", "salary", 50_000, 62_000)
        assert sorted(r[0] for r in rows) == [1, 2, 5]


class TestQueries:
    def test_join_query(self, db):
        q = Query(
            tables=["emp", "dept"],
            joins=[JoinClause("emp", "dept", "dept", "dept_id")],
            predicates=[("emp", Comparison("salary", ">", 50_000))],
        )
        result = db.execute(q)
        # Column order depends on the join order the planner chose; find
        # "name" through the result schema.
        name_idx = result.schema.index_of("name")
        names = {row[name_idx] for row in result}
        assert names == {"Jones", "Smith", "Jackson", "Miller"}

    def test_aggregate_query(self, db):
        q = Query(
            tables=["emp"],
            group_by=["dept"],
            aggregates=[AggregateSpec(AggregateFunction.AVG, "salary", "avg")],
        )
        result = db.execute(q)
        means = {row[0]: row[1] for row in result}
        assert means[1] == pytest.approx(56_500)
        assert means[2] == pytest.approx(61_500)

    def test_explain_mentions_plan_nodes(self, db):
        q = Query(
            tables=["emp", "dept"],
            joins=[JoinClause("emp", "dept", "dept", "dept_id")],
        )
        assert "Join" in db.explain(q)

    def test_counters_accumulate(self, db):
        db.reset_counters()
        q = Query(tables=["emp"], predicates=[("emp", Comparison("dept", "=", 1))])
        db.execute(q)
        report = db.cost_report("q")
        assert report.total_seconds > 0
        db.reset_counters()
        assert db.cost_report().total_seconds == 0
