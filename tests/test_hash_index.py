"""Tests for the chained hash index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.hash_index import HashIndex
from repro.cost.counters import OperationCounters


@pytest.fixture
def index():
    return HashIndex()


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            HashIndex(initial_buckets=0)
        with pytest.raises(ValueError):
            HashIndex(max_load=0)

    def test_insert_search(self, index):
        index.insert("k", 1)
        assert index.search("k") == [1]
        assert index.probe("k") == [1]
        assert index.search("other") == []

    def test_duplicates(self, index):
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.search("k") == [1, 2]
        assert len(index) == 2
        assert index.distinct_keys == 1

    def test_mixed_key_types(self, index):
        index.insert(1, "int")
        index.insert("1", "str")
        assert index.search(1) == ["int"]
        assert index.search("1") == ["str"]

    def test_no_range_scan(self, index):
        assert not index.supports_range_scan
        with pytest.raises(NotImplementedError):
            list(index.range_scan(1, 2))


class TestDelete:
    def test_delete_all_values(self, index):
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.delete("k") == 2
        assert index.search("k") == []
        assert len(index) == 0

    def test_delete_one_value(self, index):
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.delete("k", 1) == 1
        assert index.search("k") == [2]

    def test_delete_missing(self, index):
        assert index.delete("nope") == 0
        index.insert("k", 1)
        assert index.delete("k", 99) == 0


class TestGrowth:
    def test_resizes_under_load(self):
        index = HashIndex(initial_buckets=4, max_load=1.2)
        for k in range(1000):
            index.insert(k, k)
        assert index.bucket_count > 4
        assert index.load_factor <= 1.2
        for k in range(0, 1000, 97):
            assert index.search(k) == [k]

    def test_chains_stay_short(self):
        index = HashIndex(initial_buckets=8)
        for k in range(5000):
            index.insert(k, k)
        mean, worst = index.chain_length_stats()
        assert mean < 3.0
        assert worst < 20

    def test_pages_estimate(self, index):
        for k in range(100):
            index.insert(k, k)
        assert index.pages(entry_bytes=100, page_bytes=4096) == 3  # ceil(10000/4096)


class TestCounters:
    def test_insert_charges_hash_and_move(self):
        counters = OperationCounters()
        index = HashIndex(counters)
        index.insert(1, "v")
        assert counters.hashes == 1
        assert counters.moves == 1

    def test_probe_charges_hash_and_chain_comparisons(self):
        counters = OperationCounters()
        index = HashIndex(counters)
        for k in range(100):
            index.insert(k, k)
        counters.reset()
        index.search(42)
        assert counters.hashes == 1
        # Average chain ~ load factor: about F comparisons, the paper's
        # ||S|| * F * comp probe term.
        assert 0 <= counters.comparisons <= 6

    def test_rehash_on_growth_not_charged(self):
        counters = OperationCounters()
        index = HashIndex(counters, initial_buckets=2)
        for k in range(50):
            index.insert(k, k)
        # One logical hash per insert even though growth rehashed chains.
        assert counters.hashes == 50


class TestIteration:
    def test_items_yields_everything(self, index):
        for k in range(20):
            index.insert(k, k * 2)
        assert sorted(index.items()) == [(k, k * 2) for k in range(20)]

    def test_keys(self, index):
        index.insert("a", 1)
        index.insert("b", 2)
        assert sorted(index.keys()) == ["a", "b"]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), st.integers())))
def test_property_matches_dict_of_lists(pairs):
    index = HashIndex(initial_buckets=2)
    reference = {}
    for k, v in pairs:
        index.insert(k, v)
        reference.setdefault(k, []).append(v)
    for k, values in reference.items():
        assert index.search(k) == values
    assert len(index) == len(pairs)
    assert index.distinct_keys == len(reference)
