"""Tests for the operation counters and costing."""

import pytest

from repro.cost.counters import OperationCounters
from repro.cost.parameters import TABLE2_DEFAULTS


def test_counters_start_at_zero(counters):
    assert counters.as_dict() == {
        "comparisons": 0,
        "hashes": 0,
        "moves": 0,
        "swaps": 0,
        "sequential_ios": 0,
        "random_ios": 0,
    }


def test_increments(counters):
    counters.compare(3)
    counters.hash_key()
    counters.move_tuple(2)
    counters.swap_tuples()
    counters.io_sequential(5)
    counters.io_random(4)
    assert counters.comparisons == 3
    assert counters.hashes == 1
    assert counters.moves == 2
    assert counters.swaps == 1
    assert counters.sequential_ios == 5
    assert counters.random_ios == 4


def test_cost_weights_match_table2(counters):
    counters.compare(1_000_000)
    assert counters.cost(TABLE2_DEFAULTS) == pytest.approx(3.0)
    counters.reset()
    counters.io_random(40)
    assert counters.cost(TABLE2_DEFAULTS) == pytest.approx(1.0)


def test_cpu_and_io_split(counters):
    counters.hash_key(100)
    counters.io_sequential(10)
    assert counters.cpu_cost(TABLE2_DEFAULTS) == pytest.approx(100 * 9e-6)
    assert counters.io_cost(TABLE2_DEFAULTS) == pytest.approx(0.1)
    assert counters.cost(TABLE2_DEFAULTS) == pytest.approx(
        counters.cpu_cost(TABLE2_DEFAULTS) + counters.io_cost(TABLE2_DEFAULTS)
    )


def test_reset(counters):
    counters.compare(5)
    counters.reset()
    assert counters.comparisons == 0
    assert counters.cost(TABLE2_DEFAULTS) == 0.0


def test_snapshot_is_independent(counters):
    counters.compare(1)
    snap = counters.snapshot()
    counters.compare(1)
    assert snap.comparisons == 1
    assert counters.comparisons == 2


def test_addition_and_subtraction():
    a = OperationCounters(comparisons=5, moves=2)
    b = OperationCounters(comparisons=3, random_ios=1)
    total = a + b
    assert total.comparisons == 8
    assert total.moves == 2
    assert total.random_ios == 1
    diff = total - b
    assert diff.comparisons == 5
    assert diff.random_ios == 0


def test_report_contents(counters):
    counters.compare(10)
    counters.io_sequential(1)
    report = counters.report(TABLE2_DEFAULTS, label="unit")
    assert report.label == "unit"
    assert report.total_seconds == pytest.approx(10 * 3e-6 + 10e-3)
    assert "unit" in str(report)
    # The report holds a snapshot, not a live reference.
    counters.compare(100)
    assert report.counters.comparisons == 10
