"""Tests for the simulated clock."""

import pytest

from repro.sim.clock import SimulatedClock


def test_starts_at_zero_by_default():
    assert SimulatedClock().now == 0.0


def test_starts_at_given_time():
    assert SimulatedClock(5.5).now == 5.5


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimulatedClock(-1.0)


def test_advance_moves_forward():
    clock = SimulatedClock()
    assert clock.advance(0.25) == 0.25
    assert clock.advance(0.25) == 0.5
    assert clock.now == 0.5


def test_advance_by_zero_is_allowed():
    clock = SimulatedClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0


def test_negative_advance_rejected():
    clock = SimulatedClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_advance_to_absolute_time():
    clock = SimulatedClock()
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_to_same_time_is_noop():
    clock = SimulatedClock(2.0)
    clock.advance_to(2.0)
    assert clock.now == 2.0


def test_rewind_rejected():
    clock = SimulatedClock(10.0)
    with pytest.raises(ValueError):
        clock.advance_to(9.999)


def test_reset():
    clock = SimulatedClock()
    clock.advance(100.0)
    clock.reset()
    assert clock.now == 0.0
    clock.reset(7.0)
    assert clock.now == 7.0


def test_reset_negative_rejected():
    clock = SimulatedClock()
    with pytest.raises(ValueError):
        clock.reset(-2.0)
