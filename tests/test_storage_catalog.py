"""Tests for the catalog and its optimizer statistics."""

import pytest

from repro.storage.catalog import Catalog, ColumnStats
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema


@pytest.fixture
def catalog():
    return Catalog()


@pytest.fixture
def table():
    rel = Relation(
        "t", make_schema(("k", DataType.INTEGER), ("v", DataType.INTEGER)), 64
    )
    for i in range(100):
        rel.insert((i, i % 10))
    return rel


class TestRegistry:
    def test_register_and_lookup(self, catalog, table):
        catalog.register(table)
        assert catalog.relation("t") is table
        assert catalog.has_relation("t")
        assert catalog.relations() == ["t"]

    def test_duplicate_rejected(self, catalog, table):
        catalog.register(table)
        with pytest.raises(ValueError):
            catalog.register(table)

    def test_missing_lookup(self, catalog):
        with pytest.raises(KeyError):
            catalog.relation("nope")

    def test_drop_removes_everything(self, catalog, table):
        catalog.register(table)
        catalog.register_index("t", "k", object())
        catalog.analyze("t")
        catalog.drop("t")
        assert not catalog.has_relation("t")
        assert catalog.index("t", "k") is None
        with pytest.raises(KeyError):
            catalog.drop("t")


class TestIndexes:
    def test_register_and_find(self, catalog, table):
        catalog.register(table)
        idx = object()
        catalog.register_index("t", "k", idx)
        assert catalog.index("t", "k") is idx
        assert catalog.indexes_on("t") == {"k": idx}

    def test_duplicate_index_rejected(self, catalog, table):
        catalog.register(table)
        catalog.register_index("t", "k", object())
        with pytest.raises(ValueError):
            catalog.register_index("t", "k", object())

    def test_index_on_missing_table_rejected(self, catalog):
        with pytest.raises(KeyError):
            catalog.register_index("nope", "k", object())

    def test_drop_index(self, catalog, table):
        catalog.register(table)
        catalog.register_index("t", "k", object())
        catalog.drop_index("t", "k")
        assert catalog.index("t", "k") is None
        with pytest.raises(KeyError):
            catalog.drop_index("t", "k")


class TestStatistics:
    def test_analyze_counts(self, catalog, table):
        catalog.register(table)
        stats = catalog.analyze("t")
        assert stats.cardinality == 100
        assert stats.page_count == table.page_count
        assert stats.column("k").distinct == 100
        assert stats.column("v").distinct == 10
        assert stats.column("k").minimum == 0
        assert stats.column("k").maximum == 99

    def test_stats_lazily_analyzes(self, catalog, table):
        catalog.register(table)
        assert catalog.stats("t").cardinality == 100

    def test_stats_are_a_snapshot(self, catalog, table):
        catalog.register(table)
        catalog.analyze("t")
        table.insert((999, 0))
        assert catalog.stats("t").cardinality == 100  # stale until re-analyze
        assert catalog.analyze("t").cardinality == 101

    def test_empty_relation_stats(self, catalog):
        rel = Relation("e", make_schema(("k", DataType.INTEGER)), 64)
        catalog.register(rel)
        stats = catalog.analyze("e")
        assert stats.cardinality == 0
        assert stats.column("k").distinct == 0


class TestColumnStats:
    def test_equality_selectivity(self):
        col = ColumnStats(distinct=20)
        assert col.selectivity_equals(1000) == pytest.approx(0.05)

    def test_equality_without_stats(self):
        assert ColumnStats().selectivity_equals(1000) == 1.0

    def test_range_selectivity_uniform(self):
        col = ColumnStats(distinct=100, minimum=0, maximum=100)
        assert col.selectivity_range(25, 75) == pytest.approx(0.5)

    def test_range_clamps(self):
        col = ColumnStats(distinct=100, minimum=0, maximum=100)
        assert col.selectivity_range(-50, 200) == 1.0
        assert col.selectivity_range(200, 300) == 0.0

    def test_range_without_stats_defaults(self):
        assert ColumnStats().selectivity_range(1, 2) == 0.5
