"""Property-based concurrency: seeded deterministic schedules.

Each schedule interleaves transfer transactions across K sessions using
the bank store's non-blocking lock mode (``wait=False`` raises
:class:`~repro.errors.WouldBlock` and leaves the request queued), so a
single driver thread explores genuinely adversarial interleavings --
including wait-for cycles -- while staying fully deterministic per seed.

Invariants checked on every schedule (200+ seeds):

* **conservation** -- transfers move money, never create it: the total
  balance equals ``n_accounts * initial_balance`` after every schedule;
* **oracle equality** -- replaying the committed transactions' scripts in
  commit (log) order on the independent
  :class:`~repro.chaos.ShadowDatabase` reproduces the balances exactly,
  i.e. zero drift vs. the serial oracle;
* **no deadlock hangs** -- every schedule terminates under a step bound;
  wait-for cycles end in a typed deadlock abort, never a stuck session;
* **accounting** -- commits + aborts == transactions started; a victim's
  effects never reach the balances.

A final real-thread stress run checks the same conservation and oracle
invariants under true preemption (blocking waits, group commit batching).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.chaos import ShadowDatabase
from repro.errors import QueryTimeout, TransactionAborted, WouldBlock
from repro.server import BankStore

N_ACCOUNTS = 6
INITIAL = 100
SEEDS = range(220)


def transfer_script(src, dst, amount):
    """The ShadowDatabase script for one transfer (callable deltas)."""
    return [
        ("write", src, lambda old, a=amount: old - a),
        ("write", dst, lambda old, a=amount: old + a),
    ]


class SessionPlan:
    """One logical session's remaining work in a schedule."""

    def __init__(self, rng, n_txns):
        self.transfers = [
            (
                rng.randrange(N_ACCOUNTS),
                rng.randrange(N_ACCOUNTS),
                rng.randrange(1, 50),
            )
            for _ in range(n_txns)
        ]
        self.tid = None
        self.step = 0  # 0: begin, 1: debit, 2: credit, 3: commit

    @property
    def done(self):
        return not self.transfers

    def current(self):
        return self.transfers[0]


def drive(bank, plan, committed_scripts):
    """Advance one session by one operation; returns True on progress."""
    src, dst, amount = plan.current()
    try:
        if plan.step == 0:
            plan.tid = bank.begin()
            plan.step = 1
        elif plan.step == 1:
            bank.add_record(plan.tid, src, -amount, wait=False)
            plan.step = 2
        elif plan.step == 2:
            bank.add_record(plan.tid, dst, amount, wait=False)
            plan.step = 3
        else:
            bank.commit(plan.tid)
            committed_scripts[plan.tid] = transfer_script(src, dst, amount)
            plan.transfers.pop(0)
            plan.step = 0
        return True
    except WouldBlock:
        return False  # queued; retry later (retries re-run deadlock checks)
    except TransactionAborted:
        # Victim: the store rolled the transaction back; drop the
        # transfer (retrying is a different schedule).
        plan.transfers.pop(0)
        plan.step = 0
        return False


def run_schedule(seed, n_sessions=4, txns_per_session=3):
    rng = random.Random(seed)
    bank = BankStore(
        N_ACCOUNTS,
        initial_balance=INITIAL,
        group_size=1,
        group_delay=0.0,
        lock_wait_timeout=1.0,
    )
    try:
        plans = [SessionPlan(rng, txns_per_session) for _ in range(n_sessions)]
        committed_scripts = {}
        started = n_sessions * txns_per_session
        steps = 0
        step_bound = started * 60
        while any(not p.done for p in plans):
            steps += 1
            assert steps < step_bound, (
                "schedule %d exceeded %d steps: a session hung" % (seed, steps)
            )
            candidates = [p for p in plans if not p.done]
            drive(bank, rng.choice(candidates), committed_scripts)
        bank.flush_now()

        # Conservation: transfers never create or destroy money.
        assert bank.audit_total() == N_ACCOUNTS * INITIAL, "seed %d" % seed

        # Zero drift vs. the serial oracle: replay committed scripts in
        # commit-log order on the independent shadow.
        order = bank.commit_order()
        shadow = ShadowDatabase(N_ACCOUNTS, initial_value=INITIAL)
        shadow.replay(committed_scripts, order)
        assert shadow.as_list() == bank.balances(), "seed %d" % seed

        # Accounting: every started transaction either committed or
        # aborted, and the log agrees with the in-memory tallies.
        stats = bank.bank_stats()
        assert stats["commits"] == len(order)
        assert stats["commits"] + stats["aborts"] == started
        return stats
    finally:
        bank.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_schedule(seed):
    run_schedule(seed)


def test_schedules_are_deterministic():
    """The same seed must produce the identical outcome twice."""
    for seed in (7, 42, 133):
        first = run_schedule(seed)
        second = run_schedule(seed)
        assert first == second


def test_schedules_actually_exercise_contention():
    """Across all seeds the harness must have seen real interleaving:
    lock waits, deadlock victims, and plenty of commits."""
    totals = {"commits": 0, "aborts": 0, "deadlocks": 0, "lock_waits": 0}
    for seed in range(40):
        stats = run_schedule(seed)
        for key in totals:
            totals[key] += stats[key]
    assert totals["commits"] > 300
    assert totals["lock_waits"] > 0
    assert totals["deadlocks"] > 0


def test_real_threads_conserve_and_match_oracle():
    """K worker threads with blocking waits and batched group commit."""
    bank = BankStore(
        N_ACCOUNTS,
        initial_balance=INITIAL,
        group_size=4,
        group_delay=0.002,
        lock_wait_timeout=5.0,
    )
    committed = {}
    mu = threading.Lock()
    errors = []

    def worker(worker_seed):
        rng = random.Random(worker_seed)
        try:
            for _ in range(25):
                src = rng.randrange(N_ACCOUNTS)
                dst = rng.randrange(N_ACCOUNTS)
                amount = rng.randrange(1, 50)
                tid = bank.begin()
                try:
                    bank.add_record(tid, src, -amount)
                    bank.add_record(tid, dst, amount)
                    bank.commit(tid)
                except (TransactionAborted, QueryTimeout):
                    continue  # rolled back by the store
                with mu:
                    committed[tid] = transfer_script(src, dst, amount)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    try:
        threads = [
            threading.Thread(target=worker, args=(1000 + i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        bank.flush_now()
        assert bank.audit_total() == N_ACCOUNTS * INITIAL
        shadow = ShadowDatabase(N_ACCOUNTS, initial_value=INITIAL)
        shadow.replay(committed, bank.commit_order())
        assert shadow.as_list() == bank.balances()
        stats = bank.bank_stats()
        assert stats["commits"] >= len(committed)
        assert stats["mean_group_size"] >= 1.0
    finally:
        bank.close()
