"""Overload robustness: admission-aware lock waits, shed, and retry.

The PR-8 contract under test (docs/ROBUSTNESS.md):

* a statement blocked in the lock table holds **no** admission slot --
  it parks (``Governor.begin_wait``), waits for the grant in the bank
  store, reacquires (``end_wait``), and retries, so admission measures
  statements *running*, not statements *blocked*;
* every exit path -- commit, abort, timeout, disconnect, injected crash
  signal -- returns the slot: the governor ends every scenario with
  ``active == parked == pages_in_use == 0``;
* past the saturation knee the shed valve fast-rejects with a typed
  ``AdmissionRejected(reason="overload")`` instead of letting the queue
  collapse throughput;
* deadlock-victim aborts of idempotent (autocommitted) statements are
  retried server-side under a seeded capped-jitter policy, and retry
  exhaustion surfaces the *original* typed error;
* read-only SQL genuinely interleaves (>1 statement inside the catalog
  read lock at once) while per-statement counter deltas stay byte-exact.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.chaos.injector import CrashSignal, FaultInjector, FaultPlan
from repro.core.database import MainMemoryDatabase
from repro.errors import (
    AdmissionRejected,
    ConfigurationError,
    TransactionAborted,
    WouldBlock,
)
from repro.governor import GovernorConfig
from repro.server import BankStore, RetryPolicy, SessionManager
from repro.server.protocol import error_payload, raise_error

from tests.server.conftest import build_corpus_db


def make_manager(**kwargs) -> SessionManager:
    kwargs.setdefault("n_accounts", 8)
    kwargs.setdefault("group_size", 4)
    kwargs.setdefault("group_delay", 0.001)
    kwargs.setdefault("lock_wait_timeout", 5.0)
    kwargs.setdefault("statement_timeout", 5.0)
    return SessionManager(**kwargs)


def assert_no_slot_leak(manager: SessionManager) -> None:
    stats = manager.db.governor_stats()
    assert stats["active"] == 0, stats
    assert stats["parked"] == 0, stats
    assert stats["pages_in_use"] == 0, stats


class TestAdmissionAwareLockWaits:
    def test_blocked_statement_parks_its_slot(self):
        mgr = make_manager()
        try:
            writer = mgr.open_session()
            reader = mgr.open_session()
            writer.execute("BEGIN")
            writer.execute("ADD 1 5")

            seen = []
            t = threading.Thread(
                target=lambda: seen.append(reader.execute("GET 1").value)
            )
            t.start()
            deadline = time.monotonic() + 5.0
            while (
                mgr.db.governor_stats()["parked"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stats = mgr.db.governor_stats()
            assert stats["parked"] == 1
            assert stats["active"] == 0  # the blocked statement holds nothing
            assert stats["slots_released_in_wait"] == 1

            writer.execute("COMMIT")
            t.join(timeout=5.0)
            assert seen == [105]
            assert reader.lock_parks == 1
            stats = mgr.db.governor_stats()
            assert stats["requeues"] == 1
            assert_no_slot_leak(mgr)
        finally:
            mgr.close()

    def test_parked_slot_is_real_capacity(self):
        """With max_concurrent=1, a statement blocked on a lock must not
        starve an unrelated statement -- that is the whole point."""
        db = MainMemoryDatabase(
            governor=GovernorConfig(max_concurrent=1, admission_timeout=5.0)
        )
        mgr = make_manager(db=db)
        try:
            writer = mgr.open_session()
            blocked = mgr.open_session()
            bystander = mgr.open_session()
            writer.execute("BEGIN")
            writer.execute("ADD 3 1")

            seen = []
            t = threading.Thread(
                target=lambda: seen.append(blocked.execute("GET 3").value)
            )
            t.start()
            deadline = time.monotonic() + 5.0
            while (
                mgr.db.governor_stats()["parked"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)

            # The only slot belongs to the parked statement -- and is free.
            assert bystander.execute("GET 0").value == 100

            writer.execute("COMMIT")
            t.join(timeout=5.0)
            assert seen == [101]
            assert_no_slot_leak(mgr)
        finally:
            mgr.close()

    def test_wait_false_would_block_and_grant_consumed(self):
        bank = BankStore(4, group_size=1, group_delay=0.0)
        try:
            holder = bank.begin()
            bank.add_record(holder, 2, 1)
            waiter = bank.begin()
            with pytest.raises(WouldBlock):
                bank.read_record(waiter, 2, wait=False)
            bank.commit(holder)
            bank.await_grant(waiter)  # grant arrived with the commit
            # The retried statement consumes the queued grant.
            assert bank.read_record(waiter, 2, wait=False) == 101
            bank.commit(waiter)
        finally:
            bank.close()

    def test_would_block_travels_the_wire_as_retryable(self):
        exc = WouldBlock("record 7 is locked")
        payload = error_payload(exc)
        assert payload["type"] == "WouldBlock"
        assert payload["retryable"] is True
        with pytest.raises(WouldBlock) as exc_info:
            raise_error(payload)
        assert exc_info.value.retryable is True

    def test_admission_rejection_is_not_retryable_on_the_wire(self):
        payload = error_payload(AdmissionRejected("shed", reason="overload"))
        assert payload["reason"] == "overload"
        assert "retryable" not in payload  # load signal: do not resubmit


class TestServerRetry:
    def test_deadlock_victim_autocommit_retries_transparently(self):
        mgr = make_manager()
        try:
            session = mgr.open_session()
            real = mgr.bank.add_record
            calls = {"n": 0}

            def flaky(tid, record, delta, wait=True):
                calls["n"] += 1
                if calls["n"] == 1:
                    mgr.bank.rollback(tid, "deadlock")
                    raise TransactionAborted(
                        "transaction %d chosen as deadlock victim" % tid,
                        reason="deadlock",
                    )
                return real(tid, record, delta, wait=wait)

            mgr.bank.add_record = flaky
            try:
                result = session.execute("ADD 2 7")
            finally:
                mgr.bank.add_record = real
            assert result.value == 107
            assert session.retries == 1
            assert calls["n"] == 2
            assert_no_slot_leak(mgr)
        finally:
            mgr.close()

    def test_retry_exhaustion_surfaces_the_original_reason(self):
        mgr = make_manager(retry_policy=RetryPolicy(max_attempts=3,
                                                    base_delay=0.0,
                                                    max_delay=0.0))
        try:
            session = mgr.open_session()
            real = mgr.bank.add_record
            calls = {"n": 0}

            def doomed(tid, record, delta, wait=True):
                calls["n"] += 1
                mgr.bank.rollback(tid, "deadlock")
                raise TransactionAborted(
                    "transaction %d chosen as deadlock victim" % tid,
                    reason="deadlock",
                )

            mgr.bank.add_record = doomed
            try:
                with pytest.raises(TransactionAborted) as exc_info:
                    session.execute("ADD 1 1")
            finally:
                mgr.bank.add_record = real
            assert exc_info.value.reason == "deadlock"  # original, intact
            assert calls["n"] == 3  # max_attempts total runs
            assert session.retries == 2
            assert_no_slot_leak(mgr)
        finally:
            mgr.close()

    def test_statements_inside_explicit_transactions_never_retry(self):
        """A real deadlock between two explicit transactions: the victim
        gets the typed abort straight back -- the client owns recovery
        for multi-statement transactions."""
        mgr = make_manager()
        try:
            a = mgr.open_session()
            b = mgr.open_session()
            a.execute("BEGIN")
            b.execute("BEGIN")
            a.execute("ADD 0 1")
            b.execute("ADD 1 1")

            outcome = {}

            def a_closes_in():
                try:
                    outcome["a"] = a.execute("ADD 1 1").value
                except TransactionAborted as exc:
                    outcome["a_aborted"] = exc.reason

            t = threading.Thread(target=a_closes_in)
            t.start()
            time.sleep(0.2)  # a is now parked waiting on record 1
            try:
                outcome["b"] = b.execute("ADD 0 1").value  # closes the cycle
            except TransactionAborted as exc:
                outcome["b_aborted"] = exc.reason
            t.join(timeout=5.0)

            aborted = [k for k in outcome if k.endswith("_aborted")]
            assert len(aborted) == 1, outcome
            assert outcome[aborted[0]] == "deadlock"
            assert a.retries == 0 and b.retries == 0
            # The survivor finishes; the victim's session starts clean.
            for session in (a, b):
                if session.txn is not None:
                    session.execute("ROLLBACK")
            assert_no_slot_leak(mgr)
        finally:
            mgr.close()

    def test_retry_can_be_disabled(self):
        mgr = make_manager(auto_retry=False)
        try:
            assert mgr.retry_policy is None
            session = mgr.open_session()
            real = mgr.bank.add_record

            def doomed(tid, record, delta, wait=True):
                mgr.bank.rollback(tid, "deadlock")
                raise TransactionAborted("victim", reason="deadlock")

            mgr.bank.add_record = doomed
            try:
                with pytest.raises(TransactionAborted):
                    session.execute("ADD 1 1")
            finally:
                mgr.bank.add_record = real
            assert session.retries == 0
        finally:
            mgr.close()


class TestRetryPolicy:
    def test_backoff_is_capped_jittered_and_seeded(self):
        import random

        policy = RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.04)
        draws = [policy.backoff(k, random.Random(7)) for k in range(5)]
        for k, delay in enumerate(draws):
            assert 0.0 <= delay <= min(0.04, 0.01 * (2 ** k))
        redraws = [policy.backoff(k, random.Random(7)) for k in range(5)]
        assert redraws == draws  # seeded: schedules reproduce

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.retries_left(0)
        assert policy.retries_left(1)
        assert not policy.retries_left(2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)


class TestOverloadShed:
    def test_saturated_admission_sheds_with_typed_reason(self):
        db = MainMemoryDatabase(
            governor=GovernorConfig(
                max_concurrent=1,
                max_queue=16,
                shed_threshold=1,
                admission_timeout=5.0,
            )
        )
        mgr = make_manager(db=db)
        try:
            # A long-lived admission (a running query) pins the only slot.
            hog = db.governor.admit(1)
            waiter_done = []
            session_w = mgr.open_session()
            session_s = mgr.open_session()

            t = threading.Thread(
                target=lambda: waiter_done.append(
                    session_w.execute("GET 0").value
                )
            )
            t.start()
            deadline = time.monotonic() + 5.0
            while (
                db.governor_stats()["waiting"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert db.governor_stats()["waiting"] == 1

            # The valve is at threshold: the next arrival is shed, fast.
            started = time.monotonic()
            with pytest.raises(AdmissionRejected) as exc_info:
                session_s.execute("GET 1")
            assert exc_info.value.reason == "overload"
            assert time.monotonic() - started < 1.0  # no queue-timeout wait
            assert db.governor_stats()["sheds"] == 1

            db.governor.release(hog)
            t.join(timeout=5.0)
            assert waiter_done == [100]
            assert_no_slot_leak(mgr)
        finally:
            mgr.close()


class _BarrierInjector:
    """Chaos seam double: the first executor page of each query waits at
    a barrier, guaranteeing both queries are mid-execution at once."""

    def __init__(self, parties: int) -> None:
        self.barrier = threading.Barrier(parties)
        self._local = threading.local()

    def point(self, label: str) -> None:  # facade seam, unused here
        return None

    def executor_page(self, token=None, grant=None) -> None:
        if getattr(self._local, "synced", False):
            return
        self._local.synced = True
        self.barrier.wait(timeout=10.0)


class TestConcurrentReadOnlySql:
    QUERIES = [
        "SELECT name FROM emp WHERE salary > 50000",
        "SELECT dname FROM dept WHERE dept_id > 1",
    ]

    def reference_counters(self, stmt: str):
        db = build_corpus_db()
        before = db.counters.snapshot()
        db.sql(stmt)
        return (db.counters.snapshot() - before).as_dict()

    def test_two_selects_in_flight_with_exact_counters(self):
        db = build_corpus_db()
        db.governor.attach_chaos(_BarrierInjector(2))
        mgr = SessionManager(db=db, n_accounts=4)
        try:
            sessions = [mgr.open_session() for _ in self.QUERIES]
            results = [None, None]

            def run(i: int) -> None:
                results[i] = sessions[i].execute(self.QUERIES[i])

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(len(self.QUERIES))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)

            occupancy = db.concurrency_stats()
            assert occupancy["peak_readers"] >= 2, occupancy
            for i, stmt in enumerate(self.QUERIES):
                assert results[i] is not None
                assert results[i].counters == self.reference_counters(stmt)
            assert results[0].rows is not None and results[1].rows is not None
        finally:
            mgr.close()

    def test_ddl_takes_the_write_side_alone(self):
        from repro.storage.tuples import DataType

        db = build_corpus_db()
        mgr = SessionManager(db=db, n_accounts=4)
        try:
            session = mgr.open_session()
            session.execute("SELECT name FROM emp WHERE salary > 50000")
            db.create_table("scratch", [("x", DataType.INTEGER)])
            occupancy = db.concurrency_stats()
            assert occupancy["readers"] == 0
            assert occupancy["writer_held"] is False
        finally:
            mgr.close()


class TestChaosWhileParked:
    def _contended_workload(self, injector=None, seed=0):
        """A deterministic two-session conflict that forces a park; the
        injector (if any) sees the ``bank park``/``bank unpark`` points."""
        db = MainMemoryDatabase()
        if injector is not None:
            db.fault_injector = injector
        mgr = make_manager(db=db, lock_wait_timeout=2.0,
                           statement_timeout=2.0)
        outcome = {"crash_signals": 0, "errors": []}
        try:
            writer = mgr.open_session()
            reader = mgr.open_session()
            writer.execute("BEGIN")
            writer.execute("ADD 1 5")

            def blocked_reader():
                try:
                    outcome["value"] = reader.execute("GET 1").value
                except CrashSignal:
                    outcome["crash_signals"] += 1
                except Exception as exc:  # noqa: BLE001 - recorded, asserted
                    outcome["errors"].append(exc)

            t = threading.Thread(target=blocked_reader)
            t.start()
            deadline = time.monotonic() + 5.0
            while t.is_alive() and time.monotonic() < deadline:
                stats = mgr.db.governor_stats()
                if stats["parked"] or not t.is_alive():
                    break
                time.sleep(0.01)
            writer.execute("COMMIT")
            t.join(timeout=5.0)
            assert not t.is_alive()
            return mgr, outcome
        except BaseException:
            mgr.close()
            raise

    def test_crash_signal_at_every_park_point_leaks_nothing(self):
        """Sweep the injected-crash point across the park/unpark seams:
        whatever the statement was doing when the signal fired, the
        governor ends clean and the store recovers to the oracle."""
        for point in range(3):
            injector = FaultInjector(FaultPlan(crash_at_point=point))
            mgr, outcome = self._contended_workload(injector=injector)
            try:
                assert not outcome["errors"], (point, outcome)
                if injector.crashed:
                    assert outcome["crash_signals"] == 1
                else:
                    assert outcome.get("value") == 105
                # The hard guarantee: zero leaked admission slots.
                assert_no_slot_leak(mgr)
                # And the store itself recovers oracle-clean: the
                # writer's committed +5 survives, nothing else changed.
                mgr.crash()
                mgr.recover()
                assert mgr.bank.audit_total() == 8 * 100 + 5
            finally:
                mgr.close()

    def test_disconnect_while_parked_releases_slot(self):
        mgr = make_manager()
        try:
            writer = mgr.open_session()
            victim = mgr.open_session()
            writer.execute("BEGIN")
            writer.execute("ADD 4 1")

            outcome = {}

            def parked_reader():
                try:
                    outcome["value"] = victim.execute("GET 4").value
                except TransactionAborted as exc:
                    outcome["aborted"] = exc.reason

            t = threading.Thread(target=parked_reader)
            t.start()
            deadline = time.monotonic() + 5.0
            while (
                mgr.db.governor_stats()["parked"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert mgr.db.governor_stats()["parked"] == 1

            # The client vanishes while its statement is parked.
            assert mgr.close_session(victim.session_id) is True
            t.join(timeout=5.0)
            assert outcome.get("aborted") == "disconnect"
            assert_no_slot_leak(mgr)

            writer.execute("COMMIT")
            lingering = mgr.bank.locks.holders(4)
            assert set(lingering) == set()
        finally:
            mgr.close()

    def test_seeded_disconnect_sweep_recovers_to_oracle(self):
        """Randomised (seeded) mix of transfers, disconnects, and a final
        crash/recover: balances must match the shadow oracle and the
        governor must end with zero slots outstanding, every seed."""
        import random

        for seed in range(6):
            rng = random.Random(seed)
            mgr = make_manager(n_accounts=6, lock_wait_timeout=2.0)
            try:
                for step in range(10):
                    src = rng.randrange(6)
                    dst = rng.randrange(6)
                    amount = rng.randrange(1, 30)
                    session = mgr.open_session()
                    try:
                        session.execute("BEGIN")
                        session.execute("ADD %d -%d" % (src, amount))
                        if rng.random() < 0.4:
                            # Mid-transaction disconnect: must roll back.
                            mgr.close_session(session.session_id)
                            continue
                        session.execute("ADD %d %d" % (dst, amount))
                        session.execute("COMMIT")
                    except TransactionAborted:
                        pass
                    finally:
                        mgr.close_session(session.session_id)
                assert_no_slot_leak(mgr)
                mgr.crash()
                outcome = mgr.recover()
                # Transfers are balanced and half-done ones rolled back,
                # so the recovered image must conserve the total.
                assert mgr.bank.audit_total() == 600, "seed %d" % seed
                assert outcome["committed"] >= 0
            finally:
                mgr.close()
