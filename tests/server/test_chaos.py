"""Session-fault chaos: disconnects mid-transaction, crashes mid-commit.

The guarantees under test (docs/SERVER.md):

* a client that vanishes mid-transaction leaves nothing behind -- its
  locks are released, its writes undone, and waiters it was blocking
  proceed;
* a server crash mid-commit loses exactly the commits that never reached
  the durable log -- recovery replays the log and the rebuilt image
  matches the independent :class:`~repro.chaos.ShadowDatabase` oracle;
* a commit in flight when the crash hits fails with a **typed** error
  (``TransactionAborted, reason="crash"``), never a hang or a false OK.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.chaos import ShadowDatabase
from repro.errors import SessionError, TransactionAborted
from repro.server import BankStore, DatabaseServer, ServerClient

from tests.server.conftest import build_corpus_db


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestDisconnectMidTransaction:
    def test_abrupt_disconnect_rolls_back_and_releases_locks(self, server):
        bank = server.manager.bank
        victim = ServerClient(*server.address)
        victim.execute("BEGIN")
        victim.execute("SET 0 0")
        victim.execute("SET 1 0")
        assert bank.locks.holders(0) != {}
        victim.kill()  # RST, no goodbye
        assert wait_until(lambda: bank.locks.holders(0) == {})
        assert bank.locks.holders(1) == {}
        with ServerClient(*server.address) as probe:
            assert probe.value("GET 0") == 100  # write undone
            assert probe.value("GET 1") == 100
            assert probe.value("AUDIT") == 1600

    def test_disconnect_unblocks_waiters(self, server):
        victim = ServerClient(*server.address)
        victim.execute("BEGIN")
        victim.execute("ADD 5 -1")
        waiter = ServerClient(*server.address)
        seen = []
        t = threading.Thread(target=lambda: seen.append(waiter.value("GET 5")))
        try:
            t.start()
            time.sleep(0.1)
            assert not seen
            victim.kill()
            t.join(timeout=5)
            assert seen == [100], "waiter must see the rolled-back value"
        finally:
            waiter.close()

    def test_orderly_close_also_rolls_back(self, server):
        c = ServerClient(*server.address)
        c.execute("BEGIN")
        c.execute("SET 2 0")
        c.close()  # FIN
        assert wait_until(
            lambda: server.manager.bank.locks.holders(2) == {}
        )
        with ServerClient(*server.address) as probe:
            assert probe.value("GET 2") == 100


class TestReadOnlyCommit:
    def test_read_only_commit_does_not_wait_for_a_flush(self):
        """A transaction that wrote nothing (and read only durable data)
        has nothing to make durable: its commit must return immediately
        even when the group-commit timer is far away -- the post-crash
        probe in the test below would otherwise stall a full
        ``group_delay`` on an autocommitted GET."""
        bank = BankStore(4, group_size=64, group_delay=30.0)
        try:
            tid = bank.begin()
            assert bank.read_record(tid, 0) == 100
            started = time.monotonic()
            info = bank.commit(tid)
            assert time.monotonic() - started < 1.0
            assert info["group_size"] == 0
            assert bank.locks.holders(0) == {}
            # A writer still rides the group: nothing flushed so far.
            assert bank.bank_stats()["groups_flushed"] == 0
        finally:
            bank.close()


class TestCrashMidCommit:
    def test_in_flight_commit_fails_typed_and_recovers_to_oracle(self):
        # A huge group size and a long delay pin the commit in the open
        # group, so the crash reliably lands mid-commit.
        server = DatabaseServer(
            db=build_corpus_db(),
            n_accounts=8,
            initial_balance=100,
            group_size=64,
            group_delay=30.0,
            lock_wait_timeout=5.0,
        )
        server.start_in_thread()
        try:
            bank = server.manager.bank

            # One transfer made durable before the crash.
            setup = ServerClient(*server.address)
            setup.execute("BEGIN")
            setup.execute("ADD 0 -30")
            setup.execute("ADD 1 30")
            commit_done = threading.Event()
            setup_outcome = {}

            def durable_commit():
                try:
                    setup_outcome["ok"] = setup.execute("COMMIT")
                except TransactionAborted as exc:
                    setup_outcome["aborted"] = exc.reason
                finally:
                    commit_done.set()

            t1 = threading.Thread(target=durable_commit)
            t1.start()
            assert wait_until(lambda: len(bank._group) == 1)
            bank.flush_now()  # barrier: this commit reaches the log
            t1.join(timeout=5)
            assert "ok" in setup_outcome

            # A second transfer crashes while its commit is in flight.
            doomed = ServerClient(*server.address)
            doomed.execute("BEGIN")
            doomed.execute("ADD 2 -50")
            doomed.execute("ADD 3 50")
            doomed_outcome = {}

            def lost_commit():
                try:
                    doomed_outcome["ok"] = doomed.execute("COMMIT")
                except TransactionAborted as exc:
                    doomed_outcome["reason"] = exc.reason
                except Exception as exc:  # severed connection also valid
                    doomed_outcome["error"] = exc

            t2 = threading.Thread(target=lost_commit)
            t2.start()
            assert wait_until(lambda: len(bank._group) == 1)
            report = server.crash()
            t2.join(timeout=5)
            assert report["lost_precommitted"] == 1
            assert "ok" not in doomed_outcome
            if "reason" in doomed_outcome:
                assert doomed_outcome["reason"] == "crash"

            # Recover and check against the independent oracle: only the
            # durable transfer survives.
            outcome = server.recover()
            assert outcome["committed"] >= 1
            shadow = ShadowDatabase(8, initial_value=100)
            shadow.write(0, 70)
            shadow.write(1, 130)
            assert shadow.as_list() == bank.balances()
            with ServerClient(*server.address) as probe:
                assert probe.value("GET 2") == 100  # lost commit undone
                assert probe.value("AUDIT") == 800
        finally:
            server.stop()

    def test_statements_after_crash_fail_until_recovery(self):
        bank = BankStore(4, group_size=1, group_delay=0.0)
        try:
            tid = bank.begin()
            bank.add_record(tid, 0, -10)
            bank.crash()
            with pytest.raises(SessionError):
                bank.begin()
            with pytest.raises(SessionError):
                bank.add_record(tid, 1, 10)
            bank.recover()
            with pytest.raises(SessionError):
                bank.add_record(tid, 1, 10)  # the old txn died in the crash
            t2 = bank.begin()
            assert bank.read_record(t2, 0) == 100
            bank.commit(t2)
        finally:
            bank.close()

    def test_randomized_crash_points_recover_to_oracle(self):
        """Seeded workload, crash after a random number of commits, then
        recover: durable commits replayed on the shadow must equal the
        rebuilt balances -- for several crash points."""
        import random

        for seed in range(8):
            rng = random.Random(seed)
            bank = BankStore(
                6, initial_balance=100, group_size=2, group_delay=0.001,
                lock_wait_timeout=2.0,
            )
            try:
                scripts = {}
                crash_after = rng.randrange(1, 10)
                for _ in range(12):
                    src = rng.randrange(6)
                    dst = rng.randrange(6)
                    amount = rng.randrange(1, 40)
                    tid = bank.begin()
                    bank.add_record(tid, src, -amount)
                    bank.add_record(tid, dst, amount)
                    bank.commit(tid)
                    scripts[tid] = [
                        ("write", src, lambda old, a=amount: old - a),
                        ("write", dst, lambda old, a=amount: old + a),
                    ]
                    if len(bank.commit_order()) >= crash_after:
                        break
                bank.crash()
                outcome = bank.recover()
                shadow = ShadowDatabase(6, initial_value=100)
                shadow.replay(scripts, outcome["commit_order"])
                assert shadow.as_list() == bank.balances(), "seed %d" % seed
                assert bank.audit_total() == 600
            finally:
                bank.close()
