"""Shared fixtures: the test_sql.py corpus database and a live server.

The differential test's whole point is running *the same statements*
against the wire path and the in-process path, so the corpus fixture
must be reproducible: :func:`build_corpus_db` builds a byte-identical
database every call (same rows, same insertion order, same analyze).
"""

from __future__ import annotations

import pytest

from repro import DataType, MainMemoryDatabase
from repro.server import DatabaseServer, ServerClient

EMP_ROWS = [
    (1, "Jones", 52_000, 1),
    (2, "Smith", 61_000, 1),
    (3, "Johnson", 48_000, 2),
    (4, "Jackson", 75_000, 2),
    (5, "Miller", 55_000, 3),
    (6, "Joyce", 44_000, 3),
]
DEPT_ROWS = [(1, "toys"), (2, "tools"), (3, "books")]


def build_corpus_db() -> MainMemoryDatabase:
    """The exact emp/dept fixture tests/test_sql.py uses."""
    db = MainMemoryDatabase()
    db.create_table(
        "emp",
        [
            ("emp_id", DataType.INTEGER),
            ("name", DataType.STRING),
            ("salary", DataType.INTEGER),
            ("dept", DataType.INTEGER),
        ],
    )
    for row in EMP_ROWS:
        db.insert("emp", row)
    db.create_table(
        "dept", [("dept_id", DataType.INTEGER), ("dname", DataType.STRING)]
    )
    for row in DEPT_ROWS:
        db.insert("dept", row)
    db.analyze()
    return db


@pytest.fixture
def server():
    """A live server over the corpus database plus a 16-account bank."""
    srv = DatabaseServer(
        db=build_corpus_db(),
        n_accounts=16,
        initial_balance=100,
        group_size=4,
        group_delay=0.002,
        lock_wait_timeout=2.0,
        statement_timeout=10.0,
    )
    srv.start_in_thread()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    with ServerClient(*server.address) as c:
        yield c
