"""Differential test: the wire path vs. in-process execution.

Every statement of the ``tests/test_sql.py`` corpus runs twice -- once
over the server protocol against the server's engine, once in-process
against an independently built but identical database -- and must return
**identical rows and identical OperationCounters deltas**.  Both engines
execute the corpus in the same order, so reuse-cache hits and misses line
up statement for statement.

The malformed corpus must fail identically too: same error class, same
message, same statement position.
"""

from __future__ import annotations

import threading

import pytest

from repro.planner.sql import SqlError
from repro.server import ServerClient

from tests.server.conftest import build_corpus_db

#: Every well-formed SELECT of the tests/test_sql.py corpus, in a fixed
#: order (order matters: the reuse cache makes later statements cheaper).
CORPUS = [
    "SELECT * FROM emp",
    "SELECT name, salary FROM emp",
    "SELECT DISTINCT dept FROM emp",
    "SELECT name FROM emp WHERE salary > 54000",
    "SELECT emp_id FROM emp WHERE name = 'Jones'",
    "SELECT name FROM emp WHERE name LIKE 'J%'",
    "SELECT name FROM emp WHERE salary >= 48000 AND dept = 2",
    "SELECT name FROM emp WHERE (dept = 1 OR dept = 3) AND salary < 56000",
    "SELECT name FROM emp WHERE NOT dept = 2",
    "SELECT name FROM emp WHERE dept != 2",
    "SELECT name FROM emp WHERE dept <> 2",
    "SELECT emp_id FROM emp WHERE name = 'O''Hara'",
    "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.dept_id",
    "SELECT name, dname FROM emp, dept WHERE dept = dept_id",
    "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.dept_id "
    "WHERE salary > 54000 AND dname = 'toys'",
    "SELECT emp.name FROM emp JOIN dept ON emp.dept = dept.dept_id "
    "WHERE dept.dname = 'books'",
    "SELECT dept, COUNT(*) AS n, AVG(salary) AS mean FROM emp GROUP BY dept",
    "SELECT dept, MAX(salary) FROM emp GROUP BY dept",
    "SELECT dept, COUNT(salary) FROM emp GROUP BY dept",
    "SELECT dname, SUM(salary) AS payroll FROM emp "
    "JOIN dept ON emp.dept = dept.dept_id GROUP BY dname",
    # Repeats: must hit the reuse cache identically on both paths.
    "SELECT * FROM emp",
    "SELECT name FROM emp WHERE salary > 54000",
    "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.dept_id",
]

MALFORMED = [
    "SELECT",
    "SELECT * FROM nope",
    "SELECT wat FROM emp",
    "SELECT * FROM emp WHERE name LIKE '%J'",
    "SELECT * FROM emp WHERE name LIKE 'a%b%'",
    "SELECT name, SUM(salary) FROM emp GROUP BY dept",
    "SELECT name FROM emp GROUP BY name",
    "SELECT * FROM emp, emp",
    "SELECT * FROM emp WHERE salary >",
    "SELECT *, COUNT(*) FROM emp",
    "SELECT * FROM emp JOIN dept ON dept = salary",
    "SELECT dept, SUM(*) FROM emp GROUP BY dept",
]


def run_in_process(db, stmt):
    """Execute ``stmt`` in-process, returning (rows, counter deltas)."""
    before = db.counters.snapshot()
    rel = db.sql(stmt)
    delta = (db.counters.snapshot() - before).as_dict()
    return [list(row) for _, row in rel.scan()], delta


class TestDifferential:
    def test_corpus_rows_and_counters_identical(self, server):
        reference = build_corpus_db()
        with ServerClient(*server.address) as client:
            for stmt in CORPUS:
                wire_rows, wire_counters = client.counters(stmt)
                ref_rows, ref_counters = run_in_process(reference, stmt)
                assert wire_rows == ref_rows, stmt
                assert wire_counters == ref_counters, stmt

    def test_malformed_corpus_fails_identically(self, server):
        reference = build_corpus_db()
        with ServerClient(*server.address) as client:
            for stmt in MALFORMED:
                with pytest.raises(SqlError) as wire_info:
                    client.execute(stmt)
                with pytest.raises(SqlError) as ref_info:
                    reference.sql(stmt)
                assert str(wire_info.value) == str(ref_info.value), stmt
                assert (
                    wire_info.value.position == ref_info.value.position
                ), stmt
                assert wire_info.value.position is not None, stmt

    def test_counters_do_not_drift_under_concurrent_sessions(self, server):
        """N clients hammer the corpus concurrently; the sum of all
        per-statement deltas must equal the engine's total counters
        exactly (serialized SQL => no lost updates, no double counts)."""
        base = server.manager.db.counters.snapshot()
        totals_lock = threading.Lock()
        totals = {}
        errors = []

        def worker():
            try:
                with ServerClient(*server.address) as client:
                    for stmt in CORPUS:
                        _, counters = client.counters(stmt)
                        with totals_lock:
                            for key, value in counters.items():
                                totals[key] = totals.get(key, 0) + value
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        drift = (server.manager.db.counters.snapshot() - base).as_dict()
        assert totals == drift
