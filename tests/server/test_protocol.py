"""Wire-protocol tests: framing, typed errors, malformed round-trips."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.errors import (
    AdmissionRejected,
    ProtocolError,
    QueryTimeout,
    ReproError,
    StateError,
    TransactionAborted,
)
from repro.planner.sql import SqlError
from repro.server import (
    FrameDecoder,
    MAX_FRAME_BYTES,
    ServerClient,
    decode_body,
    encode_frame,
    error_payload,
    raise_error,
    request,
)


class TestFraming:
    def test_round_trip(self):
        payload = {"id": 3, "stmt": "SELECT * FROM emp", "nested": {"a": [1, 2]}}
        frame = encode_frame(payload)
        assert decode_body(frame[4:]) == payload

    def test_decoder_handles_arbitrary_chunking(self):
        frames = b"".join(
            encode_frame({"id": i, "stmt": "s%d" % i}) for i in range(5)
        )
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(frames), 3):  # 3-byte dribble
            out.extend(decoder.feed(frames[i : i + 3]))
        assert [m["id"] for m in out] == list(range(5))
        assert decoder.pending_bytes == 0

    def test_decoder_many_frames_in_one_chunk(self):
        frames = b"".join(encode_frame({"id": i}) for i in range(10))
        assert [m["id"] for m in FrameDecoder().feed(frames)] == list(range(10))

    def test_oversized_outgoing_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"pad": "x" * (MAX_FRAME_BYTES + 1)})

    def test_oversized_incoming_frame_rejected_eagerly(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(header)

    def test_non_json_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfenot json")

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2, 3]")

    def test_request_builder(self):
        assert request("PING") == {"stmt": "PING"}
        assert request("PING", 9) == {"id": 9, "stmt": "PING"}


class TestTypedErrors:
    @pytest.mark.parametrize(
        "exc, expect",
        [
            (SqlError("bad token", position=17), {"position": 17}),
            (
                AdmissionRejected("full", qid=4, reason="memory"),
                {"qid": 4, "reason": "memory"},
            ),
            (QueryTimeout("too slow", qid=2), {"qid": 2}),
            (
                TransactionAborted("victim", reason="deadlock"),
                {"reason": "deadlock"},
            ),
            (StateError("wrong state"), {}),
        ],
    )
    def test_payload_round_trip(self, exc, expect):
        payload = error_payload(exc)
        assert payload["type"] == type(exc).__name__
        assert payload["message"] == str(exc)
        for key, value in expect.items():
            assert payload[key] == value
        with pytest.raises(type(exc)) as info:
            raise_error(payload)
        assert str(info.value) == str(exc)
        for key, value in expect.items():
            assert getattr(info.value, key) == value

    def test_txn_aborted_flag_travels(self):
        payload = error_payload(
            TransactionAborted("gone", reason="disconnect"), txn_aborted=True
        )
        assert payload["txn_aborted"] is True
        with pytest.raises(TransactionAborted) as info:
            raise_error(payload)
        assert info.value.txn_aborted is True

    def test_unknown_subtype_degrades_to_named_ancestor(self):
        class Exotic(StateError):
            pass

        assert error_payload(Exotic("odd"))["type"] == "StateError"

    def test_unknown_type_name_degrades_to_repro_error(self):
        with pytest.raises(ReproError):
            raise_error({"type": "NoSuchError", "message": "m"})


class TestMalformedOverTheWire:
    """ISSUE satellite: malformed statements round-trip with positions."""

    @pytest.mark.parametrize(
        "stmt",
        [
            "SELECT",
            "SELECT * FROM nope",
            "SELECT wat FROM emp",
            "SELECT * FROM emp WHERE name LIKE '%J'",
            "SELECT * FROM emp WHERE salary >",
            "SELECT *, COUNT(*) FROM emp",
        ],
    )
    def test_sql_error_carries_position(self, client, stmt):
        with pytest.raises(SqlError) as info:
            client.execute(stmt)
        assert info.value.position is not None
        assert 0 <= info.value.position <= len(stmt)

    def test_bank_syntax_error_positions(self, client):
        with pytest.raises(SqlError) as info:
            client.execute("ADD zero 5")
        assert info.value.position == 4
        with pytest.raises(SqlError) as info:
            client.execute("GET 1 trailing")
        assert info.value.position == 6
        with pytest.raises(SqlError) as info:
            client.execute("ADD 1")
        assert info.value.position == 5  # end of statement: missing delta

    def test_typed_errors_do_not_kill_the_connection(self, client):
        for _ in range(3):
            with pytest.raises(SqlError):
                client.execute("SELECT wat FROM emp")
        assert client.execute("PING")["ok"] is True

    def test_missing_stmt_field_is_protocol_error(self, server):
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=10)
        try:
            decoder = FrameDecoder()
            hello = None
            while hello is None:
                msgs = decoder.feed(sock.recv(65536))
                hello = msgs[0] if msgs else None
            sock.sendall(encode_frame({"id": 1, "nope": True}))
            reply = None
            while reply is None:
                msgs = decoder.feed(sock.recv(65536))
                reply = msgs[0] if msgs else None
            assert reply["ok"] is False
            assert reply["error"]["type"] == "ProtocolError"
        finally:
            sock.close()

    def test_client_surfaces_server_gone(self, server):
        client = ServerClient(*server.address)
        client._sock.close()
        client.closed = False  # simulate a peer that vanished underneath
        with pytest.raises((ProtocolError, OSError)):
            client.execute("PING")
