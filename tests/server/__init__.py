"""Multi-session server tests (tier 1)."""
