"""Session semantics: transactions, admission, reuse views, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro import MainMemoryDatabase
from repro.errors import (
    AdmissionRejected,
    SessionError,
    StateError,
    TransactionAborted,
)
from repro.governor import GovernorConfig
from repro.server import ServerClient, SessionManager

from tests.server.conftest import build_corpus_db


def make_manager(**kwargs):
    defaults = dict(
        n_accounts=8,
        initial_balance=100,
        group_size=2,
        group_delay=0.002,
        lock_wait_timeout=2.0,
    )
    defaults.update(kwargs)
    return SessionManager(**defaults)


class TestTransactions:
    def test_begin_commit_visible(self):
        mgr = make_manager()
        try:
            s = mgr.open_session()
            s.execute("BEGIN")
            assert s.execute("ADD 0 -10").value == 90
            assert s.execute("ADD 1 10").value == 110
            info = s.execute("COMMIT")
            assert info.meta["group_size"] >= 1
            assert s.execute("GET 0").value == 90
            assert s.execute("AUDIT").value == 800
        finally:
            mgr.close()

    def test_rollback_restores_values(self):
        mgr = make_manager()
        try:
            s = mgr.open_session()
            s.execute("BEGIN")
            s.execute("SET 3 1")
            s.execute("ROLLBACK")
            assert s.execute("GET 3").value == 100
        finally:
            mgr.close()

    def test_autocommit_outside_transaction(self):
        mgr = make_manager()
        try:
            s = mgr.open_session()
            result = s.execute("ADD 2 5")
            assert result.meta["autocommit"] is True
            assert s.txn is None
            assert mgr.bank.bank_stats()["commits"] == 1
        finally:
            mgr.close()

    def test_double_begin_rejected(self):
        mgr = make_manager()
        try:
            s = mgr.open_session()
            s.execute("BEGIN")
            with pytest.raises(StateError):
                s.execute("BEGIN")
        finally:
            mgr.close()

    def test_commit_without_transaction_rejected(self):
        mgr = make_manager()
        try:
            with pytest.raises(StateError):
                mgr.open_session().execute("COMMIT")
        finally:
            mgr.close()

    def test_writer_blocks_reader_until_commit(self, server):
        c1 = ServerClient(*server.address)
        c2 = ServerClient(*server.address)
        try:
            c1.execute("BEGIN")
            c1.execute("ADD 0 -10")
            seen = []
            reader = threading.Thread(
                target=lambda: seen.append(c2.value("GET 0"))
            )
            reader.start()
            time.sleep(0.1)
            assert not seen, "reader must block on the writer's X lock"
            c1.execute("COMMIT")
            reader.join(timeout=5)
            assert seen == [90]
        finally:
            c1.close()
            c2.close()

    def test_deadlock_victim_aborts_survivor_commits(self, server):
        c1 = ServerClient(*server.address)
        c2 = ServerClient(*server.address)
        try:
            c1.execute("BEGIN")
            c2.execute("BEGIN")
            c1.execute("ADD 0 -1")
            c2.execute("ADD 1 -1")
            outcome = {}

            def blocked_add():
                try:
                    outcome["c1"] = c1.value("ADD 1 1")
                except TransactionAborted as exc:
                    outcome["c1_aborted"] = exc.reason

            t = threading.Thread(target=blocked_add)
            t.start()
            time.sleep(0.1)
            # c2 closes the wait-for cycle and becomes the victim.
            with pytest.raises(TransactionAborted) as info:
                c2.execute("ADD 0 1")
            assert info.value.reason == "deadlock"
            assert getattr(info.value, "txn_aborted", False) is True
            t.join(timeout=5)
            # c2's ADD 1 -1 was rolled back, so c1 saw 100 + 1 = 101.
            assert outcome.get("c1") == 101
            c1.execute("COMMIT")
            assert c1.value("GET 0") == 99  # victim's +1 never applied
            assert c1.value("GET 1") == 101
        finally:
            c1.close()
            c2.close()


class TestAdmission:
    def test_bank_statement_admission_rejected_when_saturated(self):
        db = MainMemoryDatabase(
            governor=GovernorConfig(max_concurrent=1, max_queue=0)
        )
        mgr = SessionManager(
            db=db, n_accounts=4, statement_timeout=0.5, group_size=1
        )
        try:
            held = db.governor.admit(1)  # occupy the only slot
            try:
                with pytest.raises(AdmissionRejected) as info:
                    mgr.open_session().execute("GET 0")
                assert info.value.reason in ("queue-full", "concurrency")
            finally:
                db.governor.release(held)
            # Slot free again: the statement sails through.
            assert mgr.open_session().execute("GET 0").value == 100
        finally:
            mgr.close()

    def test_admission_counts_in_governor_stats(self):
        mgr = make_manager()
        try:
            s = mgr.open_session()
            for _ in range(3):
                s.execute("GET 0")
            admitted = mgr.db.governor_stats()["admitted"]
            assert admitted >= 3
        finally:
            mgr.close()


class TestReuseViews:
    def test_per_session_views_of_shared_cache(self):
        mgr = SessionManager(db=build_corpus_db(), n_accounts=4)
        try:
            s1 = mgr.open_session()
            s2 = mgr.open_session()
            q = "SELECT name FROM emp WHERE salary > 54000"
            s1.execute(q)
            s2.execute(q)
            # s1 populated the shared cache; s2's identical subplan hits.
            assert s2.reuse_view["hits"] >= 1
            assert s1.reuse_view["hits"] == 0
            assert s1.reuse_view["misses"] >= 1
            shared = mgr.db.reuse_stats()
            assert shared["hits"] >= s2.reuse_view["hits"]
        finally:
            mgr.close()


class TestLifecycle:
    def test_close_session_rolls_back(self):
        mgr = make_manager()
        try:
            s = mgr.open_session()
            s.execute("BEGIN")
            s.execute("SET 0 0")
            assert mgr.close_session(s.session_id) is True
            assert mgr.close_session(s.session_id) is False
            # The disconnect released the X lock and undid the write.
            assert mgr.bank.locks.holders(0) == {}
            probe = mgr.open_session()
            assert probe.execute("GET 0").value == 100
        finally:
            mgr.close()

    def test_closed_session_rejects_statements(self):
        mgr = make_manager()
        try:
            s = mgr.open_session()
            mgr.close_session(s.session_id)
            with pytest.raises(SessionError):
                s.execute("PING")
        finally:
            mgr.close()

    def test_stats_statement_reports_engine_and_session(self, client):
        value = client.execute("STATS")["value"]
        assert value["session"]["session"] == client.session_id
        assert "bank" in value and "governor" in value and "reuse" in value

    def test_server_stop_is_clean(self):
        from repro.server import DatabaseServer

        srv = DatabaseServer(n_accounts=4)
        host, port = srv.start_in_thread()
        with ServerClient(host, port) as c:
            assert c.execute("PING")["ok"] is True
        srv.stop()
        assert srv.manager.bank.bank_stats()["crashed"] is False

    def test_facade_serve_helper(self):
        db = build_corpus_db()
        srv = db.serve(n_accounts=4)
        try:
            with ServerClient(*srv.address) as c:
                rows = c.rows("SELECT dname FROM dept")
                assert sorted(r[0] for r in rows) == ["books", "tools", "toys"]
                assert c.value("AUDIT") == 400
        finally:
            srv.stop()
