"""Unit tests for the shared join machinery (spec, schema, result)."""

import pytest

from repro.cost.parameters import TABLE2_DEFAULTS, CostParameters
from repro.join.base import JoinAlgorithm, JoinResult, JoinSpec, join_schema
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema

from tests.conftest import build_relation


class TestJoinSchema:
    def test_no_clash_keeps_names(self):
        r = build_relation("r", range(5))
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = build_relation("s", range(5), schema=s_schema)
        schema = join_schema(r, s)
        assert schema.names == ["key", "payload", "skey", "sv"]

    def test_clash_prefixes_everything(self):
        r = build_relation("r", range(5))
        s = build_relation("s", range(5))
        schema = join_schema(r, s)
        assert schema.names == ["r_key", "r_payload", "s_key", "s_payload"]

    def test_width_is_sum(self):
        r = build_relation("r", range(5))
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = build_relation("s", range(5), schema=s_schema)
        assert join_schema(r, s).tuple_bytes == (
            r.schema.tuple_bytes + s.schema.tuple_bytes
        )


class TestJoinSpecHelpers:
    def make(self, memory=16):
        r = build_relation("r", range(40))
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = build_relation("s", range(120), schema=s_schema)
        params = CostParameters(
            r_pages=r.page_count, s_pages=s.page_count,
            r_tuples_per_page=8, s_tuples_per_page=8,
        )
        return JoinSpec(r=r, s=s, r_field="key", s_field="skey",
                        memory_pages=memory, params=params)

    def test_memory_tuples_applies_fudge(self):
        spec = self.make(memory=12)
        # 12 pages * 8 tuples / 1.2 fudge = 80 tuples.
        assert spec.memory_tuples(8) == 80

    def test_table_pages(self):
        spec = self.make()
        assert spec.table_pages(80, 8) == pytest.approx(12.0)

    def test_r_fits_in_memory(self):
        assert self.make(memory=16).r_fits_in_memory()  # 5 pages * 1.2 = 6
        assert not self.make(memory=4).r_fits_in_memory()

    def test_key_extractors(self):
        spec = self.make()
        row = next(iter(spec.r))
        assert spec.r_key(row) == row[0]


class TestJoinResult:
    def test_report_and_modelled_seconds(self):
        from repro.join import NestedLoopsJoin

        r = build_relation("r", range(20))
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = build_relation("s", range(20), schema=s_schema)
        spec = JoinSpec(r=r, s=s, r_field="key", s_field="skey",
                        memory_pages=16,
                        params=CostParameters(r_pages=3, s_pages=3,
                                              r_tuples_per_page=8,
                                              s_tuples_per_page=8))
        result = NestedLoopsJoin().join(spec)
        assert result.cardinality == 20
        report = result.report()
        assert report.label == "nested-loops"
        assert report.total_seconds == pytest.approx(result.modelled_seconds)

    def test_counters_are_snapshot(self):
        from repro.join import NestedLoopsJoin

        r = build_relation("r", range(8))
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = build_relation("s", range(8), schema=s_schema)
        algo = NestedLoopsJoin()
        spec = JoinSpec(r=r, s=s, r_field="key", s_field="skey",
                        memory_pages=8,
                        params=CostParameters(r_pages=1, s_pages=1,
                                              r_tuples_per_page=8,
                                              s_tuples_per_page=8))
        result = algo.join(spec)
        before = result.counters.comparisons
        algo.counters.compare(100)  # later activity on the algorithm
        assert result.counters.comparisons == before


class TestHeapCharging:
    def test_charge_heap_op_scales_logarithmically(self):
        from repro.join import SortMergeJoin

        algo = SortMergeJoin()
        algo.charge_heap_op(1)
        small = algo.counters.comparisons
        algo.counters.reset()
        algo.charge_heap_op(1023)
        large = algo.counters.comparisons
        assert large == 10  # log2(1024)
        assert small <= 2
        assert algo.counters.swaps == 10
