"""Tests for the Section 3 closed-form join costs (Figure 1 shape)."""

import math

import pytest

from repro.cost.join_model import (
    JoinCostModel,
    JoinWorkload,
    figure1_series,
    grace_hash_cost,
    hybrid_hash_cost,
    hybrid_partition_plan,
    simple_hash_cost,
    simple_hash_passes,
    sort_merge_cost,
)
from repro.cost.parameters import TABLE2_DEFAULTS

MODEL = JoinCostModel(TABLE2_DEFAULTS)


def workload(ratio: float) -> JoinWorkload:
    return JoinWorkload(
        params=TABLE2_DEFAULTS,
        memory_pages=TABLE2_DEFAULTS.memory_for_ratio(ratio),
    )


class TestTwoPassGuard:
    def test_below_sqrt_sf_rejected(self):
        tiny = JoinWorkload(params=TABLE2_DEFAULTS, memory_pages=50)
        with pytest.raises(ValueError):
            sort_merge_cost(tiny)
        with pytest.raises(ValueError):
            grace_hash_cost(tiny)
        with pytest.raises(ValueError):
            hybrid_hash_cost(tiny)

    def test_simple_hash_has_no_floor(self):
        tiny = JoinWorkload(params=TABLE2_DEFAULTS, memory_pages=50)
        assert simple_hash_cost(tiny) > 0


class TestSimpleHash:
    def test_one_pass_when_r_fits(self):
        assert simple_hash_passes(workload(1.0)) == 1

    def test_pass_count(self):
        assert simple_hash_passes(workload(0.25)) == 4
        assert simple_hash_passes(workload(0.5)) == 2

    def test_one_pass_cost_is_pure_cpu(self):
        p = TABLE2_DEFAULTS
        expected = p.r_tuples * (p.hash + p.move) + p.s_tuples * (
            p.hash + p.comp * p.fudge
        )
        assert simple_hash_cost(workload(1.0)) == pytest.approx(expected)

    def test_cost_blows_up_as_memory_shrinks(self):
        costs = [simple_hash_cost(workload(r)) for r in (0.011, 0.05, 0.2, 1.0)]
        assert costs == sorted(costs, reverse=True)
        # The low-memory end is catastrophically worse (quadratic rescans).
        assert costs[0] > 20 * costs[-1]


class TestGrace:
    def test_flat_in_memory(self):
        """GRACE never exploits memory beyond the two-pass floor."""
        a = grace_hash_cost(workload(0.02))
        b = grace_hash_cost(workload(1.0))
        assert a == pytest.approx(b)

    def test_grace_value_matches_hand_calculation(self):
        p = TABLE2_DEFAULTS
        expected = (
            (p.r_tuples + p.s_tuples) * p.hash * 2
            + (p.r_tuples + p.s_tuples) * p.move
            + p.r_tuples * p.move
            + p.s_tuples * p.fudge * p.comp
            + (p.r_pages + p.s_pages) * (p.io_rand + p.io_seq)
        )
        assert grace_hash_cost(workload(0.5)) == pytest.approx(expected)


class TestHybrid:
    def test_partition_plan_when_r_fits(self):
        b, q = hybrid_partition_plan(workload(1.0))
        assert (b, q) == (0, 1.0)

    def test_partition_plan_small_memory(self):
        w = workload(0.1)
        b, q = hybrid_partition_plan(w)
        assert b >= 1
        assert 0.0 < q < 0.2
        # Every spilled bucket must fit in memory when rebuilt.
        p = TABLE2_DEFAULTS
        spilled_pages = p.r_pages * p.fudge * (1 - q)
        assert spilled_pages / b <= w.memory_pages + 1e-9

    def test_equals_simple_hash_when_r_fits(self):
        assert hybrid_hash_cost(workload(1.0)) == pytest.approx(
            simple_hash_cost(workload(1.0))
        )

    def test_approaches_grace_at_the_floor(self):
        floor = TABLE2_DEFAULTS.minimum_memory_pages
        w = JoinWorkload(params=TABLE2_DEFAULTS, memory_pages=floor)
        assert hybrid_hash_cost(w) == pytest.approx(
            grace_hash_cost(w), rel=0.02
        )

    def test_monotone_improvement_with_memory(self):
        costs = [hybrid_hash_cost(workload(r)) for r in (0.02, 0.1, 0.3, 0.7, 1.0)]
        assert costs == sorted(costs, reverse=True)

    def test_discontinuity_at_half(self):
        """The paper: one output buffer above ratio 0.5 turns the spill
        writes sequential, producing an abrupt drop."""
        below = hybrid_hash_cost(workload(0.495))
        above = hybrid_hash_cost(workload(0.505))
        assert below > above
        # The jump is macroscopic, not numerical noise.
        assert below - above > 50.0

    def test_dominates_grace_everywhere(self):
        for ratio in (0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0):
            assert hybrid_hash_cost(workload(ratio)) <= grace_hash_cost(
                workload(ratio)
            ) * 1.001


class TestSortMerge:
    def test_worst_of_two_pass_methods_in_core_range(self):
        for ratio in (0.05, 0.1, 0.3, 0.6, 1.0):
            w = workload(ratio)
            assert sort_merge_cost(w) > hybrid_hash_cost(w)
            assert sort_merge_cost(w) > grace_hash_cost(w)

    def test_improves_to_cpu_only_beyond_the_chart(self):
        """"Sort-merge will improve to approximately 900 seconds" above a
        memory ratio of 1.0 (both relations resident)."""
        in_core = JoinWorkload(
            params=TABLE2_DEFAULTS,
            memory_pages=int(
                (TABLE2_DEFAULTS.r_pages + TABLE2_DEFAULTS.s_pages)
                * TABLE2_DEFAULTS.fudge
            ),
        )
        cost = sort_merge_cost(in_core)
        assert 800 < cost < 1100  # the paper says ~900 seconds
        assert cost < sort_merge_cost(workload(1.0))


class TestFigure1Series:
    def test_default_sweep_covers_floor_to_one(self):
        rows = figure1_series(TABLE2_DEFAULTS)
        assert rows[0]["ratio"] < 0.02
        assert rows[-1]["ratio"] == pytest.approx(1.0)
        assert all(
            set(r) >= {"sort-merge", "simple-hash", "grace-hash", "hybrid-hash"}
            for r in rows
        )

    def test_hybrid_wins_at_high_memory(self):
        rows = figure1_series(TABLE2_DEFAULTS)
        last = rows[-1]
        assert last["hybrid-hash"] <= min(
            last["sort-merge"], last["grace-hash"], last["simple-hash"] + 1e-9
        )

    def test_best_algorithm_is_always_a_hash(self):
        """Section 4's premise: with |M| >= sqrt(|S|F), a hash algorithm is
        fastest everywhere on the sweep."""
        for row in figure1_series(TABLE2_DEFAULTS):
            best = min(
                ("sort-merge", "simple-hash", "grace-hash", "hybrid-hash"),
                key=row.__getitem__,
            )
            assert best != "sort-merge"

    def test_explicit_ratios_respected(self):
        rows = figure1_series(TABLE2_DEFAULTS, ratios=[0.2, 0.4])
        assert [r["ratio"] for r in rows] == [0.2, 0.4]


class TestModelHelper:
    def test_costs_keys(self):
        costs = MODEL.costs(6000)
        assert set(costs) == {
            "sort-merge",
            "simple-hash",
            "grace-hash",
            "hybrid-hash",
        }

    def test_best_at_full_memory_is_hash(self):
        assert MODEL.best(12_000) in ("hybrid-hash", "simple-hash")

    def test_validate_memory(self):
        with pytest.raises(ValueError):
            MODEL.validate_memory(10)
