"""Tests for predicates and selection operators."""

import pytest

from repro.access.btree import BPlusTree
from repro.access.hash_index import HashIndex
from repro.cost.counters import OperationCounters
from repro.operators.selection import (
    And,
    Comparison,
    Not,
    Or,
    select,
    select_via_index,
)

from tests.conftest import build_relation


@pytest.fixture
def rel():
    return build_relation("t", range(100))


class TestComparison:
    def test_operators(self, rel):
        row = (50, 0)
        schema = rel.schema
        assert Comparison("key", "=", 50).evaluate(schema, row)
        assert Comparison("key", "!=", 51).evaluate(schema, row)
        assert Comparison("key", "<", 51).evaluate(schema, row)
        assert Comparison("key", "<=", 50).evaluate(schema, row)
        assert Comparison("key", ">", 49).evaluate(schema, row)
        assert Comparison("key", ">=", 50).evaluate(schema, row)
        assert not Comparison("key", ">", 50).evaluate(schema, row)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("key", "~", 1)

    def test_metadata(self):
        pred = Comparison("key", "=", 5)
        assert pred.is_equality
        assert pred.columns() == ["key"]
        assert pred.comparisons() == 1


class TestCombinators:
    def test_and_or_not(self, rel):
        schema = rel.schema
        p = And(Comparison("key", ">=", 10), Comparison("key", "<", 20))
        assert p.evaluate(schema, (15, 0))
        assert not p.evaluate(schema, (25, 0))
        q = Or(Comparison("key", "=", 1), Comparison("key", "=", 2))
        assert q.evaluate(schema, (2, 0))
        assert not q.evaluate(schema, (3, 0))
        n = Not(Comparison("key", "=", 1))
        assert n.evaluate(schema, (2, 0))

    def test_operator_overloads(self, rel):
        schema = rel.schema
        p = Comparison("key", ">", 5) & Comparison("key", "<", 8)
        assert p.evaluate(schema, (6, 0))
        q = Comparison("key", "=", 1) | Comparison("key", "=", 2)
        assert q.evaluate(schema, (1, 0))
        n = ~Comparison("key", "=", 1)
        assert n.evaluate(schema, (9, 0))

    def test_comparison_counts_compose(self):
        p = (Comparison("a", "=", 1) & Comparison("b", "=", 2)) | Comparison(
            "c", "=", 3
        )
        assert p.comparisons() == 3
        assert sorted(p.columns()) == ["a", "b", "c"]


class TestSelect:
    def test_scan_select(self, rel):
        out = select(rel, Comparison("key", "<", 10))
        assert sorted(row[0] for row in out) == list(range(10))
        assert out.schema == rel.schema

    def test_empty_result(self, rel):
        out = select(rel, Comparison("key", ">", 1000))
        assert out.cardinality == 0

    def test_charges_comparisons(self, rel):
        counters = OperationCounters()
        select(rel, Comparison("key", "=", 5), counters)
        assert counters.comparisons == 100

    def test_compound_charges_per_leaf(self, rel):
        counters = OperationCounters()
        pred = Comparison("key", ">", 5) & Comparison("key", "<", 10)
        select(rel, pred, counters)
        assert counters.comparisons == 200


class TestSelectViaIndex:
    def build_index(self, rel, cls):
        index = cls()
        for tid, row in rel.scan():
            index.insert(row[0], tid)
        return index

    def test_equality_via_hash(self, rel):
        index = self.build_index(rel, HashIndex)
        out = select_via_index(rel, index, Comparison("key", "=", 42))
        assert list(out) == [(42, 42)]

    def test_equality_via_btree(self, rel):
        index = self.build_index(rel, BPlusTree)
        out = select_via_index(rel, index, Comparison("key", "=", 42))
        assert list(out) == [(42, 42)]

    def test_range_via_btree(self, rel):
        index = self.build_index(rel, BPlusTree)
        out = select_via_index(rel, index, Comparison("key", "<=", 5))
        assert sorted(row[0] for row in out) == [0, 1, 2, 3, 4, 5]
        out = select_via_index(rel, index, Comparison("key", "<", 5))
        assert sorted(row[0] for row in out) == [0, 1, 2, 3, 4]
        out = select_via_index(rel, index, Comparison("key", ">", 97))
        assert sorted(row[0] for row in out) == [98, 99]
        out = select_via_index(rel, index, Comparison("key", ">=", 97))
        assert sorted(row[0] for row in out) == [97, 98, 99]

    def test_range_via_hash_rejected(self, rel):
        index = self.build_index(rel, HashIndex)
        with pytest.raises(ValueError):
            select_via_index(rel, index, Comparison("key", "<", 5))

    def test_inequality_rejected(self, rel):
        index = self.build_index(rel, BPlusTree)
        with pytest.raises(ValueError):
            select_via_index(rel, index, Comparison("key", "!=", 5))

    def test_index_and_scan_agree(self, rel):
        index = self.build_index(rel, BPlusTree)
        pred = Comparison("key", ">=", 30)
        via_index = sorted(select_via_index(rel, index, pred))
        via_scan = sorted(select(rel, pred))
        assert via_index == via_scan
