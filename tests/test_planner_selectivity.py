"""Tests for Selinger-style selectivity estimation."""

import pytest

from repro.operators.selection import And, Comparison, Not, Or
from repro.planner.selectivity import (
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    estimate_selectivity,
    join_selectivity,
)
from repro.storage.catalog import ColumnStats, RelationStats


@pytest.fixture
def stats():
    return RelationStats(
        cardinality=1000,
        page_count=25,
        columns={
            "id": ColumnStats(distinct=1000, minimum=0, maximum=999),
            "grade": ColumnStats(distinct=5, minimum=1, maximum=5),
            "name": ColumnStats(distinct=200),
        },
    )


class TestComparisons:
    def test_equality_uses_distinct(self, stats):
        assert estimate_selectivity(
            Comparison("grade", "=", 3), stats
        ) == pytest.approx(0.2)
        assert estimate_selectivity(
            Comparison("id", "=", 7), stats
        ) == pytest.approx(0.001)

    def test_equality_fallback(self, stats):
        pred = Comparison("unknown", "=", 1)
        assert estimate_selectivity(pred, stats) == DEFAULT_EQUALITY_SELECTIVITY

    def test_inequality_is_complement(self, stats):
        assert estimate_selectivity(
            Comparison("grade", "!=", 3), stats
        ) == pytest.approx(0.8)

    def test_range_uses_min_max(self, stats):
        assert estimate_selectivity(
            Comparison("id", "<", 500), stats
        ) == pytest.approx(500 / 999)
        assert estimate_selectivity(
            Comparison("id", ">", 899), stats
        ) == pytest.approx(100 / 999)

    def test_range_clamped(self, stats):
        assert estimate_selectivity(Comparison("id", "<", -5), stats) == 0.0
        assert estimate_selectivity(Comparison("id", ">", -5), stats) == 1.0

    def test_range_fallback_for_strings(self, stats):
        pred = Comparison("name", "<", "M")
        assert estimate_selectivity(pred, stats) == DEFAULT_RANGE_SELECTIVITY

    def test_single_valued_column(self):
        stats = RelationStats(
            cardinality=10,
            columns={"c": ColumnStats(distinct=1, minimum=5, maximum=5)},
        )
        assert estimate_selectivity(Comparison("c", "<", 10), stats) == 1.0
        assert estimate_selectivity(Comparison("c", "<", 3), stats) == 0.0


class TestCombinators:
    def test_and_multiplies(self, stats):
        pred = And(Comparison("grade", "=", 3), Comparison("id", "<", 500))
        expected = 0.2 * (500 / 999)
        assert estimate_selectivity(pred, stats) == pytest.approx(expected)

    def test_or_inclusion_exclusion(self, stats):
        pred = Or(Comparison("grade", "=", 3), Comparison("grade", "=", 4))
        assert estimate_selectivity(pred, stats) == pytest.approx(
            0.2 + 0.2 - 0.04
        )

    def test_not_complements(self, stats):
        pred = Not(Comparison("grade", "=", 3))
        assert estimate_selectivity(pred, stats) == pytest.approx(0.8)

    def test_never_exceeds_one(self, stats):
        pred = Or(Comparison("id", ">", -5), Comparison("id", ">", -5))
        assert estimate_selectivity(pred, stats) <= 1.0


class TestJoinSelectivity:
    def test_uses_larger_domain(self):
        assert join_selectivity(100, 1000) == pytest.approx(0.001)

    def test_guards_against_zero(self):
        assert join_selectivity(0, 0) == 1.0
