"""Tests for wait-for-graph deadlock detection and resolution.

The paper lists concurrency control as future work; the engine ships a
classic detector: on every blocked lock request, search the wait-for graph
for a cycle through the requester and abort it (the requester is never
pre-committed, so the abort is always legal).
"""

import pytest

from repro.recovery.lock_table import LockMode, LockTable
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.restart import crash, recover, replay_committed
from repro.recovery.state import DatabaseState
from repro.recovery.transactions import TransactionEngine, TransactionState
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


class TestWaitForGraph:
    def test_simple_cycle_detected(self):
        table = LockTable()
        table.acquire(1, "a", LockMode.EXCLUSIVE)
        table.acquire(2, "b", LockMode.EXCLUSIVE)
        table.acquire(1, "b", LockMode.EXCLUSIVE)  # 1 waits for 2
        table.acquire(2, "a", LockMode.EXCLUSIVE)  # 2 waits for 1: cycle
        cycle = table.find_deadlock(2)
        assert cycle is not None
        assert set(cycle) == {1, 2}
        assert cycle[0] == 2

    def test_no_cycle_for_plain_wait(self):
        table = LockTable()
        table.acquire(1, "a", LockMode.EXCLUSIVE)
        table.acquire(2, "a", LockMode.EXCLUSIVE)
        assert table.find_deadlock(2) is None

    def test_three_party_cycle(self):
        table = LockTable()
        for tid, obj in ((1, "a"), (2, "b"), (3, "c")):
            table.acquire(tid, obj, LockMode.EXCLUSIVE)
        table.acquire(1, "b", LockMode.EXCLUSIVE)
        table.acquire(2, "c", LockMode.EXCLUSIVE)
        table.acquire(3, "a", LockMode.EXCLUSIVE)
        cycle = table.find_deadlock(3)
        assert cycle is not None
        assert set(cycle) == {1, 2, 3}

    def test_waiters_ahead_count_as_dependencies(self):
        """FIFO queues: a waiter behind another waiter depends on it."""
        table = LockTable()
        table.acquire(1, "a", LockMode.EXCLUSIVE)
        table.acquire(2, "a", LockMode.EXCLUSIVE)  # 2 queued behind 1
        table.acquire(3, "a", LockMode.EXCLUSIVE)  # 3 queued behind 1, 2
        edges = table.wait_for_edges()
        assert edges[3] >= {1, 2}

    def test_cancel_wait_removes_from_queues(self):
        table = LockTable()
        table.acquire(1, "a", LockMode.EXCLUSIVE)
        table.acquire(2, "a", LockMode.EXCLUSIVE)
        table.cancel_wait(2)
        assert table.waiters("a") == []


class TestEngineResolution:
    @pytest.fixture
    def engine(self):
        queue = EventQueue(SimulatedClock())
        state = DatabaseState(50, records_per_page=8, initial_value=0)
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        return queue, lm, TransactionEngine(state, queue, lm)

    def test_two_txn_deadlock_resolved(self, engine):
        queue, lm, eng = engine

        # Freeze two transactions mid-script with external locks so their
        # second steps collide cross-wise.
        eng.locks.acquire(998, 10, LockMode.EXCLUSIVE)
        eng.locks.acquire(999, 11, LockMode.EXCLUSIVE)
        t1 = eng.submit([("write", 0, 1), ("write", 10, 1), ("write", 1, 1)])
        t2 = eng.submit([("write", 1, 2), ("write", 11, 2), ("write", 0, 2)])
        assert t1.state is TransactionState.WAITING  # on 10
        assert t2.state is TransactionState.WAITING  # on 11

        # Release the external locks: t1 proceeds to want 1 (held by t2),
        # t2 proceeds to want 0 (held by t1) -> cycle -> victim aborted.
        eng._resume_granted(eng.locks.precommit(998))
        eng._resume_granted(eng.locks.precommit(999))

        assert eng.deadlocks_resolved == 1
        states = {t1.state, t2.state}
        assert TransactionState.ABORTED in states
        # The survivor completed.
        assert TransactionState.PRECOMMITTED in states or (
            TransactionState.COMMITTED in states
        )

    def test_deadlock_victims_leave_consistent_state(self, engine):
        queue, lm, eng = engine
        eng.locks.acquire(998, 10, LockMode.EXCLUSIVE)
        eng.locks.acquire(999, 11, LockMode.EXCLUSIVE)
        t1 = eng.submit([("write", 0, 1), ("write", 10, 1), ("write", 1, 1)])
        t2 = eng.submit([("write", 1, 2), ("write", 11, 2), ("write", 0, 2)])
        eng._resume_granted(eng.locks.precommit(998))
        eng._resume_granted(eng.locks.precommit(999))
        lm.flush()
        queue.run_to_completion()

        cs = crash(eng)
        out = recover(cs, initial_value=0)
        oracle = replay_committed(cs, initial_value=0)
        assert out.state.values == oracle.values
        # Exactly one of records 0 and 1 pair carries the survivor's
        # value; the victim's writes were rolled back.
        survivor = t1 if t2.state is TransactionState.ABORTED else t2
        victim = t2 if survivor is t1 else t1
        assert victim.state is TransactionState.ABORTED
        assert out.state.read(0) == (1 if survivor is t1 else 2)
        assert out.state.read(1) == (1 if survivor is t1 else 2)

    def test_sorted_access_never_deadlocks(self, engine):
        """Canonical resource ordering (what the banking workload uses)
        cannot deadlock: the detector should never fire."""
        queue, lm, eng = engine
        import random

        rng = random.Random(5)
        for i in range(200):
            a, b = sorted(rng.sample(range(50), 2))
            eng.submit(
                [("write", a, lambda v: v + 1), ("write", b, lambda v: v - 1)]
            )
        lm.flush()
        queue.run_to_completion()
        assert eng.deadlocks_resolved == 0
        assert eng.committed_count == 200
