"""Tests for battery-backed stable memory."""

import pytest

from repro.recovery.records import DEFAULT_SIZING, CommitRecord, UpdateRecord
from repro.recovery.stable_memory import StableMemory, StableMemoryFullError
from repro.recovery.state import DirtyPageTable


class TestLogTail:
    def test_append_and_pending(self):
        sm = StableMemory(4096)
        rec = CommitRecord(tid=1)
        sm.append_record(rec)
        assert sm.pending_records() == [rec]
        assert sm.used_bytes == DEFAULT_SIZING.commit_bytes

    def test_capacity_rejects_overflow(self):
        sm = StableMemory(150)
        sm.append_record(UpdateRecord(tid=1))  # 144 bytes
        with pytest.raises(StableMemoryFullError):
            sm.append_record(CommitRecord(tid=1))  # +20 > 150

    def test_release_frees_space(self):
        sm = StableMemory(400)
        for i in range(2):
            sm.append_record(UpdateRecord(tid=i))
        released = sm.release_records(1)
        assert len(released) == 1
        assert released[0].tid == 0
        assert sm.used_bytes == DEFAULT_SIZING.update_bytes
        sm.append_record(UpdateRecord(tid=9))  # fits again

    def test_release_too_many_rejected(self):
        sm = StableMemory(400)
        sm.append_record(CommitRecord(tid=1))
        with pytest.raises(ValueError):
            sm.release_records(2)

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            StableMemory(0)


class TestDirtyPageTableInStableMemory:
    def test_first_update_wins(self):
        sm = StableMemory(4096)
        sm.note_page_update(7, lsn=100)
        sm.note_page_update(7, lsn=200)  # later update does not move it
        assert sm.dirty_entries() == {7: 100}

    def test_redo_start_is_minimum(self):
        sm = StableMemory(4096)
        sm.note_page_update(1, 50)
        sm.note_page_update(2, 10)
        sm.note_page_update(3, 99)
        assert sm.redo_start_lsn() == 10

    def test_checkpoint_resets_status(self):
        sm = StableMemory(4096)
        sm.note_page_update(1, 50)
        sm.clear_page(1)
        assert sm.redo_start_lsn() is None
        sm.note_page_update(1, 70)  # next update re-enters
        assert sm.redo_start_lsn() == 70

    def test_table_charges_capacity(self):
        sm = StableMemory(4096)
        before = sm.free_bytes
        sm.note_page_update(1, 1)
        assert sm.free_bytes == before - 16


class TestStandaloneDirtyPageTable:
    def test_mirrors_stable_table_semantics(self):
        t = DirtyPageTable()
        t.note(3, 30)
        t.note(3, 40)
        t.note(5, 10)
        assert t.redo_start() == 10
        t.checkpointed(5)
        assert t.redo_start() == 30
        t.checkpointed(3)
        assert t.redo_start() is None


def test_capacity_fix_for_first_test():
    """The fragment above documents the boundary; assert it explicitly."""
    sm = StableMemory(100)
    with pytest.raises(StableMemoryFullError):
        sm.append_record(UpdateRecord(tid=1))
