"""Edge cases for core/rwlock.py the PR-8 suite skipped.

Three behaviors the catalog lock's §5 role depends on: writer
preference must hold under a reader stampede (a stream of cheap reads
cannot starve DDL), the owning writer may re-enter the read side, and
a write-side timeout must withdraw the waiting-writer claim instead of
wedging the lock against readers.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.rwlock import ReadWriteLock
from repro.errors import StateError


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class TestWriterPreferenceUnderStampede:
    def test_new_readers_park_behind_waiting_writer(self):
        rw = ReadWriteLock("test.rwlock.stampede")
        n_initial = 3
        release_readers = threading.Event()
        holding = threading.Barrier(n_initial + 1)

        def initial_reader():
            with rw.read_locked():
                holding.wait(timeout=5.0)
                release_readers.wait(timeout=5.0)

        readers = [
            threading.Thread(target=initial_reader, daemon=True)
            for _ in range(n_initial)
        ]
        for t in readers:
            t.start()
        holding.wait(timeout=5.0)
        assert rw.occupancy()["readers"] == n_initial

        writer_in = threading.Event()
        writer_out = threading.Event()

        def writer():
            with rw.write_locked():
                writer_in.set()
            writer_out.set()

        wt = threading.Thread(target=writer, daemon=True)
        wt.start()
        assert _wait_until(
            lambda: rw.occupancy()["writers_waiting"] == 1
        )

        # The stampede: late readers must park behind the waiting
        # writer even though the lock is currently read-held.
        late_done = []

        def late_reader(i):
            with rw.read_locked():
                late_done.append(i)

        late = [
            threading.Thread(target=late_reader, args=(i,), daemon=True)
            for i in range(4)
        ]
        for t in late:
            t.start()
        time.sleep(0.05)
        assert late_done == []  # parked: writer preference holds
        assert rw.occupancy()["readers"] == n_initial
        assert not writer_in.is_set()

        release_readers.set()
        assert writer_in.wait(timeout=5.0)
        assert writer_out.wait(timeout=5.0)
        for t in late:
            t.join(timeout=5.0)
        assert sorted(late_done) == [0, 1, 2, 3]
        for t in readers + [wt]:
            t.join(timeout=5.0)
        occ = rw.occupancy()
        assert occ["readers"] == 0 and not occ["writer_held"]


class TestWriterReentrancy:
    def test_read_while_holding_write(self):
        rw = ReadWriteLock("test.rwlock.reentrant")
        with rw.write_locked():
            # The writing thread may take the read side freely...
            with rw.read_locked():
                assert rw.occupancy()["writer_held"]
                # ...and re-enter the write side below it.
                with rw.write_locked():
                    assert rw.occupancy()["writer_held"]
            assert rw.occupancy()["writer_held"]
        occ = rw.occupancy()
        assert not occ["writer_held"] and occ["readers"] == 0

    def test_reentrant_acquire_write_with_timeout_succeeds(self):
        rw = ReadWriteLock("test.rwlock.reentrant-timeout")
        assert rw.acquire_write(timeout=0.01) is True
        assert rw.acquire_write(timeout=0.01) is True
        rw.release_write()
        rw.release_write()
        assert not rw.occupancy()["writer_held"]

    def test_release_write_by_stranger_raises(self):
        rw = ReadWriteLock("test.rwlock.stranger")
        with pytest.raises(StateError):
            rw.release_write()


class TestWriteTimeout:
    def test_uncontended_timeout_acquire_returns_true(self):
        rw = ReadWriteLock("test.rwlock.timeout-free")
        assert rw.acquire_write(timeout=0.05) is True
        rw.release_write()

    def test_timeout_under_held_read_side(self):
        rw = ReadWriteLock("test.rwlock.timeout")
        release = threading.Event()
        holding = threading.Event()

        def reader():
            with rw.read_locked():
                holding.set()
                release.wait(timeout=5.0)

        rt = threading.Thread(target=reader, daemon=True)
        rt.start()
        assert holding.wait(timeout=5.0)

        start = time.monotonic()
        assert rw.acquire_write(timeout=0.1) is False
        elapsed = time.monotonic() - start
        assert elapsed < 2.0  # gave up, did not block unboundedly

        # The failed writer withdrew its claim: no waiting writer
        # remains, so a fresh reader proceeds immediately.
        assert rw.occupancy()["writers_waiting"] == 0
        got_read = []

        def late_reader():
            with rw.read_locked():
                got_read.append(True)

        lt = threading.Thread(target=late_reader, daemon=True)
        lt.start()
        lt.join(timeout=5.0)
        assert got_read == [True]

        release.set()
        rt.join(timeout=5.0)
        assert rw.acquire_write(timeout=5.0) is True
        rw.release_write()

    def test_timeout_zero_fails_fast_under_reader(self):
        rw = ReadWriteLock("test.rwlock.timeout-zero")
        release = threading.Event()
        holding = threading.Event()

        def reader():
            with rw.read_locked():
                holding.set()
                release.wait(timeout=5.0)

        rt = threading.Thread(target=reader, daemon=True)
        rt.start()
        assert holding.wait(timeout=5.0)
        assert rw.acquire_write(timeout=0.0) is False
        release.set()
        rt.join(timeout=5.0)
