"""Hybrid hash overflow recursion under tiny (and shrinking) grants.

Satellite coverage for ``HybridHashJoin._recurse_on_bucket``: the Section
3.3 recursion must stay correct when the memory grant is minimal from the
start, when it is revoked mid-query (sub-levels plan against the shrunken
budget), and when a bucket is dominated by one unsplittable hot key.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.cost.parameters import CostParameters
from repro.governor import CancellationToken, MemoryGrant, QueryGuard
from repro.join.base import JoinSpec
from repro.join.hybrid_hash import HybridHashJoin
from repro.storage.tuples import DataType, make_schema

from tests.conftest import build_relation


class RecordingHybrid(HybridHashJoin):
    """Counts recursion entries and the depths/budgets they plan with."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.recursions = []

    def _recurse_on_bucket(self, spec, output, r_rows, s_rows, depth,
                           batch=False):
        self.recursions.append(
            (depth + 1, self.effective_memory_pages(spec.memory_pages))
        )
        super()._recurse_on_bucket(spec, output, r_rows, s_rows, depth,
                                   batch=batch)


def reference_join(r, s, r_field, s_field):
    r_idx = r.schema.index_of(r_field)
    s_idx = s.schema.index_of(s_field)
    by_key = {}
    for row in r:
        by_key.setdefault(row[r_idx], []).append(row)
    return Counter(
        r_row + s_row
        for s_row in s
        for r_row in by_key.get(s_row[s_idx], ())
    )


def skewed_instance(seed=23, n=500, domain=60):
    rng = random.Random(seed)
    r = build_relation("r", [rng.randrange(domain) for _ in range(n)])
    s_schema = make_schema(("skey", DataType.INTEGER),
                           ("sval", DataType.INTEGER))
    s = build_relation(
        "s", [rng.randrange(domain) for _ in range(2 * n)], schema=s_schema
    )
    params = CostParameters(
        r_pages=r.page_count, s_pages=s.page_count,
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )

    def spec(memory_pages):
        return JoinSpec(r=r, s=s, r_field="key", s_field="skey",
                        memory_pages=memory_pages, params=params)

    return r, s, spec


def tiny_guard(pages=2):
    """A guard whose grant is already at the revocation floor."""
    grant = MemoryGrant(pages) if pages >= 2 else MemoryGrant(2)
    return QueryGuard(token=CancellationToken(qid=1), grant=grant), grant


class TestTinyGrants:
    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "tuple"])
    def test_floor_grant_recursion_matches_reference(self, batch):
        r, s, spec = skewed_instance()
        expected = reference_join(r, s, "key", "skey")
        guard, _ = tiny_guard(2)
        algo = RecordingHybrid(batch=batch).set_guard(guard)
        result = algo.join(spec(6))
        assert Counter(result.relation) == expected
        # A 2-page capacity cannot hold the spilled buckets: at least one
        # must have recursed, and every sub-level planned at the floor.
        assert algo.recursions
        assert all(pages == 2 for _, pages in algo.recursions)

    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "tuple"])
    def test_depth_never_exceeds_backstop(self, batch):
        r, s, spec = skewed_instance(seed=31, n=800, domain=50)
        guard, _ = tiny_guard(2)
        algo = RecordingHybrid(batch=batch).set_guard(guard)
        result = algo.join(spec(4))
        assert Counter(result.relation) == reference_join(r, s, "key", "skey")
        assert max(d for d, _ in algo.recursions) <= algo.MAX_RECURSION

    def test_mid_query_revocation_shrinks_sub_levels(self):
        r, s, spec = skewed_instance()
        expected = reference_join(r, s, "key", "skey")
        grant = MemoryGrant(8)
        token = CancellationToken(qid=4)
        token.on_check = (
            lambda tok: grant.revoke(2) if tok.checks == 6 else None
        )
        guard = QueryGuard(token=token, grant=grant)
        algo = RecordingHybrid(batch=True).set_guard(guard)
        result = algo.join(spec(8))
        assert grant.revocations == 1
        assert Counter(result.relation) == expected
        # Sub-levels planned against the revoked budget, not the original.
        assert algo.recursions
        assert all(pages == 2 for _, pages in algo.recursions)


class TestHotKeyBuckets:
    @pytest.mark.parametrize("batch", [True, False], ids=["batch", "tuple"])
    def test_unsplittable_hot_key_joins_directly(self, batch):
        # Every R tuple shares one key: repartitioning can never split the
        # bucket, so the join must process it directly instead of
        # recursing MAX_RECURSION levels of useless rewrites.
        r = build_relation("r", [7] * 150)
        s_schema = make_schema(("skey", DataType.INTEGER),
                               ("sval", DataType.INTEGER))
        s = build_relation("s", [7] * 200 + [11] * 100, schema=s_schema)
        params = CostParameters(
            r_pages=r.page_count, s_pages=s.page_count,
            r_tuples_per_page=r.tuples_per_page,
            s_tuples_per_page=s.tuples_per_page,
        )
        guard, _ = tiny_guard(2)
        algo = RecordingHybrid(batch=batch).set_guard(guard)
        result = algo.join(
            JoinSpec(r=r, s=s, r_field="key", s_field="skey",
                     memory_pages=4, params=params)
        )
        assert Counter(result.relation) == reference_join(
            r, s, "key", "skey"
        )
        assert not algo.recursions
