"""Tests for equi-depth histograms and their selectivity integration."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.selection import Comparison
from repro.planner.selectivity import estimate_selectivity
from repro.storage.catalog import Catalog
from repro.storage.histogram import EquiDepthHistogram
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema
from repro.workload.distributions import zipf_keys


class TestConstruction:
    def test_empty_returns_none(self):
        assert EquiDepthHistogram.build([], 8) is None

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram.build([1, 2], 0)

    def test_uniform_boundaries_equally_spaced(self):
        hist = EquiDepthHistogram.build(list(range(1000)), 10)
        widths = [
            hist.boundaries[i + 1] - hist.boundaries[i]
            for i in range(hist.bucket_count)
        ]
        assert max(widths) - min(widths) <= 2

    def test_heavy_hitters_collapse_buckets(self):
        values = [7] * 900 + list(range(100))
        hist = EquiDepthHistogram.build(values, 16)
        assert hist.bucket_count < 16

    def test_single_value_column(self):
        hist = EquiDepthHistogram.build([5, 5, 5], 4)
        assert hist.fraction_below(4) == 0.0
        assert hist.fraction_below(5) == 1.0


class TestEstimation:
    def test_fraction_below_extremes(self):
        hist = EquiDepthHistogram.build(list(range(100)), 8)
        assert hist.fraction_below(-1) == 0.0
        assert hist.fraction_below(99) == 1.0
        assert hist.fraction_below(1000) == 1.0

    def test_uniform_data_near_exact(self):
        values = list(range(10_000))
        hist = EquiDepthHistogram.build(values, 20)
        for x in (500, 2_500, 7_777):
            true = sum(1 for v in values if v <= x) / len(values)
            assert hist.fraction_below(x) == pytest.approx(true, abs=0.02)

    def test_skewed_data_beats_uniform_assumption(self):
        """The point of the structure: on zipf data the histogram estimate
        is far closer to truth than min/max interpolation."""
        values = zipf_keys(20_000, 1000, theta=1.0, seed=3)
        hist = EquiDepthHistogram.build(values, 32)
        x = 10
        true = sum(1 for v in values if v <= x) / len(values)
        uniform_guess = (x - min(values)) / (max(values) - min(values))
        hist_guess = hist.fraction_below(x)
        assert abs(hist_guess - true) < abs(uniform_guess - true) / 3
        assert abs(hist_guess - true) < 1.5 / hist.bucket_count + 0.02

    def test_between(self):
        hist = EquiDepthHistogram.build(list(range(1000)), 10)
        assert hist.fraction_between(250, 750) == pytest.approx(0.5, abs=0.03)
        assert hist.fraction_between(800, 100) == 0.0


class TestCatalogIntegration:
    @pytest.fixture
    def skewed_catalog(self):
        catalog = Catalog()
        rel = Relation(
            "t", make_schema(("v", DataType.INTEGER), ("pad", DataType.INTEGER)), 64
        )
        for v in zipf_keys(5_000, 500, theta=1.0, seed=9):
            rel.insert_unchecked((v, 0))
        catalog.register(rel)
        return catalog, rel

    def test_analyze_builds_histograms_on_request(self, skewed_catalog):
        catalog, _ = skewed_catalog
        plain = catalog.analyze("t")
        assert plain.column("v").histogram is None
        stats = catalog.analyze("t", histogram_buckets=16)
        assert stats.column("v").histogram is not None

    def test_range_selectivity_uses_histogram(self, skewed_catalog):
        catalog, rel = skewed_catalog
        stats = catalog.analyze("t", histogram_buckets=16)
        pred = Comparison("v", "<", 5)
        estimated = estimate_selectivity(pred, stats)
        true = sum(1 for row in rel if row[0] < 5) / rel.cardinality
        assert estimated == pytest.approx(true, abs=0.1)
        # Without histograms the uniform guess is badly wrong here.
        uniform_stats = catalog.analyze("t")
        naive = estimate_selectivity(pred, uniform_stats)
        assert abs(naive - true) > abs(estimated - true)

    def test_greater_than_complements(self, skewed_catalog):
        catalog, _ = skewed_catalog
        stats = catalog.analyze("t", histogram_buckets=16)
        lt = estimate_selectivity(Comparison("v", "<", 50), stats)
        gt = estimate_selectivity(Comparison("v", ">", 50), stats)
        assert lt + gt == pytest.approx(1.0, abs=0.05)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
    probe=st.integers(-1200, 1200),
)
def test_property_estimates_bounded_and_monotone(values, probe):
    hist = EquiDepthHistogram.build(values, 8)
    f = hist.fraction_below(probe)
    assert 0.0 <= f <= 1.0
    # Monotone in the probe.
    assert hist.fraction_below(probe - 1) <= f + 1e-12
    # Error bounded by one bucket depth plus interpolation slack.
    true = sum(1 for v in values if v <= probe) / len(values)
    assert abs(f - true) <= 1.0 / hist.bucket_count + 0.5
