"""Edge-case coverage for the MainMemoryDatabase facade and cost plumbing."""

import pytest

from repro import DataType, MainMemoryDatabase, TABLE2_DEFAULTS
from repro.cost.parameters import CostParameters


@pytest.fixture
def db():
    db = MainMemoryDatabase(memory_pages=64)
    db.create_table("t", [("k", DataType.INTEGER), ("v", DataType.INTEGER)])
    return db


class TestFacadeEdges:
    def test_custom_params_flow_to_reports(self):
        params = CostParameters(comp=1e-3)  # absurdly slow comparisons
        db = MainMemoryDatabase(params=params)
        db.create_table("t", [("k", DataType.INTEGER)])
        for i in range(100):
            db.insert("t", (i,))
        db.reset_counters()
        db.lookup("t", "k", 5)  # full scan: 100 comparisons
        assert db.cost_report().total_seconds == pytest.approx(0.1, rel=0.05)

    def test_lookup_on_empty_table(self, db):
        assert db.lookup("t", "k", 1) == []
        assert db.range_lookup("t", "k", 0, 10) == []

    def test_index_on_empty_table_then_inserts(self, db):
        db.create_index("t", "k", kind="btree")
        db.insert("t", (5, 50))
        assert db.lookup("t", "k", 5) == [(5, 50)]

    def test_duplicate_index_rejected(self, db):
        db.create_index("t", "k")
        with pytest.raises(ValueError):
            db.create_index("t", "k", kind="hash")

    def test_drop_table_removes_indexes(self, db):
        db.create_index("t", "k")
        db.drop_table("t")
        db.create_table("t", [("k", DataType.INTEGER)])
        assert db.catalog.index("t", "k") is None

    def test_delete_where_then_reinsert(self, db):
        db.create_index("t", "k")
        db.insert_many("t", [(i, i) for i in range(10)])
        db.delete_where("t", "k", 3)
        db.insert("t", (3, 999))
        assert db.lookup("t", "k", 3) == [(3, 999)]

    def test_sql_error_propagates(self, db):
        from repro.planner import SqlError

        with pytest.raises(SqlError):
            db.sql("SELEKT * FROM t")

    def test_repr(self, db):
        assert "1 tables" in repr(db)


class TestAnalyze:
    def test_analyze_specific_table(self, db):
        db.insert_many("t", [(i, i % 3) for i in range(30)])
        db.analyze("t")
        stats = db.catalog.stats("t")
        assert stats.cardinality == 30
        assert stats.column("v").distinct == 3

    def test_analyze_all(self, db):
        db.create_table("u", [("x", DataType.INTEGER)])
        db.insert("u", (1,))
        db.analyze()
        assert db.catalog.stats("u").cardinality == 1


class TestMemoryGrantPropagation:
    def test_small_grant_changes_join_plan_feasibility(self):
        """A facade built with a tiny grant still executes (the executable
        joins spill), exercising the memory plumbing end to end."""
        import random

        db = MainMemoryDatabase(memory_pages=8)
        db.create_table("a", [("ak", DataType.INTEGER), ("av", DataType.INTEGER)])
        db.create_table("b", [("bk", DataType.INTEGER), ("bv", DataType.INTEGER)])
        rng = random.Random(2)
        for i in range(400):
            db.insert("a", (rng.randrange(100), i))
        for i in range(400):
            db.insert("b", (rng.randrange(100), i))
        db.analyze()
        out = db.sql("SELECT av, bv FROM a JOIN b ON a.ak = b.bk")
        # Cross-check cardinality against a dictionary join.
        from collections import Counter

        a_keys = Counter(row[0] for row in db.table("a"))
        expected = sum(a_keys.get(row[0], 0) for row in db.table("b"))
        assert out.cardinality == expected
