"""Unit tests for the physical plan nodes and cost estimation helpers."""

import math

import pytest

from repro.cost.parameters import TABLE2_DEFAULTS
from repro.operators.aggregate import AggregateFunction, AggregateSpec
from repro.operators.selection import Comparison
from repro.planner.plan import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanContext,
    ProjectNode,
    ScanNode,
    estimate_join_cost,
)
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema


@pytest.fixture
def catalog():
    cat = Catalog()
    rel = Relation(
        "t", make_schema(("k", DataType.INTEGER), ("v", DataType.INTEGER)), 64
    )
    for i in range(200):
        rel.insert_unchecked((i, i % 10))
    cat.register(rel)
    other = Relation(
        "u", make_schema(("uk", DataType.INTEGER), ("w", DataType.INTEGER)), 64
    )
    for i in range(50):
        other.insert_unchecked((i, i))
    cat.register(other)
    cat.analyze("t")
    cat.analyze("u")
    return cat


@pytest.fixture
def ctx(catalog):
    return PlanContext(catalog=catalog, memory_pages=100)


class TestScanNode:
    def test_estimates_from_stats(self, catalog):
        node = ScanNode("t", catalog)
        assert node.estimated_rows == 200
        assert node.estimated_pages > 0

    def test_execute_returns_base_relation(self, catalog, ctx):
        node = ScanNode("t", catalog)
        assert node.execute(ctx) is catalog.relation("t")

    def test_label_and_explain(self, catalog, ctx):
        node = ScanNode("t", catalog)
        assert node.label() == "Scan(t)"
        text = node.explain(ctx)
        assert "rows~200" in text and "cost=" in text

    def test_explain_without_context_omits_cost(self, catalog):
        assert "cost=" not in ScanNode("t", catalog).explain()


class TestFilterNode:
    def test_cardinality_scales_by_selectivity(self, catalog):
        scan = ScanNode("t", catalog)
        node = FilterNode(scan, Comparison("v", "=", 3), selectivity=0.1)
        assert node.estimated_rows == pytest.approx(20)

    def test_total_cost_includes_child(self, catalog, ctx):
        scan = ScanNode("t", catalog)
        node = FilterNode(scan, Comparison("v", "=", 3), 0.1)
        assert node.total_cost(ctx) > node.estimated_cost(ctx)

    def test_execute_filters(self, catalog, ctx):
        scan = ScanNode("t", catalog)
        node = FilterNode(scan, Comparison("v", "=", 3), 0.1)
        out = node.execute(ctx)
        assert all(row[1] == 3 for row in out)
        assert out.cardinality == 20


class TestJoinNode:
    def test_unknown_algorithm_rejected(self, catalog):
        scan_t, scan_u = ScanNode("t", catalog), ScanNode("u", catalog)
        with pytest.raises(ValueError):
            JoinNode(scan_t, scan_u, "k", "uk", "merge-sort", 100)

    def test_execute_produces_join(self, catalog, ctx):
        scan_t, scan_u = ScanNode("t", catalog), ScanNode("u", catalog)
        node = JoinNode(scan_t, scan_u, "k", "uk", "hybrid-hash", 50)
        out = node.execute(ctx)
        assert out.cardinality == 50  # keys 0..49 match

    def test_children_and_costs(self, catalog, ctx):
        scan_t, scan_u = ScanNode("t", catalog), ScanNode("u", catalog)
        node = JoinNode(scan_t, scan_u, "k", "uk", "hybrid-hash", 50)
        assert node.children() == [scan_t, scan_u]
        assert node.total_cost(ctx) >= node.estimated_cost(ctx)


class TestProjectAndAggregateNodes:
    def test_project_schema(self, catalog, ctx):
        node = ProjectNode(ScanNode("t", catalog), ["v"], distinct=True,
                           distinct_ratio=0.05)
        assert node.schema.names == ["v"]
        out = node.execute(ctx)
        assert out.cardinality == 10

    def test_project_sort_method(self, catalog, ctx):
        node = ProjectNode(ScanNode("t", catalog), ["v"], distinct=True,
                           method="sort")
        out = node.execute(ctx)
        assert [r[0] for r in out] == sorted(r[0] for r in out)

    def test_aggregate_schema_and_result(self, catalog, ctx):
        node = AggregateNode(
            ScanNode("t", catalog),
            ["v"],
            [AggregateSpec(AggregateFunction.COUNT, alias="n")],
        )
        assert node.schema.names == ["v", "n"]
        out = node.execute(ctx)
        assert sum(row[1] for row in out) == 200

    def test_sort_method_costs_more(self, catalog, ctx):
        base = ScanNode("t", catalog)
        aggs = [AggregateSpec(AggregateFunction.COUNT, alias="n")]
        hash_node = AggregateNode(base, ["v"], aggs, method="hash")
        sort_node = AggregateNode(base, ["v"], aggs, method="sort")
        assert sort_node.estimated_cost(ctx) > hash_node.estimated_cost(ctx)


class TestEstimateJoinCost:
    def test_infeasible_two_pass_is_infinite(self, ctx):
        # Memory far below sqrt(|S|F).
        tiny = PlanContext(catalog=ctx.catalog, memory_pages=2)
        cost = estimate_join_cost(
            "grace-hash", 1e6, 1e6, 25_000, 25_000, tiny
        )
        assert math.isinf(cost)

    def test_nested_loops_quadratic_cpu(self, ctx):
        small = estimate_join_cost("nested-loops", 100, 100, 1, 1, ctx)
        large = estimate_join_cost("nested-loops", 1000, 1000, 10, 10, ctx)
        assert large > 50 * small

    def test_w_weights_cpu(self, catalog):
        light = PlanContext(catalog=catalog, memory_pages=100, w=1.0)
        heavy = PlanContext(catalog=catalog, memory_pages=100, w=10.0)
        a = estimate_join_cost("hybrid-hash", 1000, 1000, 10, 10, light)
        b = estimate_join_cost("hybrid-hash", 1000, 1000, 10, 10, heavy)
        assert b == pytest.approx(10 * a)

    def test_swaps_sides_so_r_is_smaller(self, ctx):
        a = estimate_join_cost("hybrid-hash", 100, 10_000, 5, 400, ctx)
        b = estimate_join_cost("hybrid-hash", 10_000, 100, 400, 5, ctx)
        assert a == pytest.approx(b)
