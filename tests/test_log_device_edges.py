"""Additional edge tests for log devices and the stable drain path."""

import pytest

from repro.recovery.log_device import LogDevice, PartitionedLog
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.records import BeginRecord, CommitRecord, UpdateRecord
from repro.recovery.stable_memory import StableMemory
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimulatedClock())


class TestDeviceBackPressure:
    def test_queued_writes_extend_busy_horizon(self, queue):
        device = LogDevice(queue)
        for _ in range(5):
            device.write_page(["x"])
        assert device.busy_until == pytest.approx(0.050)

    def test_crash_freezes_horizon(self, queue):
        device = LogDevice(queue)
        device.write_page(["x"])
        device.crash()
        assert device.busy_until == queue.clock.now

    def test_page_numbers_monotone_per_device(self, queue):
        device = LogDevice(queue)
        pages = []
        for _ in range(3):
            device.write_page(["x"], pages.append)
        queue.run_to_completion()
        assert [p.page_number for p in pages] == [0, 1, 2]


class TestStableDrainEdges:
    def test_crash_mid_drain_loses_nothing(self, queue):
        """Records stay in stable memory until their disk page completes,
        so a crash between dispatch and completion keeps them visible."""
        lm = LogManager(
            queue, policy=CommitPolicy.STABLE, stable=StableMemory(1 << 20)
        )
        for tid in range(30):
            lm.append(BeginRecord(tid=tid))
            for i in range(3):
                lm.append(UpdateRecord(tid=tid, record_id=i))
            lm.append_commit(tid)
        # Drains were dispatched but the queue never ran: nothing completed.
        log = lm.durable_log()
        commit_tids = {r.tid for r in log if isinstance(r, CommitRecord)}
        assert commit_tids == set(range(30))
        # Now let the drain land and crash afterwards: still complete, and
        # no duplicates from the in-flight overlap.
        queue.run_to_completion()
        log2 = lm.durable_log()
        assert [r.lsn for r in log2] == sorted({r.lsn for r in log2})
        assert {r.tid for r in log2 if isinstance(r, CommitRecord)} == set(
            range(30)
        )

    def test_drain_keeps_up_with_sustained_load(self, queue):
        lm = LogManager(
            queue, policy=CommitPolicy.STABLE, stable=StableMemory(1 << 22)
        )
        for tid in range(200):
            lm.append(BeginRecord(tid=tid))
            lm.append(UpdateRecord(tid=tid, record_id=0))
            lm.append_commit(tid)
            queue.run_until(queue.clock.now + 0.002)
        lm.flush()
        queue.run_to_completion()
        assert lm.stable.pending_records() == []
        assert lm.log.pages_written >= 3

    def test_stable_capacity_pressure_raises(self, queue):
        from repro.recovery.stable_memory import StableMemoryFullError

        lm = LogManager(
            queue, policy=CommitPolicy.STABLE, stable=StableMemory(2048)
        )
        with pytest.raises(StableMemoryFullError):
            for tid in range(100):  # never drains: queue never runs
                lm.append(UpdateRecord(tid=tid, record_id=0))


class TestOutOfOrderCompletion:
    """Partitioned-log ordering when devices complete out of dispatch order.

    With heterogeneous device speeds a page dispatched *later* can become
    durable *earlier*.  Section 5.2's contract: independent commit groups
    may complete in any order, dependent groups must wait for their
    lattice ancestors, and the merged log must still read back in LSN
    order.
    """

    def slow_fast_manager(self, queue, policy, **kwargs):
        """Two devices: dev0 a slow 50 ms disk, dev1 a fast 10 ms one."""
        order = []
        lm = LogManager(
            queue,
            policy=policy,
            devices=2,
            on_commit=order.append,
            **kwargs,
        )
        lm.log.devices[0].page_write_time = 0.050
        lm.log.devices[1].page_write_time = 0.010
        return lm, order

    def test_independent_groups_ack_out_of_dispatch_order(self, queue):
        lm, order = self.slow_fast_manager(queue, CommitPolicy.CONVENTIONAL)
        lm.append_commit(1)  # sealed immediately -> idle dev0, done at 50 ms
        lm.append_commit(2)  # dev0 busy -> dev1, done at 10 ms
        queue.run_to_completion()
        assert order == [2, 1]
        # The sort-merge reconstruction puts the fast device's page first.
        merged = lm.log.all_pages_in_order()
        assert [p.device_id for p in merged] == [1, 0]
        # But recovery reads by LSN, which never reorders.
        assert [r.lsn for r in lm.durable_log()] == [0, 1]

    def test_durable_horizon_ignores_out_of_order_completions(self, queue):
        """A durable record above an in-flight gap must not advance the
        WAL horizon: the checkpointer would otherwise write data pages
        whose covering log is still in the air on the slow device."""
        lm, order = self.slow_fast_manager(queue, CommitPolicy.CONVENTIONAL)
        first_lsn = lm.append_commit(1)  # slow device
        lm.append_commit(2)              # fast device
        queue.run_until(0.020)
        assert order == [2]  # the later commit is durable first
        assert lm.durable_lsn_horizon() < first_lsn
        queue.run_to_completion()
        assert lm.durable_lsn_horizon() >= first_lsn

    def test_dependent_group_parks_until_slow_ancestor_lands(self, queue):
        """tid 2 picked up a pre-commit dependency on tid 1, whose commit
        page sits on the slow device: tid 2's page must not be written --
        even with the fast device idle -- until tid 1 is durable."""
        lm, order = self.slow_fast_manager(queue, CommitPolicy.GROUP)
        lm.append(BeginRecord(tid=1))
        lm.append(UpdateRecord(tid=1, record_id=0))
        lm.append_commit(1)
        # The dependency seals tid 1's group (slow device, lands at 50 ms)
        # and parks tid 2's behind it.
        lm.append(BeginRecord(tid=2))
        lm.append(UpdateRecord(tid=2, record_id=0))
        lm.append_commit(2, dependencies={1})
        lm.flush()
        queue.run_until(0.020)
        assert lm.log.devices[1].is_idle  # fast device has nothing to do
        assert order == []                # ...because tid 2 is parked
        queue.run_to_completion()
        assert order == [1, 2]
        merged = lm.log.all_pages_in_order()
        assert len(merged) == 2
        assert merged[0].completed_at < merged[1].completed_at

    def test_merged_log_from_three_uneven_devices(self, queue):
        order = []
        lm = LogManager(
            queue,
            policy=CommitPolicy.CONVENTIONAL,
            devices=3,
            on_commit=order.append,
        )
        for device, speed in zip(lm.log.devices, (0.030, 0.020, 0.010)):
            device.page_write_time = speed
        for tid in range(1, 7):
            lm.append_commit(tid)
        queue.run_to_completion()
        assert sorted(order) == [1, 2, 3, 4, 5, 6]
        assert order != sorted(order)  # completion really did reorder
        assert order[0] == 3           # first page on the fastest device
        merged = lm.log.all_pages_in_order()
        completions = [p.completed_at for p in merged]
        assert completions == sorted(completions)
        assert [r.lsn for r in lm.durable_log()] == list(range(6))

    def test_chaos_delays_reorder_but_lose_nothing(self, queue):
        """Injected slow-sector delays shuffle cross-device completion
        order; per-device FIFO and the LSN-sorted durable log survive."""
        from repro.chaos import FaultInjector, FaultPlan

        lm = LogManager(queue, policy=CommitPolicy.CONVENTIONAL, devices=2)
        lm.log.attach_fault_injector(
            FaultInjector(
                FaultPlan(write_delay_prob=0.7, write_delay_max=0.04, seed=5)
            )
        )
        for tid in range(1, 11):
            lm.append(UpdateRecord(tid=tid, record_id=tid % 3))
            lm.append_commit(tid)
        queue.run_to_completion()
        assert lm.durable_tids == set(range(1, 11))
        lsns = [r.lsn for r in lm.durable_log()]
        assert lsns == sorted(lsns)
        for device in lm.log.devices:
            numbers = [p.page_number for p in device.pages]
            assert numbers == sorted(numbers)  # FIFO held per device


class TestPartitionedLogEdges:
    def test_single_device_acts_like_plain_log(self, queue):
        single = PartitionedLog(queue, devices=1)
        assert len(single) == 1
        assert single.least_busy() is single.devices[0]

    def test_crash_propagates_to_all_devices(self, queue):
        log = PartitionedLog(queue, devices=3)
        for d in log.devices:
            d.write_page(["x"])
        log.crash()
        assert all(d.busy_until == queue.clock.now for d in log.devices)
