"""Additional edge tests for log devices and the stable drain path."""

import pytest

from repro.recovery.log_device import LogDevice, PartitionedLog
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.records import BeginRecord, CommitRecord, UpdateRecord
from repro.recovery.stable_memory import StableMemory
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimulatedClock())


class TestDeviceBackPressure:
    def test_queued_writes_extend_busy_horizon(self, queue):
        device = LogDevice(queue)
        for _ in range(5):
            device.write_page(["x"])
        assert device.busy_until == pytest.approx(0.050)

    def test_crash_freezes_horizon(self, queue):
        device = LogDevice(queue)
        device.write_page(["x"])
        device.crash()
        assert device.busy_until == queue.clock.now

    def test_page_numbers_monotone_per_device(self, queue):
        device = LogDevice(queue)
        pages = []
        for _ in range(3):
            device.write_page(["x"], pages.append)
        queue.run_to_completion()
        assert [p.page_number for p in pages] == [0, 1, 2]


class TestStableDrainEdges:
    def test_crash_mid_drain_loses_nothing(self, queue):
        """Records stay in stable memory until their disk page completes,
        so a crash between dispatch and completion keeps them visible."""
        lm = LogManager(
            queue, policy=CommitPolicy.STABLE, stable=StableMemory(1 << 20)
        )
        for tid in range(30):
            lm.append(BeginRecord(tid=tid))
            for i in range(3):
                lm.append(UpdateRecord(tid=tid, record_id=i))
            lm.append_commit(tid)
        # Drains were dispatched but the queue never ran: nothing completed.
        log = lm.durable_log()
        commit_tids = {r.tid for r in log if isinstance(r, CommitRecord)}
        assert commit_tids == set(range(30))
        # Now let the drain land and crash afterwards: still complete, and
        # no duplicates from the in-flight overlap.
        queue.run_to_completion()
        log2 = lm.durable_log()
        assert [r.lsn for r in log2] == sorted({r.lsn for r in log2})
        assert {r.tid for r in log2 if isinstance(r, CommitRecord)} == set(
            range(30)
        )

    def test_drain_keeps_up_with_sustained_load(self, queue):
        lm = LogManager(
            queue, policy=CommitPolicy.STABLE, stable=StableMemory(1 << 22)
        )
        for tid in range(200):
            lm.append(BeginRecord(tid=tid))
            lm.append(UpdateRecord(tid=tid, record_id=0))
            lm.append_commit(tid)
            queue.run_until(queue.clock.now + 0.002)
        lm.flush()
        queue.run_to_completion()
        assert lm.stable.pending_records() == []
        assert lm.log.pages_written >= 3

    def test_stable_capacity_pressure_raises(self, queue):
        from repro.recovery.stable_memory import StableMemoryFullError

        lm = LogManager(
            queue, policy=CommitPolicy.STABLE, stable=StableMemory(2048)
        )
        with pytest.raises(StableMemoryFullError):
            for tid in range(100):  # never drains: queue never runs
                lm.append(UpdateRecord(tid=tid, record_id=0))


class TestPartitionedLogEdges:
    def test_single_device_acts_like_plain_log(self, queue):
        single = PartitionedLog(queue, devices=1)
        assert len(single) == 1
        assert single.least_busy() is single.devices[0]

    def test_crash_propagates_to_all_devices(self, queue):
        log = PartitionedLog(queue, devices=3)
        for d in log.devices:
            d.write_page(["x"])
        log.crash()
        assert all(d.busy_until == queue.clock.now for d in log.devices)
