"""End-to-end integration scenarios spanning multiple subsystems."""

import random

import pytest

from repro import DataType, MainMemoryDatabase, TABLE2_DEFAULTS
from repro.operators import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    Prefix,
)
from repro.planner import JoinClause, Query
from repro.recovery import (
    Checkpointer,
    CommitPolicy,
    DatabaseState,
    DiskSnapshot,
    LogManager,
    TransactionEngine,
    VersionManager,
    crash,
    recover,
)
from repro.recovery.restart import replay_committed
from repro.sim import EventQueue, SimulatedClock
from repro.workload import BankingWorkload, employees_relation, join_inputs


class TestQueryStack:
    """The relational side, end to end: generator -> catalog -> planner ->
    executable operators -> instrumented cost."""

    @pytest.fixture
    def db(self):
        db = MainMemoryDatabase(memory_pages=500)
        db.register_table(employees_relation(600, seed=11))
        db.create_table(
            "dept", [("dept_id", DataType.INTEGER), ("budget", DataType.INTEGER)]
        )
        rng = random.Random(12)
        for i in range(20):
            db.insert("dept", (i, rng.randrange(10_000, 90_000)))
        db.create_index("emp", "name", kind="btree")
        db.create_index("emp", "emp_id", kind="hash")
        db.analyze()
        return db

    def test_full_query_pipeline(self, db):
        q = Query(
            tables=["emp", "dept"],
            predicates=[
                ("emp", Comparison("salary", ">=", 40_000)),
                ("dept", Comparison("budget", ">", 20_000)),
            ],
            joins=[JoinClause("emp", "dept", "dept", "dept_id")],
            group_by=["dept"],
            aggregates=[
                AggregateSpec(AggregateFunction.COUNT, alias="n"),
                AggregateSpec(AggregateFunction.MAX, "salary", "top"),
            ],
        )
        result = db.execute(q)

        # Reference computation straight off the base tables.
        budgets = {row[0]: row[1] for row in db.table("dept")}
        expected = {}
        for row in db.table("emp"):
            if row[2] >= 40_000 and budgets.get(row[3], 0) > 20_000:
                n, top = expected.get(row[3], (0, 0))
                expected[row[3]] = (n + 1, max(top, row[2]))
        got = {row[0]: (row[1], row[2]) for row in result}
        assert got == expected
        assert db.cost_report().total_seconds > 0

    def test_prefix_query_through_facade(self, db):
        q = Query(tables=["emp"], predicates=[("emp", Prefix("name", "J"))])
        result = db.execute(q)
        expected = [r for r in db.table("emp") if r[1].startswith("J")]
        assert sorted(result) == sorted(expected)

    def test_projection_distinct_through_planner(self, db):
        q = Query(tables=["emp"], projection=["dept"], distinct=True)
        result = db.execute(q)
        assert sorted(result) == [
            (d,) for d in sorted({r[3] for r in db.table("emp")})
        ]

    def test_index_maintenance_under_churn(self, db):
        rng = random.Random(13)
        for i in range(100):
            db.insert("emp", (10_000 + i, "Zed%03d" % i, 30_000, i % 20))
        assert len(db.lookup("emp", "emp_id", 10_050)) == 1
        removed = db.delete_where("emp", "dept", 3)
        assert removed > 0
        assert db.lookup("emp", "dept", 3) == []
        # The name B+-tree still serves prefix scans after the rebuild.
        zeds = db.range_lookup("emp", "name", "Zed", "Zee")
        assert all(r[1].startswith("Zed") for r in zeds)


class TestRecoveryStack:
    """The transactional side, end to end: workload -> engine -> group
    commit -> checkpoints -> crash -> recovery -> snapshot reads."""

    def test_lifecycle_with_versioned_reads(self):
        queue = EventQueue(SimulatedClock())
        state = DatabaseState(300, records_per_page=32, initial_value=50)
        lm = LogManager(queue, policy=CommitPolicy.GROUP, max_commit_delay=0.02)
        engine = TransactionEngine(state, queue, lm)
        versions = VersionManager(engine)
        snap_disk = DiskSnapshot()
        ck = Checkpointer(engine, snap_disk, interval=0.2)
        ck.start()

        bank = BankingWorkload(300, initial_balance=50,
                               transfer_fraction=1.0, deposit_fraction=0.0,
                               seed=21)
        t = 0.0
        while t < 1.5:
            script, _ = bank.next_script()
            engine.submit_at(t, script)
            t += 0.002

        # Periodic consistent audits while the workload runs.
        audit_totals = []

        def audit():
            with versions.snapshot() as view:
                audit_totals.append(view.total())

        at = 0.1
        while at < 1.5:
            queue.schedule_at(at, audit, label="audit")
            at += 0.1

        queue.run_until(1.5)
        assert audit_totals and all(x == 300 * 50 for x in audit_totals)
        assert engine.committed_count > 500

        # Crash and recover; the books still balance.
        cs = crash(engine, ck)
        out = recover(cs, initial_value=50)
        assert out.state.values == replay_committed(cs, initial_value=50).values
        assert out.state.total_balance() == 300 * 50

        # Log truncation below the redo bound is safe: recovery from the
        # truncated log gives the same state.
        bound = min(cs.dirty_first_lsn.values()) if cs.dirty_first_lsn else 0
        lm.truncate_before(bound)
        cs2 = crash(engine, ck)
        out2 = recover(cs2, initial_value=50)
        assert out2.state.values == out.state.values

    def test_mixed_policies_agree_on_state(self):
        """The same deterministic workload reaches the same final state
        under every commit policy once everything is flushed."""
        finals = []
        for policy in (CommitPolicy.CONVENTIONAL, CommitPolicy.GROUP,
                       CommitPolicy.STABLE):
            queue = EventQueue(SimulatedClock())
            state = DatabaseState(50, records_per_page=8, initial_value=0)
            lm = LogManager(queue, policy=policy)
            engine = TransactionEngine(state, queue, lm)
            rng = random.Random(99)
            for _ in range(200):
                a, b = sorted(rng.sample(range(50), 2))
                amt = rng.randrange(1, 5)
                engine.submit(
                    [
                        ("write", a, lambda v, amt=amt: v - amt),
                        ("write", b, lambda v, amt=amt: v + amt),
                    ]
                )
            lm.flush()
            queue.run_to_completion()
            assert engine.committed_count == 200
            finals.append(list(state.values))
        assert finals[0] == finals[1] == finals[2]


class TestJoinsOnGeneratedWorkloads:
    def test_wisconsin_style_join_through_planner(self):
        from repro.planner.planner import Planner, PlannerConfig
        from repro.storage.catalog import Catalog

        r, s = join_inputs(1500, 4500, key_domain=2000, seed=31)
        catalog = Catalog()
        catalog.register(r)
        catalog.register(s)
        planner = Planner(catalog, PlannerConfig(memory_pages=200))
        q = Query(
            tables=["R", "S"],
            joins=[JoinClause("R", "rkey", "S", "skey")],
        )
        plan = planner.plan(q)
        result = plan.execute(planner.context())

        r_keys = {}
        for row in r:
            r_keys.setdefault(row[0], 0)
            r_keys[row[0]] += 1
        expected = sum(r_keys.get(row[0], 0) for row in s)
        assert result.cardinality == expected
