"""Tests for the recovery database image and disk snapshot."""

import pytest

from repro.recovery.state import DatabaseState, DiskSnapshot, PageImage


class TestDatabaseState:
    def test_validation(self):
        with pytest.raises(ValueError):
            DatabaseState(0)
        with pytest.raises(ValueError):
            DatabaseState(10, records_per_page=0)

    def test_page_geometry(self):
        state = DatabaseState(100, records_per_page=16)
        assert state.page_count == 7
        assert state.page_of(0) == 0
        assert state.page_of(15) == 0
        assert state.page_of(16) == 1
        assert state.page_of(99) == 6
        with pytest.raises(IndexError):
            state.page_of(100)

    def test_page_records_range(self):
        state = DatabaseState(100, records_per_page=16)
        assert state.page_records(0) == (0, 16)
        assert state.page_records(6) == (96, 100)  # partial last page

    def test_write_updates_lsn_and_dirty(self):
        state = DatabaseState(32, records_per_page=16, initial_value=5)
        old = state.write(3, 42, lsn=7)
        assert old == 5
        assert state.read(3) == 42
        assert state.page_lsn[0] == 7
        assert state.dirty == {0}

    def test_total_balance(self):
        state = DatabaseState(10, initial_value=3)
        assert state.total_balance() == 30
        state.write(0, 13, lsn=1)
        assert state.total_balance() == 40

    def test_copy_page_is_immutable_snapshot(self):
        state = DatabaseState(32, records_per_page=16, initial_value=0)
        state.write(1, 9, lsn=4)
        image = state.copy_page(0)
        state.write(1, 99, lsn=5)
        assert image.values[1] == 9
        assert image.page_lsn == 4


class TestDiskSnapshot:
    def test_install_and_load(self):
        state = DatabaseState(32, records_per_page=16, initial_value=0)
        state.write(2, 7, lsn=3)
        snap = DiskSnapshot()
        snap.install(state.copy_page(0), timestamp=1.0)

        fresh = DatabaseState(32, records_per_page=16, initial_value=0)
        snap.load_into(fresh)
        assert fresh.read(2) == 7
        assert fresh.page_lsn[0] == 3
        assert fresh.page_lsn[1] == -1  # never checkpointed
        assert fresh.dirty == set()

    def test_install_refuses_to_regress(self):
        snap = DiskSnapshot()
        newer = PageImage(page_id=0, values=[1] * 16, page_lsn=10)
        older = PageImage(page_id=0, values=[0] * 16, page_lsn=5)
        snap.install(newer, timestamp=2.0)
        snap.install(older, timestamp=3.0)  # late out-of-order install
        assert snap.pages[0].page_lsn == 10

    def test_install_same_lsn_overwrites(self):
        snap = DiskSnapshot()
        a = PageImage(page_id=0, values=[1] * 16, page_lsn=5)
        b = PageImage(page_id=0, values=[2] * 16, page_lsn=5)
        snap.install(a, 1.0)
        snap.install(b, 2.0)
        assert snap.pages[0].values[0] == 2

    def test_page_count(self):
        snap = DiskSnapshot()
        assert snap.page_count == 0
        snap.install(PageImage(0, [0] * 16, 1), 0.1)
        snap.install(PageImage(3, [0] * 16, 2), 0.2)
        assert snap.page_count == 2
