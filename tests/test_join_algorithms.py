"""Tests for the executable join algorithms (Section 3).

The central property: all five algorithms produce the same multiset of
joined tuples at any memory grant where their assumptions hold.
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.parameters import CostParameters
from repro.join import (
    ALL_JOINS,
    GraceHashJoin,
    HybridHashJoin,
    JoinSpec,
    NestedLoopsJoin,
    SimpleHashJoin,
    SortMergeJoin,
)
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema

from tests.conftest import build_relation


def make_spec(r, s, memory_pages, r_field="key", s_field="skey"):
    params = CostParameters(
        r_pages=max(1, min(r.page_count, s.page_count)),
        s_pages=max(1, max(r.page_count, s.page_count)),
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )
    return JoinSpec(
        r=r, s=s, r_field=r_field, s_field=s_field,
        memory_pages=memory_pages, params=params,
    )


def reference_join(r, s, r_field, s_field):
    ri = r.schema.index_of(r_field)
    si = s.schema.index_of(s_field)
    out = Counter()
    for r_row in r:
        for s_row in s:
            if r_row[ri] == s_row[si]:
                out[r_row + s_row] += 1
    return out


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(ALL_JOINS))
    @pytest.mark.parametrize("memory", [16, 40, 400])
    def test_matches_reference(self, name, memory, r_relation, s_relation):
        expected = reference_join(r_relation, s_relation, "key", "skey")
        spec = make_spec(r_relation, s_relation, memory)
        try:
            result = ALL_JOINS[name]().join(spec)
        except ValueError:
            pytest.skip("two-pass floor at this memory grant")
        assert Counter(result.relation) == expected

    @pytest.mark.parametrize("name", sorted(ALL_JOINS))
    def test_empty_inputs(self, name, kv_schema):
        r = Relation("r", kv_schema, 64)
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = Relation("s", s_schema, 64)
        spec = make_spec(r, s, 16)
        result = ALL_JOINS[name]().join(spec)
        assert result.cardinality == 0

    @pytest.mark.parametrize("name", sorted(ALL_JOINS))
    def test_no_matches(self, name):
        r = build_relation("r", range(0, 50))
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = build_relation("s", range(100, 150), schema=s_schema)
        result = ALL_JOINS[name]().join(make_spec(r, s, 32))
        assert result.cardinality == 0

    @pytest.mark.parametrize("name", sorted(ALL_JOINS))
    def test_heavy_duplicates(self, name):
        """Every R tuple matches every S tuple (single hot key)."""
        r = build_relation("r", [7] * 20)
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = build_relation("s", [7] * 30, schema=s_schema)
        result = ALL_JOINS[name]().join(make_spec(r, s, 32))
        assert result.cardinality == 600


class TestSpecNormalisation:
    def test_swaps_to_keep_r_smaller(self, r_relation, s_relation):
        spec = make_spec(s_relation, r_relation, 40, r_field="skey", s_field="key")
        assert spec.r.name == "r"
        assert spec.r_field == "key"

    def test_minimum_memory(self, r_relation, s_relation):
        with pytest.raises(ValueError):
            make_spec(r_relation, s_relation, 1)

    def test_unknown_fields_rejected(self, r_relation, s_relation):
        with pytest.raises(KeyError):
            JoinSpec(
                r=r_relation, s=s_relation, r_field="nope", s_field="skey",
                memory_pages=16,
            )

    def test_result_schema_prefixes_clashes(self):
        r = build_relation("r", range(10))
        s = build_relation("s", range(10))
        spec = JoinSpec(r=r, s=s, r_field="key", s_field="key", memory_pages=16)
        result = NestedLoopsJoin().join(spec)
        assert result.relation.schema.names == [
            "r_key", "r_payload", "s_key", "s_payload",
        ]


class TestCostBehaviour:
    def test_hash_joins_avoid_io_when_r_fits(self, r_relation, s_relation):
        spec = make_spec(r_relation, s_relation, 400)
        for cls in (SimpleHashJoin, HybridHashJoin):
            result = cls().join(spec)
            c = result.counters
            assert c.sequential_ios == 0 and c.random_ios == 0

    def test_grace_always_spills(self, r_relation, s_relation):
        result = GraceHashJoin().join(make_spec(r_relation, s_relation, 400))
        assert result.counters.sequential_ios + result.counters.random_ios > 0

    def test_simple_hash_io_grows_as_memory_shrinks(self, r_relation, s_relation):
        lo = SimpleHashJoin().join(make_spec(r_relation, s_relation, 8))
        hi = SimpleHashJoin().join(make_spec(r_relation, s_relation, 40))
        assert lo.counters.sequential_ios > hi.counters.sequential_ios

    def test_hybrid_spills_less_than_grace(self, r_relation, s_relation):
        memory = 20
        hybrid = HybridHashJoin().join(make_spec(r_relation, s_relation, memory))
        grace = GraceHashJoin().join(make_spec(r_relation, s_relation, memory))
        hybrid_io = hybrid.counters.sequential_ios + hybrid.counters.random_ios
        grace_io = grace.counters.sequential_ios + grace.counters.random_ios
        assert hybrid_io < grace_io

    def test_sort_merge_charges_swaps(self, r_relation, s_relation):
        result = SortMergeJoin().join(make_spec(r_relation, s_relation, 40))
        assert result.counters.swaps > 0

    def test_modelled_seconds_positive(self, r_relation, s_relation):
        for name, cls in ALL_JOINS.items():
            result = cls().join(make_spec(r_relation, s_relation, 40))
            assert result.modelled_seconds > 0
            assert result.algorithm == name


class TestScratchHygiene:
    @pytest.mark.parametrize("name", ["sort-merge", "grace-hash", "hybrid-hash"])
    def test_scratch_files_cleaned_up(self, name, r_relation, s_relation):
        algo = ALL_JOINS[name]()
        algo.join(make_spec(r_relation, s_relation, 20))
        assert algo.disk.files() == []


@settings(max_examples=25, deadline=None)
@given(
    r_keys=st.lists(st.integers(0, 30), max_size=60),
    s_keys=st.lists(st.integers(0, 30), max_size=120),
    memory=st.sampled_from([12, 24, 64]),
)
def test_property_all_algorithms_agree(r_keys, s_keys, memory):
    r = build_relation("r", r_keys)
    s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
    s = build_relation("s", s_keys, schema=s_schema)
    expected = None
    for name, cls in sorted(ALL_JOINS.items()):
        spec = make_spec(r, s, memory)
        try:
            result = cls().join(spec)
        except ValueError:
            continue
        # Column order differs when the spec swapped R and S; normalise by
        # sorting each row's field reprs.
        normalised = Counter(tuple(sorted(map(repr, row))) for row in result.relation)
        if expected is None:
            expected = normalised
        else:
            assert normalised == expected, "algorithm %s diverged" % name


class TestHybridRecursion:
    """Regression coverage for the Section 3.3 overflow recursion."""

    def test_recursed_bucket_with_r_heavier_than_s(self):
        """A recursed bucket whose R slice outweighs its S slice must keep
        the original (R, S) orientation (regression: the sub-spec swap-back
        restored the wrong sides and crashed on the key field)."""
        from repro.workload.generator import join_inputs

        r, s = join_inputs(4000, 4000, key_domain=80_000, page_bytes=320)
        params = CostParameters(
            r_pages=r.page_count,
            s_pages=s.page_count,
            r_tuples_per_page=r.tuples_per_page,
            s_tuples_per_page=s.tuples_per_page,
        )
        spec = JoinSpec(
            r=r, s=s, r_field="rkey", s_field="skey",
            memory_pages=12, params=params,
        )
        result = ALL_JOINS["hybrid-hash"]().join(spec)
        r_counts = Counter(row[0] for row in r)
        expected = sum(r_counts.get(row[0], 0) for row in s)
        assert result.cardinality == expected

    def test_skewed_bucket_recursion_matches_baseline(self):
        rng = random.Random(17)
        keys = [5] * 300 + [rng.randrange(40) for _ in range(300)]
        r = build_relation("r", keys)
        s_schema = make_schema(("skey", DataType.INTEGER), ("sv", DataType.INTEGER))
        s = build_relation(
            "s", [5] * 200 + [rng.randrange(40) for _ in range(400)],
            schema=s_schema,
        )
        expected = reference_join(r, s, "key", "skey")
        result = ALL_JOINS["hybrid-hash"]().join(make_spec(r, s, 10))
        assert Counter(result.relation) == expected
