"""Tests for projection with and without duplicate elimination."""

import random
from collections import Counter

import pytest

from repro.cost.counters import OperationCounters
from repro.operators.projection import hash_project, sort_project
from repro.storage.disk import SimulatedDisk
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, make_schema


@pytest.fixture
def rel():
    schema = make_schema(
        ("a", DataType.INTEGER), ("b", DataType.INTEGER), ("c", DataType.INTEGER)
    )
    r = Relation("t", schema, 96)
    rng = random.Random(6)
    for _ in range(300):
        r.insert_unchecked((rng.randrange(5), rng.randrange(5), rng.randrange(100)))
    return r


class TestPlainProjection:
    def test_keeps_duplicates(self, rel):
        out = hash_project(rel, ["a", "b"], distinct=False)
        assert out.cardinality == 300
        assert out.schema.names == ["a", "b"]

    def test_column_order_respected(self, rel):
        out = hash_project(rel, ["b", "a"], distinct=False)
        first_src = next(iter(rel))
        first_out = next(iter(out))
        assert first_out == (first_src[1], first_src[0])

    def test_charges_moves(self, rel):
        counters = OperationCounters()
        hash_project(rel, ["a"], distinct=False, counters=counters)
        assert counters.moves == 300


class TestDistinctProjection:
    def test_hash_removes_duplicates(self, rel):
        out = hash_project(rel, ["a", "b"], distinct=True)
        expected = {(r[0], r[1]) for r in rel}
        assert Counter(out) == Counter(expected)

    def test_sort_removes_duplicates(self, rel):
        out = sort_project(rel, ["a", "b"], distinct=True)
        expected = {(r[0], r[1]) for r in rel}
        assert Counter(out) == Counter(expected)

    def test_hash_and_sort_agree(self, rel):
        a = sorted(hash_project(rel, ["a", "b"]))
        b = sorted(sort_project(rel, ["a", "b"]))
        assert a == b

    def test_distinct_single_column(self, rel):
        out = hash_project(rel, ["a"])
        assert sorted(out) == [(v,) for v in sorted({r[0] for r in rel})]

    def test_spill_path_still_correct(self):
        schema = make_schema(("k", DataType.INTEGER), ("v", DataType.INTEGER))
        rel = Relation("big", schema, 64)
        for i in range(2000):
            rel.insert_unchecked((i % 700, i))
        counters = OperationCounters()
        disk = SimulatedDisk(counters)
        out = hash_project(
            rel, ["k"], distinct=True, counters=counters,
            memory_pages=8, disk=disk,
        )
        assert out.cardinality == 700
        assert counters.sequential_ios + counters.random_ios > 0

    def test_projection_of_whole_row(self, rel):
        out = hash_project(rel, ["a", "b", "c"], distinct=True)
        assert Counter(out) == Counter(set(rel))
