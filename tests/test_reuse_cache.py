"""Tests for the materialised-subplan reuse cache (repro.planner.reuse)."""

from __future__ import annotations

import pytest

from repro.core.database import MainMemoryDatabase
from repro.operators.selection import Comparison
from repro.planner.query import JoinClause, Query
from repro.planner.reuse import PlanReuseCache
from repro.storage.relation import Relation
from repro.storage.tuples import DataType, Field, Schema


def make_db(**kwargs):
    db = MainMemoryDatabase(**kwargs)
    db.create_table(
        "emp",
        [("emp_id", DataType.INTEGER), ("dept", DataType.INTEGER),
         ("salary", DataType.INTEGER)],
    )
    db.create_table(
        "dept", [("dept_id", DataType.INTEGER), ("name", DataType.STRING)]
    )
    for i in range(120):
        db.insert("emp", (i, i % 10, 1000 + i))
    for d in range(10):
        db.insert("dept", (d, "d%d" % d))
    db.analyze()
    return db


FILTER_QUERY = Query(
    tables=["emp"], predicates=[("emp", Comparison("salary", ">", 1050))]
)
JOIN_QUERY = Query(
    tables=["emp", "dept"],
    predicates=[("emp", Comparison("salary", ">", 1020))],
    joins=[JoinClause("emp", "dept", "dept", "dept_id")],
)


class TestCacheUnit:
    def test_hit_miss_accounting(self):
        cache = PlanReuseCache()
        rel = Relation("x", Schema([Field("a", DataType.INTEGER)]), 64)
        assert cache.get("k") is None
        cache.put("k", rel, ["t"])
        assert cache.get("k") is rel
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "invalidations": 0,
            "evictions": 0,
        }

    def test_invalidate_drops_only_dependents(self):
        cache = PlanReuseCache()
        rel = Relation("x", Schema([Field("a", DataType.INTEGER)]), 64)
        cache.put("a", rel, ["t1"])
        cache.put("b", rel, ["t1", "t2"])
        cache.put("c", rel, ["t3"])
        assert cache.invalidate("t1") == 2
        assert cache.get("a") is None and cache.get("b") is None
        assert cache.get("c") is rel

    def test_lru_eviction(self):
        cache = PlanReuseCache(max_entries=2)
        rel = Relation("x", Schema([Field("a", DataType.INTEGER)]), 64)
        cache.put("a", rel, ["t"])
        cache.put("b", rel, ["t"])
        cache.put("c", rel, ["t"])
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c") is rel
        assert cache.stats()["evictions"] == 1

    def test_lru_hit_refreshes_recency(self):
        cache = PlanReuseCache(max_entries=2)
        rel = Relation("x", Schema([Field("a", DataType.INTEGER)]), 64)
        cache.put("a", rel, ["t"])
        cache.put("b", rel, ["t"])
        assert cache.get("a") is rel  # refresh "a"
        cache.put("c", rel, ["t"])    # evicts "b", not "a"
        assert cache.get("a") is rel
        assert cache.get("b") is None

    def test_shrink_to_evicts_cold_entries_first(self):
        cache = PlanReuseCache(max_entries=8)
        rel = Relation("x", Schema([Field("a", DataType.INTEGER)]), 64)
        for key in "abcd":
            cache.put(key, rel, ["t"])
        assert cache.get("a") is rel  # "a" becomes most recent
        assert cache.shrink_to(2) == 2
        assert len(cache) == 2
        assert cache.get("a") is rel
        assert cache.get("d") is rel
        assert cache.get("b") is None and cache.get("c") is None
        assert cache.stats()["evictions"] == 2
        assert cache.shrink_to(10) == 0

    def test_rejects_zero_capacity(self):
        from repro.errors import ConfigurationError, ReproError
        with pytest.raises(ConfigurationError):
            PlanReuseCache(max_entries=0)
        with pytest.raises(ValueError):  # backward compatible
            PlanReuseCache(max_entries=-1)
        assert issubclass(ConfigurationError, ReproError)


class TestDatabaseIntegration:
    def test_repeat_query_hits_and_skips_work(self):
        db = make_db()
        first = sorted(db.execute(FILTER_QUERY))
        snapshot = db.counters.snapshot()
        again = db.execute(FILTER_QUERY)
        assert sorted(again) == first
        assert db.reuse_stats()["hits"] >= 1
        # Served from cache: the repeat charges no operator work at all.
        assert db.counters.snapshot() == snapshot

    def test_insert_invalidates(self):
        db = make_db()
        rows_before = sorted(db.execute(FILTER_QUERY))
        db.insert("emp", (999, 3, 99999))
        rows_after = sorted(db.execute(FILTER_QUERY))
        assert len(rows_after) == len(rows_before) + 1
        assert db.reuse_stats()["invalidations"] >= 1

    def test_delete_invalidates(self):
        db = make_db()
        sorted(db.execute(FILTER_QUERY))
        removed = db.delete_where("emp", "emp_id", 119)
        assert removed == 1
        rows = db.execute(FILTER_QUERY)
        assert all(r[0] != 119 for r in rows)

    def test_join_query_reuses_and_invalidates_per_table(self):
        db = make_db()
        first = sorted(db.execute(JOIN_QUERY))
        assert sorted(db.execute(JOIN_QUERY)) == first
        assert db.reuse_stats()["hits"] >= 1
        # Mutating one side must drop the join result too.
        db.insert("dept", (42, "d42"))
        db.insert("emp", (998, 42, 99999))
        after = sorted(db.execute(JOIN_QUERY), key=repr)
        assert any(998 in r and 42 in r for r in after)

    def test_version_stamps_catch_direct_mutation(self):
        # Mutation bypassing the facade (no eager invalidation): the
        # version stamp embedded in the fingerprint must miss the cache.
        db = make_db()
        before = sorted(db.execute(FILTER_QUERY))
        db.table("emp").extend([(997, 1, 88888)])
        after = sorted(db.execute(FILTER_QUERY))
        assert len(after) == len(before) + 1

    def test_disabled_cache(self):
        db = make_db(reuse_cache=False)
        rows = sorted(db.execute(FILTER_QUERY))
        assert sorted(db.execute(FILTER_QUERY)) == rows
        assert db.reuse_stats() == {
            "entries": 0, "hits": 0, "misses": 0, "invalidations": 0,
            "evictions": 0,
        }

    def test_memory_grant_partitions_the_cache(self):
        db = make_db()
        ctx_rows = sorted(db.execute(FILTER_QUERY))
        db.memory_pages = db.memory_pages + 1  # different grant -> new key
        assert sorted(db.execute(FILTER_QUERY)) == ctx_rows
        stats = db.reuse_stats()
        assert stats["misses"] >= 2
