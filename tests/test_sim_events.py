"""Tests for the discrete-event queue."""

import pytest

from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


@pytest.fixture
def queue():
    return EventQueue(SimulatedClock())


def test_events_run_in_time_order(queue):
    log = []
    queue.schedule(0.3, lambda: log.append("c"))
    queue.schedule(0.1, lambda: log.append("a"))
    queue.schedule(0.2, lambda: log.append("b"))
    queue.run_to_completion()
    assert log == ["a", "b", "c"]


def test_ties_break_by_insertion_order(queue):
    log = []
    queue.schedule(0.5, lambda: log.append(1))
    queue.schedule(0.5, lambda: log.append(2))
    queue.schedule(0.5, lambda: log.append(3))
    queue.run_to_completion()
    assert log == [1, 2, 3]


def test_clock_advances_to_event_time(queue):
    seen = []
    queue.schedule(0.7, lambda: seen.append(queue.clock.now))
    queue.run_to_completion()
    assert seen == [0.7]


def test_run_until_stops_at_deadline(queue):
    log = []
    queue.schedule(0.1, lambda: log.append("early"))
    queue.schedule(5.0, lambda: log.append("late"))
    ran = queue.run_until(1.0)
    assert ran == 1
    assert log == ["early"]
    assert queue.clock.now == 1.0  # deadline reached even when queue idles
    assert len(queue) == 1  # late event still pending


def test_events_can_schedule_events(queue):
    log = []

    def first():
        log.append("first")
        queue.schedule(0.1, lambda: log.append("second"))

    queue.schedule(0.1, first)
    queue.run_to_completion()
    assert log == ["first", "second"]
    assert queue.clock.now == pytest.approx(0.2)


def test_step_returns_none_when_idle(queue):
    assert queue.step() is None


def test_scheduling_in_past_rejected(queue):
    queue.clock.advance(1.0)
    with pytest.raises(ValueError):
        queue.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        queue.schedule(-0.1, lambda: None)


def test_processed_counter(queue):
    for i in range(5):
        queue.schedule(0.01 * (i + 1), lambda: None)
    queue.run_to_completion()
    assert queue.processed == 5


def test_runaway_guard():
    queue = EventQueue(SimulatedClock())

    def respawn():
        queue.schedule(0.001, respawn)

    queue.schedule(0.001, respawn)
    with pytest.raises(RuntimeError):
        queue.run_to_completion(max_events=100)
