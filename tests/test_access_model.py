"""Tests for the Section 2 access-method cost model (Table 1)."""

import math

import pytest

from repro.cost.access_model import (
    AccessMethodParameters,
    avl_comparisons,
    avl_random_cost,
    avl_sequential_cost,
    avl_storage_pages,
    btree_comparisons,
    btree_fanout,
    btree_height,
    btree_leaf_pages,
    btree_random_cost,
    btree_sequential_cost,
    btree_storage_pages,
    random_breakeven_fraction,
    sequential_breakeven_fraction,
    table1,
)

P = AccessMethodParameters()


class TestStructuralFormulas:
    def test_avl_comparisons_is_knuth(self):
        assert avl_comparisons(P) == pytest.approx(math.log2(P.n_tuples) + 0.25)

    def test_avl_storage(self):
        expected = math.ceil(P.n_tuples * (P.tuple_bytes + 8) / P.page_bytes)
        assert avl_storage_pages(P) == expected

    def test_btree_fanout_uses_yao_occupancy(self):
        assert btree_fanout(P) == int(0.69 * 4096 / 12)

    def test_btree_leaves(self):
        expected = math.ceil(P.n_tuples * P.tuple_bytes / (0.69 * P.page_bytes))
        assert btree_leaf_pages(P) == expected

    def test_btree_height_reasonable(self):
        # A million 100-byte tuples: a 2-level index above the leaves.
        assert btree_height(P) == 2

    def test_btree_is_larger_than_avl_structure(self):
        # 69% occupancy makes the B+-tree bigger on disk; the paper notes
        # S ~ 0.69 * S' when L >> 8.
        ratio = avl_storage_pages(P) / btree_storage_pages(P)
        assert 0.6 < ratio < 0.85

    def test_tiny_relation_height_zero(self):
        tiny = AccessMethodParameters(n_tuples=10)
        assert btree_height(tiny) == 0


class TestRandomAccessCosts:
    def test_avl_cost_at_zero_memory(self):
        c = avl_comparisons(P)
        assert avl_random_cost(P, 0) == pytest.approx(P.z * c + P.y * c)

    def test_avl_cost_fully_resident_has_no_faults(self):
        c = avl_comparisons(P)
        s = avl_storage_pages(P)
        assert avl_random_cost(P, s) == pytest.approx(P.y * c)
        # More memory than the structure cannot go negative.
        assert avl_random_cost(P, 10 * s) == pytest.approx(P.y * c)

    def test_btree_cost_at_zero_memory(self):
        levels = btree_height(P) + 1
        assert btree_random_cost(P, 0) == pytest.approx(
            P.z * levels + btree_comparisons(P)
        )

    def test_btree_beats_avl_with_no_memory(self):
        assert btree_random_cost(P, 0) < avl_random_cost(P, 0)

    def test_avl_beats_btree_fully_resident(self):
        s = avl_storage_pages(P)
        assert avl_random_cost(P, s) < btree_random_cost(P, s)

    def test_costs_decrease_with_memory(self):
        s = avl_storage_pages(P)
        costs = [avl_random_cost(P, m) for m in (0, s // 4, s // 2, s)]
        assert costs == sorted(costs, reverse=True)


class TestBreakeven:
    def test_breakeven_is_in_the_80_90_percent_band(self):
        """The paper's headline: B+-trees preferred unless 80-90%+ of the
        structure is memory resident."""
        h = random_breakeven_fraction(P)
        assert h is not None
        assert 0.8 < h < 1.0

    def test_breakeven_is_exact_crossover(self):
        h = random_breakeven_fraction(P)
        s = avl_storage_pages(P)
        m = h * s
        assert avl_random_cost(P, m) == pytest.approx(
            btree_random_cost(P, m), rel=1e-9
        )
        # Just below, the B+-tree wins; just above, the AVL tree wins.
        assert btree_random_cost(P, 0.99 * m) < avl_random_cost(P, 0.99 * m)
        eps_up = min(1.0, h * 1.01) * s
        assert avl_random_cost(P, eps_up) <= btree_random_cost(P, eps_up)

    def test_cheap_avl_comparisons_lower_the_threshold(self):
        cheap = AccessMethodParameters(y=0.5)
        expensive = AccessMethodParameters(y=1.0)
        assert random_breakeven_fraction(cheap) < random_breakeven_fraction(
            expensive
        )

    def test_sequential_breakeven_also_high(self):
        h = sequential_breakeven_fraction(P)
        assert h is not None
        assert h > 0.8

    def test_sequential_crossover_point(self):
        h = sequential_breakeven_fraction(P)
        s = avl_storage_pages(P)
        m = h * s
        n = 1000
        assert avl_sequential_cost(P, m, n) == pytest.approx(
            btree_sequential_cost(P, m, n), rel=1e-6
        )

    def test_btree_dominates_sequential_at_low_memory(self):
        # Sequential scans hit the AVL tree hardest: a fault per record
        # vs a fault per leaf page.
        assert btree_sequential_cost(P, 0, 1000) < avl_sequential_cost(
            P, 0, 1000
        )


class TestTable1:
    def test_grid_shape(self):
        rows = table1(z_values=(10, 20, 30), y_values=(0.5, 0.75, 1.0))
        assert len(rows) == 9
        assert {r["Z"] for r in rows} == {10, 20, 30}

    def test_thresholds_increase_with_z(self):
        """Costlier IO (larger Z) punishes the AVL tree's extra faults, so
        the required residence fraction grows with Z."""
        rows = table1(z_values=(10, 20, 30), y_values=(0.75,))
        hs = [r["random_H"] for r in rows]
        assert hs == sorted(hs)

    def test_thresholds_increase_with_y(self):
        rows = table1(z_values=(20,), y_values=(0.5, 0.75, 1.0))
        hs = [r["random_H"] for r in rows]
        assert hs == sorted(hs)

    def test_all_cells_in_valid_range(self):
        for row in table1():
            for key in ("random_H", "sequential_H"):
                value = row[key]
                assert 0.0 <= value <= 1.0 or math.isnan(value)


class TestValidation:
    def test_bad_y_rejected(self):
        with pytest.raises(ValueError):
            AccessMethodParameters(y=1.5)
        with pytest.raises(ValueError):
            AccessMethodParameters(y=0.0)

    def test_bad_z_rejected(self):
        with pytest.raises(ValueError):
            AccessMethodParameters(z=0)

    def test_tuple_narrower_than_key_rejected(self):
        with pytest.raises(ValueError):
            AccessMethodParameters(key_bytes=50, tuple_bytes=40)

    def test_tuple_must_fit_on_page(self):
        with pytest.raises(ValueError):
            AccessMethodParameters(tuple_bytes=5000, page_bytes=4096)
