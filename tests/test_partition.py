"""Tests for the Section 3.3 hash-partitioning machinery."""

import math
from collections import Counter

import pytest

from repro.cost.counters import OperationCounters
from repro.join.partition import (
    SpillWriter,
    partition_fan_out,
    partition_hash,
    partition_relation,
    read_bucket,
)
from repro.storage.disk import SimulatedDisk

from tests.conftest import build_relation


class TestPartitionHash:
    def test_deterministic(self):
        assert partition_hash(42) == partition_hash(42)
        assert partition_hash("k") == partition_hash("k")

    def test_differs_from_builtin(self):
        # Salted so partitioning is independent of HashIndex's buckets.
        assert partition_hash(42) != hash(42)


class TestFanOut:
    def test_fits_in_memory(self):
        assert partition_fan_out(r_pages=100, memory_pages=200, fudge=1.2) == (0, 1.0)

    def test_exact_fit(self):
        assert partition_fan_out(100, 120, 1.2) == (0, 1.0)

    def test_spill_plan_buckets_fit(self):
        for memory in (15, 30, 60, 119):
            b, q = partition_fan_out(100, memory, 1.2)
            assert b >= 1
            assert 0 <= q < 1
            spilled_table_pages = 100 * 1.2 * (1 - q)
            assert spilled_table_pages / b <= memory + 1e-9

    def test_q_grows_with_memory(self):
        qs = [partition_fan_out(100, m, 1.2)[1] for m in (15, 40, 80, 110)]
        assert qs == sorted(qs)

    def test_tiny_memory_rejected(self):
        with pytest.raises(ValueError):
            partition_fan_out(100, 1, 1.2)


class TestPartitionRelation:
    def test_partitions_cover_input(self, counters):
        rel = build_relation("t", range(100))
        disk = SimulatedDisk(counters)
        files = partition_relation(
            rel, rel.key_of("key"), 4, disk, counters, "part"
        )
        assert len(files) == 4
        rows = []
        for f in files:
            rows.extend(read_bucket(disk, f))
        assert Counter(rows) == Counter(rel)

    def test_compatible_partitions_align(self, counters):
        """Partitioning R and S with the same h puts matching keys in
        matching buckets -- the property the bucket-wise join rests on."""
        r = build_relation("r", range(50))
        s = build_relation("s", list(range(25, 75)))
        disk = SimulatedDisk(counters)
        r_files = partition_relation(r, r.key_of("key"), 5, disk, counters, "r")
        s_files = partition_relation(s, s.key_of("key"), 5, disk, counters, "s")
        for i, (rf, sf) in enumerate(zip(r_files, s_files)):
            r_keys = {row[0] for row in read_bucket(disk, rf)}
            s_keys = {row[0] for row in read_bucket(disk, sf)}
            shared = r_keys & s_keys
            # Any key present in both relations must meet in bucket i only.
            for j, (rf2, sf2) in enumerate(zip(r_files, s_files)):
                if j == i:
                    continue
                other_s = {row[0] for row in read_bucket(disk, sf2)}
                assert not (shared & other_s)

    def test_resident_bucket_consumes_fraction(self, counters):
        rel = build_relation("t", range(1000))
        disk = SimulatedDisk(counters)
        resident = []
        files = partition_relation(
            rel,
            rel.key_of("key"),
            3,
            disk,
            counters,
            "p",
            resident_bucket=True,
            on_resident=lambda k, row: resident.append(row),
        )
        spilled = sum(len(read_bucket(disk, f)) for f in files)
        assert len(resident) + spilled == 1000
        assert len(resident) == pytest.approx(250, abs=80)  # 1/(3+1) share

    def test_charges_hash_per_tuple(self):
        counters = OperationCounters()
        rel = build_relation("t", range(64))
        disk = SimulatedDisk(counters)
        partition_relation(rel, rel.key_of("key"), 2, disk, counters, "p")
        assert counters.hashes == 64
        assert counters.moves == 64  # one per spilled tuple

    def test_zero_classes_rejected(self, counters):
        rel = build_relation("t", range(4))
        disk = SimulatedDisk(counters)
        with pytest.raises(ValueError):
            partition_relation(rel, rel.key_of("key"), 0, disk, counters, "p")


class TestSpillWriter:
    def test_single_bucket_writes_sequentially(self):
        counters = OperationCounters()
        disk = SimulatedDisk(counters)
        writer = SpillWriter(disk, ["only"], tuples_per_page=4, counters=counters)
        for i in range(16):
            writer.write(0, (i,))
        writer.close()
        assert counters.sequential_ios == 4
        assert counters.random_ios == 0

    def test_many_buckets_write_randomly(self):
        counters = OperationCounters()
        disk = SimulatedDisk(counters)
        writer = SpillWriter(
            disk, ["a", "b", "c"], tuples_per_page=2, counters=counters
        )
        for i in range(18):
            writer.write(i % 3, (i,))
        writer.close()
        assert counters.random_ios >= 6

    def test_close_flushes_partials(self):
        counters = OperationCounters()
        disk = SimulatedDisk(counters)
        writer = SpillWriter(disk, ["f"], tuples_per_page=10, counters=counters)
        writer.write(0, (1,))
        assert disk.page_count("f") == 0
        writer.close()
        assert disk.page_count("f") == 1

    def test_reuses_existing_file_name(self):
        counters = OperationCounters()
        disk = SimulatedDisk(counters)
        disk.create("f")
        writer = SpillWriter(disk, ["f"], tuples_per_page=2, counters=counters)
        writer.write(0, (1,))
        writer.close()
        assert disk.page_count("f") == 1
