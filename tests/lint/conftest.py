"""Fixture-tree helpers for the linter tests.

Each test writes a tiny ``repro``-rooted tree under ``tmp_path`` (the
engine anchors module names at the ``repro`` path segment, so the scope
prefixes in :class:`~repro.lint.engine.LintConfig` resolve exactly as
they do against the real package) and runs one checker over it.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.lint.engine import Checker, Finding, LintConfig, run_lint


def write_module(tmp_path: Path, relpath: str, source: str) -> Path:
    """Write dedented ``source`` at ``tmp_path/relpath``; return the path."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint(
    tmp_path: Path,
    checkers: Sequence[Checker],
    rules: Optional[Set[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run ``checkers`` over the fixture tree rooted at ``tmp_path``."""
    return run_lint(
        paths=[tmp_path], config=config, rules=rules, checkers=checkers
    )


def rules_of(findings: Sequence[Finding]) -> List[str]:
    return [f.rule for f in findings]
