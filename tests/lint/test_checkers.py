"""Good/bad fixture snippets for every domain rule."""

from __future__ import annotations

import pytest

from repro.lint.checkers.chaos_seams import ChaosSeamChecker
from repro.lint.checkers.counter_discipline import CounterDisciplineChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.error_taxonomy import ErrorTaxonomyChecker
from repro.lint.checkers.lock_order import LockOrderChecker
from repro.lint.checkers.public_api import PublicApiChecker
from repro.lint.engine import ERROR, WARNING

from tests.lint.conftest import lint, rules_of, write_module


def _one(findings, rule):
    assert rules_of(findings) == [rule], findings
    return findings[0]


# -- determinism ------------------------------------------------------------


class TestDeterminism:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/storage/fixture.py", body)
        return lint(tmp_path, [DeterminismChecker()])

    def test_wall_clock_flagged(self, tmp_path):
        f = _one(
            self.run(tmp_path, "import time\nv = time.perf_counter()\n"),
            "determinism",
        )
        assert "nondeterministic" in f.message

    def test_wall_clock_alias_flagged(self, tmp_path):
        f = _one(
            self.run(tmp_path, "import time\nnow = time.perf_counter\n"),
            "determinism",
        )
        assert "aliasing" in f.message

    def test_module_level_random_flagged(self, tmp_path):
        f = _one(
            self.run(tmp_path, "import random\nv = random.randrange(9)\n"),
            "determinism",
        )
        assert "unseeded" in f.message

    def test_unseeded_random_instance_flagged(self, tmp_path):
        _one(
            self.run(tmp_path, "import random\nrng = random.Random()\n"),
            "determinism",
        )

    def test_seeded_random_instance_ok(self, tmp_path):
        assert self.run(
            tmp_path, "import random\nrng = random.Random(42)\n"
        ) == []

    def test_set_iteration_flagged(self, tmp_path):
        _one(
            self.run(
                tmp_path,
                "def f(items):\n    for x in set(items):\n        x\n",
            ),
            "determinism",
        )

    def test_set_comprehension_source_flagged(self, tmp_path):
        _one(
            self.run(
                tmp_path,
                "def f(items):\n    return [x for x in set(items)]\n",
            ),
            "determinism",
        )

    def test_list_of_set_flagged(self, tmp_path):
        _one(
            self.run(tmp_path, "def f(items):\n    return list(set(items))\n"),
            "determinism",
        )

    def test_sorted_set_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            "def f(items):\n"
            "    for x in sorted(set(items)):\n"
            "        x\n",
        ) == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        # The governor legitimately reads wall clocks for deadlines.
        write_module(
            tmp_path,
            "repro/governor/fixture.py",
            "import time\nv = time.monotonic()\n",
        )
        assert lint(tmp_path, [DeterminismChecker()]) == []


# -- counter discipline -----------------------------------------------------


class TestCounterDiscipline:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/join/fixture.py", body)
        return lint(tmp_path, [CounterDisciplineChecker()])

    def test_direct_field_write_flagged(self, tmp_path):
        f = _one(
            self.run(
                tmp_path,
                "def f(counters):\n    counters.comparisons += 1\n",
            ),
            "counter-api",
        )
        assert "direct write" in f.message

    def test_unknown_method_flagged(self, tmp_path):
        f = _one(
            self.run(tmp_path, "def f(counters):\n    counters.compares()\n"),
            "counter-api",
        )
        assert "typo" in f.message

    def test_approved_charge_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            "def f(counters):\n"
            "    counters.compare(3)\n"
            "    counters.io_random()\n",
        ) == []

    def test_branch_parity_mismatch_flagged(self, tmp_path):
        f = _one(
            self.run(
                tmp_path,
                """\
                class J:
                    def run(self, rows):
                        if self.batch:
                            self.counters.compare(len(rows))
                            self.counters.swap_tuples(len(rows))
                        else:
                            for _ in rows:
                                self.counters.compare()
                """,
            ),
            "counter-parity",
        )
        assert "swap_tuples" in f.message

    def test_branch_parity_match_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            """\
            class J:
                def run(self, rows):
                    if self.batch:
                        self.counters.compare(len(rows))
                    else:
                        for _ in rows:
                            self.counters.compare()
            """,
        ) == []

    def test_early_return_form_flagged(self, tmp_path):
        _one(
            self.run(
                tmp_path,
                """\
                class J:
                    def run(self, rows):
                        if self.batch:
                            self.counters.hash_key(len(rows))
                            return
                        for _ in rows:
                            self.counters.compare()
                """,
            ),
            "counter-parity",
        )

    def test_helper_charges_resolved(self, tmp_path):
        # insert() charges its hash inside a helper; insert_batch inline.
        assert self.run(
            tmp_path,
            """\
            class Index:
                def _bucket_for(self, key):
                    self.counters.hash_key()
                    return hash(key)

                def insert(self, key):
                    return self._bucket_for(key)

                def insert_batch(self, keys):
                    self.counters.hash_key(len(keys))
            """,
        ) == []

    def test_cross_module_charge_helper_resolved(self, tmp_path):
        # charge_heap_op lives on the base class in another module; its
        # charge set is declared in LintConfig.charge_helpers.
        assert self.run(
            tmp_path,
            """\
            class J:
                def sort(self, rows):
                    if self.batch:
                        self.counters.compare(len(rows))
                        self.counters.swap_tuples(len(rows))
                    else:
                        for _ in rows:
                            self.charge_heap_op(1)
            """,
        ) == []

    def test_sibling_method_parity_flagged(self, tmp_path):
        f = _one(
            self.run(
                tmp_path,
                """\
                class J:
                    def probe(self, rows):
                        for _ in rows:
                            self.counters.hash_key()
                            self.counters.compare()

                    def probe_batch(self, rows):
                        self.counters.hash_key(len(rows))
                """,
            ),
            "counter-parity",
        )
        assert "tuple twin" in f.message

    def test_out_of_scope_module_ignored(self, tmp_path):
        write_module(
            tmp_path,
            "repro/recovery/fixture.py",
            "def f(counters):\n    counters.compares()\n",
        )
        assert lint(tmp_path, [CounterDisciplineChecker()]) == []


# -- error taxonomy ---------------------------------------------------------


class TestErrorTaxonomy:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/storage/fixture.py", body)
        return lint(tmp_path, [ErrorTaxonomyChecker()])

    def test_raise_valueerror_flagged(self, tmp_path):
        f = _one(
            self.run(tmp_path, "def f():\n    raise ValueError('bad')\n"),
            "banned-raise",
        )
        assert "taxonomy" in f.message

    def test_raise_runtimeerror_flagged(self, tmp_path):
        _one(
            self.run(tmp_path, "def f():\n    raise RuntimeError('bad')\n"),
            "banned-raise",
        )

    def test_taxonomy_raise_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            "from repro.errors import ConfigurationError\n"
            "def f():\n"
            "    raise ConfigurationError('bad knob')\n",
        ) == []

    def test_protocol_builtins_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            "def f(k):\n"
            "    raise KeyError(k)\n"
            "def g():\n"
            "    raise NotImplementedError\n",
        ) == []

    def test_bare_except_flagged(self, tmp_path):
        f = _one(
            self.run(
                tmp_path,
                "def f():\n"
                "    try:\n"
                "        pass\n"
                "    except:\n"
                "        pass\n",
            ),
            "bare-except",
        )
        assert "CrashSignal" in f.message

    def test_typed_except_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except KeyError:\n"
            "        pass\n",
        ) == []

    def test_builtin_only_exception_class_flagged(self, tmp_path):
        f = _one(
            self.run(tmp_path, "class CacheError(Exception):\n    pass\n"),
            "exception-base",
        )
        assert "except ReproError" in f.message

    def test_taxonomy_exception_class_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            "from repro.errors import ReproError\n"
            "class CacheError(ReproError, ValueError):\n"
            "    pass\n",
        ) == []


# -- chaos seams ------------------------------------------------------------


class TestChaosSeams:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/recovery/fixture.py", body)
        return lint(tmp_path, [ChaosSeamChecker()])

    def test_missing_seam_attribute_flagged(self, tmp_path):
        f = _one(
            self.run(
                tmp_path,
                """\
                class LogDevice:
                    def __init__(self):
                        self.pages = []
                """,
            ),
            "chaos-seam",
        )
        assert "__init__" in f.message

    def test_io_method_without_seam_flagged(self, tmp_path):
        f = _one(
            self.run(
                tmp_path,
                """\
                class LogDevice:
                    def __init__(self, injector):
                        self.fault_injector = injector

                    def write_page(self, page):
                        return page
                """,
            ),
            "chaos-seam",
        )
        assert "write_page" in f.message

    def test_seam_referencing_method_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            """\
            class LogDevice:
                def __init__(self, injector):
                    self.fault_injector = injector

                def write_page(self, page):
                    self.fault_injector.before_write(page)
                    return page
            """,
        ) == []

    def test_delegating_method_inherits_coverage(self, tmp_path):
        assert self.run(
            tmp_path,
            """\
            class LogDevice:
                def __init__(self, injector):
                    self.fault_injector = injector

                def _write_one(self, page):
                    self.fault_injector.before_write(page)
                    return page

                def flush_all(self, pages):
                    return [self._write_one(p) for p in pages]
            """,
        ) == []

    def test_non_io_method_not_required(self, tmp_path):
        assert self.run(
            tmp_path,
            """\
            class LogDevice:
                def __init__(self, injector):
                    self.fault_injector = injector

                def page_count(self):
                    return 0
            """,
        ) == []

    def test_unlisted_class_ignored(self, tmp_path):
        assert self.run(
            tmp_path,
            """\
            class ScratchBuffer:
                def __init__(self):
                    self.pages = []

                def write_page(self, page):
                    return page
            """,
        ) == []


# -- lock order (static) ----------------------------------------------------


_ABBA = """\
    import threading

    class Alpha:
        def __init__(self, peer):
            self._a = threading.Lock()
            self.peer = peer

        def forward(self):
            with self._a:
                self.peer.backward_leaf()

        def forward_leaf(self):
            with self._a:
                pass

    class Beta:
        def __init__(self, peer):
            self._b = threading.Lock()
            self.peer = peer

        def backward(self):
            with self._b:
                self.peer.forward_leaf()

        def backward_leaf(self):
            with self._b:
                pass
"""


class TestLockOrderStatic:
    def test_abba_cycle_flagged(self, tmp_path):
        write_module(tmp_path, "repro/governor/fixture.py", _ABBA)
        f = _one(lint(tmp_path, [LockOrderChecker()]), "lock-order")
        assert "cycle" in f.message
        assert f.severity == ERROR

    def test_consistent_order_ok(self, tmp_path):
        write_module(
            tmp_path,
            "repro/governor/fixture.py",
            """\
            import threading

            class Alpha:
                def __init__(self, peer):
                    self._a = threading.Lock()
                    self.peer = peer

                def forward(self):
                    with self._a:
                        self.peer.backward_leaf()

            class Beta:
                def __init__(self):
                    self._b = threading.Lock()

                def backward_leaf(self):
                    with self._b:
                        pass
            """,
        )
        assert lint(tmp_path, [LockOrderChecker()]) == []

    def test_condition_aliases_its_lock(self, tmp_path):
        # Waiting on Condition(self._lock) must not count as a second lock.
        write_module(
            tmp_path,
            "repro/governor/fixture.py",
            """\
            import threading

            class Gate:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)

                def wait_ready(self):
                    with self._lock:
                        self._ready.wait()

                def signal(self):
                    with self._ready:
                        self._ready.notify_all()
            """,
        )
        assert lint(tmp_path, [LockOrderChecker()]) == []


# -- public API -------------------------------------------------------------


class TestPublicApi:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/storage/fixture.py", body)
        return lint(tmp_path, [PublicApiChecker()])

    def test_phantom_export_flagged(self, tmp_path):
        f = _one(
            self.run(tmp_path, "__all__ = ['missing']\n"),
            "public-api",
        )
        assert "never defines" in f.message
        assert f.severity == ERROR

    def test_unlisted_public_def_flagged(self, tmp_path):
        f = _one(
            self.run(
                tmp_path,
                "def exported():\n    pass\n\n__all__ = []\n",
            ),
            "public-api",
        )
        assert "not in __all__" in f.message

    def test_missing_all_is_warning(self, tmp_path):
        f = _one(
            self.run(tmp_path, "def exported():\n    pass\n"),
            "public-api",
        )
        assert f.severity == WARNING

    def test_consistent_module_ok(self, tmp_path):
        assert self.run(
            tmp_path,
            "def exported():\n"
            "    pass\n"
            "\n"
            "def _private():\n"
            "    pass\n"
            "\n"
            "__all__ = ['exported']\n",
        ) == []

    def test_main_module_exempt(self, tmp_path):
        write_module(
            tmp_path, "repro/tool/__main__.py", "def run():\n    pass\n"
        )
        assert lint(tmp_path, [PublicApiChecker()]) == []
