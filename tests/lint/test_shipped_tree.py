"""Meta-tests: the shipped tree itself must satisfy every rule.

This is the CI gate in miniature: ``python -m repro.lint`` over the real
``repro`` package must exit 0, and the real lock-acquisition graph must
be acyclic both statically (here) and dynamically (the conftest autouse
recorder across the whole suite).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.checkers.lock_order import LockOrderChecker
from repro.lint.engine import ERROR, collect_modules, run_lint
from repro.lint.checkers.lock_order import lock_graph_report

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_tree_is_clean():
    findings = run_lint()
    errors = [f.format() for f in findings if f.severity == ERROR]
    assert errors == [], "\n".join(errors)


def test_cli_exits_zero_on_shipped_tree():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["counts"]["errors"] == 0


def test_shipped_lock_graph_is_acyclic():
    assert run_lint(checkers=[LockOrderChecker()]) == []


def test_shipped_lock_graph_contains_governor_lock():
    modules, failures = collect_modules()
    assert failures == []
    report = lock_graph_report(modules)
    assert "repro.governor.governor.Governor._lock" in report
