"""The static lock graph must cover every runtime-observed edge.

The `lock_order_recorder` fixture in tests/conftest.py folds each
test's recorded edges into a session-wide accumulator; this test diffs
that set against the graph `repro.lint.ipa` extracts statically from
the source tree.  A runtime edge the analysis did not predict means
either a lock acquisition the summariser cannot see (fix ipa) or a
genuinely new nesting the checkers never reviewed (fix the code) —
both must fail the build.

Ordering caveat: pytest runs files alphabetically, so this file sees
the edges of every test that ran before it in the same process, not
necessarily the whole session.  The complete end-of-session check is
the CI `--lock-graph --runtime-graph` gate over the exported artifact
(REPRO_LOCK_GRAPH_OUT); this test is the fast in-suite tripwire.
"""

from __future__ import annotations

from repro.lint.engine import collect_modules
from repro.lint.ipa import analyze_project
from repro.lint.runtime import (
    canonical_lock_name,
    runtime_edges_missing_statically,
    session_edges,
)

import pytest


@pytest.fixture(scope="module")
def static_edges():
    modules, parse_failures = collect_modules([], jobs=2)
    assert parse_failures == []
    return analyze_project(modules).lock_edges()


class TestCanonicalisation:
    def test_last_two_segments(self):
        assert (
            canonical_lock_name("repro.governor.Governor._lock")
            == "Governor._lock"
        )
        assert canonical_lock_name("Governor._lock") == "Governor._lock"
        assert canonical_lock_name("_lock") == "_lock"

    def test_non_repro_edges_ignored(self):
        # Locks tracked by user code outside the package are not the
        # static graph's problem.
        missing = runtime_edges_missing_statically(
            static_edges=set(),
            runtime_edges={
                ("myapp.Thing._mu", "repro.governor.Governor._lock"),
                ("test.rwlock.stampede", "test.rwlock.timeout"),
            },
        )
        assert missing == []

    def test_self_edges_fold_away(self):
        # An rwlock's inner mutex carries its owner's name, so the
        # read->write upgrade shows up as a self-edge; not a nesting.
        missing = runtime_edges_missing_statically(
            static_edges=set(),
            runtime_edges={
                (
                    "repro.core.MainMemoryDatabase._catalog_rw",
                    "repro.core.MainMemoryDatabase._catalog_rw",
                )
            },
        )
        assert missing == []

    def test_genuinely_novel_edge_reported(self):
        missing = runtime_edges_missing_statically(
            static_edges={("Governor._lock", "PlanReuseCache._mu")},
            runtime_edges={
                (
                    "repro.planner.PlanReuseCache._mu",
                    "repro.governor.Governor._lock",
                )
            },
        )
        assert missing == [("PlanReuseCache._mu", "Governor._lock")]


class TestStaticCoversRuntime:
    def test_known_nestings_predicted(self, static_edges):
        # The three deliberate nestings in the shipped tree must be in
        # the static graph whether or not this run exercised them.
        assert ("Governor._lock", "PlanReuseCache._mu") in static_edges
        assert (
            "MainMemoryDatabase._catalog_rw",
            "Governor._lock",
        ) in static_edges
        assert (
            "SessionManager._sql_serial_mu",
            "MainMemoryDatabase._catalog_rw",
        ) in static_edges

    def test_no_runtime_edge_missing_statically(self, static_edges):
        observed = session_edges()
        missing = runtime_edges_missing_statically(
            static_edges, runtime_edges=observed
        )
        assert missing == [], (
            "runtime lock edges the static analysis did not predict: "
            "%r (observed %d edge(s) so far this session)"
            % (missing, len(observed))
        )
