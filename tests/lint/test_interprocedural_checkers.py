"""Good/bad fixtures for the four interprocedural checkers.

Each rule must catch its seeded bad fixture (the acceptance criterion:
a known blocking-call-under-lock, an unlocked shared write, a
read-lock mutation, a leaked-slot path) and stay silent on the good
twin that fixes it the way the shipped tree does.
"""

from __future__ import annotations

from repro.lint.checkers.blocking_lock import BlockingUnderLockChecker
from repro.lint.checkers.resource_lifecycle import ResourceLifecycleChecker
from repro.lint.checkers.rwlock_discipline import RwlockDisciplineChecker
from repro.lint.checkers.shared_write import UnlockedSharedWriteChecker
from repro.lint.engine import ERROR, WARNING

from tests.lint.conftest import lint, rules_of, write_module


# -- blocking-under-lock ----------------------------------------------------


class TestBlockingUnderLock:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/server/fixture.py", body)
        return lint(tmp_path, [BlockingUnderLockChecker()])

    def test_transitive_sleep_under_mutex_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._mu = threading.Lock()

                def tick(self):
                    with self._mu:
                        self._slow()

                def _slow(self):
                    time.sleep(0.1)
            """,
        )
        assert "blocking-under-lock" in rules_of(findings)
        assert any("time.sleep" in f.message for f in findings)
        assert all(f.severity == ERROR for f in findings)

    def test_sleep_outside_lock_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._mu = threading.Lock()

                def tick(self):
                    with self._mu:
                        self.n = 1
                    time.sleep(0.1)

                n = 0
            """,
        )
        assert findings == []

    def test_read_side_demotes_to_warning(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import time

            class Catalog:
                def __init__(self):
                    self._rw = ReadWriteLock("t")

                def read_op(self):
                    with self._rw.read_locked():
                        time.sleep(0.01)

                def write_op(self):
                    with self._rw.write_locked():
                        time.sleep(0.01)
            """,
        )
        by_severity = {f.severity for f in findings}
        assert by_severity == {WARNING, ERROR}
        warn = [f for f in findings if f.severity == WARNING]
        assert all("[read]" in f.message for f in warn)

    def test_condition_wait_releases_its_own_lock(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import threading

            class Gate:
                def __init__(self):
                    self._mu = threading.Lock()
                    self._cv = threading.Condition(self._mu)

                def wait_ready(self):
                    with self._mu:
                        self._cv.wait()
            """,
        )
        assert findings == []  # Condition(mu).wait() gives mu back

    def test_socket_io_under_lock_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import threading

            class Server:
                def __init__(self, sock):
                    self._mu = threading.Lock()
                    self.sock = sock

                def pump(self):
                    with self._mu:
                        self.sock.recv(4096)
            """,
        )
        assert rules_of(findings) == ["blocking-under-lock"]
        assert "socket recv" in findings[0].message


# -- unlocked-shared-write --------------------------------------------------


class TestUnlockedSharedWrite:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/server/fixture.py", body)
        return lint(tmp_path, [UnlockedSharedWriteChecker()])

    def test_bare_write_to_guarded_attr_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import threading

            class Stats:
                def __init__(self):
                    self._mu = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._mu:
                        self.count += 1

                def sloppy(self):
                    self.count = 0
            """,
        )
        assert rules_of(findings) == ["unlocked-shared-write"]
        assert "Stats.count" in findings[0].message

    def test_all_writes_locked_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import threading

            class Stats:
                def __init__(self):
                    self._mu = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._mu:
                        self.count += 1

                def reset(self):
                    with self._mu:
                        self.count = 0
            """,
        )
        assert findings == []

    def test_helper_only_called_under_lock_clean(self, tmp_path):
        # The must-entry context covers _add_locked: its only caller
        # holds the mutex, so the write inside it is guarded.
        findings = self.run(
            tmp_path,
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._mu = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._mu:
                        self._add_locked(n)

                def _add_locked(self, n):
                    self.total += n
            """,
        )
        assert findings == []

    def test_threadlocal_attr_exempt(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import threading

            class Counters:
                def __init__(self):
                    self._mu = threading.Lock()
                    self._local = threading.local()

                def reset(self):
                    with self._mu:
                        self._local = threading.local()

                def fast_reset(self):
                    self._local = threading.local()
            """,
        )
        assert findings == []  # per-thread structures are safe by design

    def test_read_side_does_not_count_as_guard(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Catalog:
                def __init__(self):
                    self._rw = ReadWriteLock("t")
                    self.version = 0

                def bump(self):
                    with self._rw.write_locked():
                        self.version += 1

                def sneaky(self):
                    with self._rw.read_locked():
                        self.version += 1
            """,
        )
        assert "unlocked-shared-write" in rules_of(findings)


# -- rwlock-discipline ------------------------------------------------------


class TestRwlockDiscipline:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/core/fixture.py", body)
        return lint(tmp_path, [RwlockDisciplineChecker()])

    def test_mutation_under_read_side_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Catalog:
                def __init__(self):
                    self._rw = ReadWriteLock("t")
                    self.version = 0

                def sneaky(self):
                    with self._rw.read_locked():
                        self.version += 1
            """,
        )
        assert rules_of(findings) == ["rwlock-discipline"]
        assert "read side" in findings[0].message
        assert findings[0].severity == ERROR

    def test_mutation_under_write_side_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Catalog:
                def __init__(self):
                    self._rw = ReadWriteLock("t")
                    self.version = 0

                def bump(self):
                    with self._rw.write_locked():
                        self.version += 1
            """,
        )
        assert findings == []

    def test_reentrant_read_inside_write_clean(self, tmp_path):
        # The writing thread may take the read side; the write side in
        # the context is the stronger guard.
        findings = self.run(
            tmp_path,
            """
            class Catalog:
                def __init__(self):
                    self._rw = ReadWriteLock("t")
                    self.version = 0

                def bump(self):
                    with self._rw.write_locked():
                        with self._rw.read_locked():
                            self.version += 1
            """,
        )
        assert findings == []

    def test_helper_called_under_read_side_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Catalog:
                def __init__(self):
                    self._rw = ReadWriteLock("t")
                    self.version = 0

                def lookup(self):
                    with self._rw.read_locked():
                        self._touch()

                def _touch(self):
                    self.version += 1
            """,
        )
        assert rules_of(findings) == ["rwlock-discipline"]


# -- resource-lifecycle -----------------------------------------------------


class TestResourceLifecycle:
    def run(self, tmp_path, body):
        write_module(tmp_path, "repro/governor/fixture.py", body)
        return lint(tmp_path, [ResourceLifecycleChecker()])

    def test_admit_without_finally_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Runner:
                def run(self, gov):
                    handle = gov.admit(1)
                    self.work()
                    gov.release(handle)
            """,
        )
        assert rules_of(findings) == ["resource-lifecycle"]
        assert "exception path" in findings[0].message

    def test_admit_with_finally_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Runner:
                def run(self, gov):
                    handle = gov.admit(1)
                    try:
                        self.work()
                    finally:
                        gov.release(handle)
            """,
        )
        assert findings == []

    def test_begin_wait_must_reach_end_wait_or_release(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Parker:
                def bad(self, gov, handle):
                    gov.begin_wait(handle)
                    self.park()
                    gov.end_wait(handle)

                def good(self, gov, handle):
                    gov.begin_wait(handle)
                    try:
                        self.park()
                    finally:
                        gov.end_wait(handle)
            """,
        )
        assert rules_of(findings) == ["resource-lifecycle"]
        assert "bad" in findings[0].message

    def test_spill_writer_leak_and_fix(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Spill:
                def bad(self, disk):
                    writer = SpillWriter(disk, ["f"], 8, None)
                    writer.write_many(0, [])
                    return writer.close()

                def good(self, disk):
                    writer = SpillWriter(disk, ["f"], 8, None)
                    try:
                        writer.write_many(0, [])
                    finally:
                        closed = writer.close()
                    return closed
            """,
        )
        assert rules_of(findings) == ["resource-lifecycle"]
        assert "bad" in findings[0].message

    def test_escaping_resource_is_callers_problem(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            class Spill:
                def open_for_caller(self, disk):
                    writer = SpillWriter(disk, ["f"], 8, None)
                    return writer

                def stash(self, disk):
                    self.writers.append(SpillWriter(disk, ["f"], 8, None))
            """,
        )
        assert findings == []  # ownership transferred: no local leak

    def test_explicit_lock_acquire_needs_finally(self, tmp_path):
        findings = self.run(
            tmp_path,
            """
            import threading

            class Gate:
                def __init__(self):
                    self._mu = threading.Lock()

                def bad(self):
                    self._mu.acquire()
                    self.work()
                    self._mu.release()

                def good(self):
                    self._mu.acquire()
                    try:
                        self.work()
                    finally:
                        self._mu.release()
            """,
        )
        assert rules_of(findings) == ["resource-lifecycle"]
        assert "bad" in findings[0].message
