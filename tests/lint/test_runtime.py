"""Dynamic lock-order tests: the runtime half of the lock-order rule.

The conftest autouse fixture installs a process-wide
:class:`~repro.lint.runtime.LockOrderRecorder` and asserts the observed
acquisition graph is acyclic at teardown.  These tests exercise the
recorder machinery itself: an artificial ABBA thread pair must produce a
cycle, and the real threaded paths (governor admission, group commit)
must stay acyclic while actually recording acquisitions.
"""

from __future__ import annotations

import threading

import pytest

from repro.governor import Governor, GovernorConfig
from repro.lint.runtime import (
    LockOrderRecorder,
    LockOrderViolation,
    TrackedLock,
    current_recorder,
    install_recorder,
    tracked_lock,
    uninstall_recorder,
)
from repro.recovery.log_manager import CommitPolicy, LogManager
from repro.recovery.records import BeginRecord, UpdateRecord
from repro.sim.clock import SimulatedClock
from repro.sim.events import EventQueue


def _run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestRecorder:
    def test_abba_thread_pair_flags_cycle(self):
        recorder = LockOrderRecorder()
        lock_a = TrackedLock("a", recorder)
        lock_b = TrackedLock("b", recorder)

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        _run_threads(forward, backward)
        cycle = recorder.find_cycle()
        assert cycle is not None and set(cycle) == {"a", "b"}
        with pytest.raises(LockOrderViolation) as exc:
            recorder.assert_acyclic()
        assert "a" in str(exc.value) and "b" in str(exc.value)

    def test_consistent_order_is_acyclic(self):
        recorder = LockOrderRecorder()
        lock_a = TrackedLock("a", recorder)
        lock_b = TrackedLock("b", recorder)

        def ordered():
            with lock_a:
                with lock_b:
                    pass

        _run_threads(ordered, ordered)
        assert recorder.find_cycle() is None
        assert recorder.edges() == {"a": {"b"}}
        recorder.assert_acyclic()

    def test_sequential_reacquisition_is_not_an_edge(self):
        # a then b released then a again must not record b -> a.
        recorder = LockOrderRecorder()
        lock_a = TrackedLock("a", recorder)
        lock_b = TrackedLock("b", recorder)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            pass
        with lock_a:
            pass
        assert recorder.edges() == {"a": {"b"}}
        recorder.assert_acyclic()

    def test_reset_clears_edges(self):
        recorder = LockOrderRecorder()
        lock_a = TrackedLock("a", recorder)
        with lock_a:
            pass
        assert recorder.acquisitions == 1
        recorder.reset()
        assert recorder.acquisitions == 0
        assert recorder.edges() == {}

    def test_tracked_lock_works_under_condition(self):
        recorder = LockOrderRecorder()
        lock = TrackedLock("gate", recorder)
        cond = threading.Condition(lock)
        released = []

        def waiter():
            with cond:
                while not released:
                    cond.wait(timeout=5)

        t = threading.Thread(target=waiter)
        t.start()
        with cond:
            released.append(True)
            cond.notify_all()
        t.join()
        assert recorder.acquisitions >= 2
        recorder.assert_acyclic()


class TestTrackedLockSeam:
    def test_plain_lock_without_recorder(self):
        previous = current_recorder()
        uninstall_recorder()
        try:
            lock = tracked_lock("x")
            assert not isinstance(lock, TrackedLock)
            with lock:
                pass
        finally:
            if previous is not None:
                install_recorder(previous)

    def test_tracked_lock_with_recorder(self):
        assert current_recorder() is not None  # conftest autouse fixture
        lock = tracked_lock("x")
        assert isinstance(lock, TrackedLock)


class TestThreadedPaths:
    def test_governor_contention_records_and_stays_acyclic(
        self, lock_order_recorder
    ):
        governor = Governor(
            GovernorConfig(
                max_concurrent=2, max_memory_pages=8, admission_timeout=5.0
            )
        )
        assert isinstance(governor._lock, TrackedLock)

        def run_queries():
            for _ in range(5):
                handle = governor.admit(pages=4)
                governor.release(handle)

        _run_threads(*[run_queries] * 4)
        assert governor.admitted == 20
        assert lock_order_recorder.acquisitions > 0
        lock_order_recorder.assert_acyclic()

    def test_group_commit_happy_path_acyclic(self, lock_order_recorder):
        queue = EventQueue(SimulatedClock())
        lm = LogManager(queue, policy=CommitPolicy.GROUP)
        for tid in range(1, 4):
            lm.append(BeginRecord(tid=tid))
            lm.append(UpdateRecord(tid=tid, record_id=0, old_value=0,
                                   new_value=tid))
            lm.append_commit(tid)
        queue.run_to_completion()
        lock_order_recorder.assert_acyclic()
