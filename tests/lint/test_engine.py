"""Engine-level tests: suppressions, output formats, baselines, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.error_taxonomy import ErrorTaxonomyChecker
from repro.lint.cli import main
from repro.lint.engine import (
    ERROR,
    WARNING,
    Finding,
    apply_baseline,
    format_json,
    format_text,
    load_baseline,
    run_lint,
    write_baseline,
)

from tests.lint.conftest import lint, rules_of, write_module

_CLOCK = """\
    import time

    def stamp():
        return time.time()
"""


def test_banned_call_is_reported(tmp_path):
    write_module(tmp_path, "repro/storage/fixture.py", _CLOCK)
    findings = lint(tmp_path, [DeterminismChecker()])
    assert rules_of(findings) == ["determinism"]
    assert findings[0].severity == ERROR
    assert findings[0].line == 4


def test_same_line_suppression(tmp_path):
    write_module(
        tmp_path,
        "repro/storage/fixture.py",
        """\
        import time

        def stamp():
            return time.time()  # repro-lint: disable=determinism
        """,
    )
    assert lint(tmp_path, [DeterminismChecker()]) == []


def test_standalone_suppression_covers_next_line(tmp_path):
    write_module(
        tmp_path,
        "repro/storage/fixture.py",
        """\
        import time

        def stamp():
            # repro-lint: disable=determinism
            return time.time()
        """,
    )
    assert lint(tmp_path, [DeterminismChecker()]) == []


def test_file_level_suppression(tmp_path):
    write_module(
        tmp_path,
        "repro/storage/fixture.py",
        """\
        # repro-lint: disable-file=determinism
        import time

        def stamp():
            return time.time()
        """,
    )
    assert lint(tmp_path, [DeterminismChecker()]) == []


def test_wildcard_suppression(tmp_path):
    write_module(
        tmp_path,
        "repro/storage/fixture.py",
        """\
        import time

        def stamp():
            return time.time()  # repro-lint: disable=*
        """,
    )
    assert lint(tmp_path, [DeterminismChecker()]) == []


def test_suppressing_a_different_rule_does_not_hide(tmp_path):
    write_module(
        tmp_path,
        "repro/storage/fixture.py",
        """\
        import time

        def stamp():
            return time.time()  # repro-lint: disable=public-api
        """,
    )
    assert rules_of(lint(tmp_path, [DeterminismChecker()])) == ["determinism"]


def test_rules_filter(tmp_path):
    write_module(
        tmp_path,
        "repro/storage/fixture.py",
        """\
        import time

        def bad():
            raise ValueError(time.time())
        """,
    )
    checkers = [DeterminismChecker(), ErrorTaxonomyChecker()]
    both = lint(tmp_path, checkers)
    assert sorted(rules_of(both)) == ["banned-raise", "determinism"]
    only = lint(tmp_path, checkers, rules={"banned-raise"})
    assert rules_of(only) == ["banned-raise"]


def test_parse_failure_is_a_finding_not_a_crash(tmp_path):
    write_module(tmp_path, "repro/storage/broken.py", "def f(:\n")
    findings = lint(tmp_path, [DeterminismChecker()])
    assert rules_of(findings) == ["parse"]
    assert findings[0].severity == ERROR


# -- output formats ---------------------------------------------------------


def test_json_output_schema(tmp_path):
    write_module(tmp_path, "repro/storage/fixture.py", _CLOCK)
    findings = lint(tmp_path, [DeterminismChecker()])
    payload = json.loads(format_json(findings))
    assert payload["version"] == 1
    assert payload["counts"] == {"errors": 1, "warnings": 0}
    (entry,) = payload["findings"]
    assert set(entry) == {
        "rule",
        "severity",
        "path",
        "line",
        "col",
        "message",
        "fingerprint",
    }
    assert entry["rule"] == "determinism"
    assert entry["severity"] == ERROR
    assert entry["line"] == 4


def test_text_output_has_location_and_summary(tmp_path):
    write_module(tmp_path, "repro/storage/fixture.py", _CLOCK)
    findings = lint(tmp_path, [DeterminismChecker()])
    text = format_text(findings)
    assert ":4:" in text
    assert "[determinism]" in text
    assert text.endswith("repro.lint: 1 error(s), 0 warning(s)")


# -- baselines --------------------------------------------------------------


def _finding(line: int = 1, message: str = "m") -> Finding:
    return Finding(
        rule="determinism",
        severity=ERROR,
        path="repro/storage/fixture.py",
        line=line,
        col=0,
        message=message,
    )


def test_fingerprint_ignores_line_numbers():
    assert _finding(line=4).fingerprint == _finding(line=400).fingerprint
    assert (
        _finding(message="a").fingerprint != _finding(message="b").fingerprint
    )


def test_baseline_roundtrip_demotes_to_warning(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [_finding()])
    baseline = load_baseline(baseline_path)
    assert baseline == {_finding().fingerprint}

    demoted = apply_baseline([_finding(line=99), _finding(message="new")],
                             baseline)
    assert [f.severity for f in demoted] == [WARNING, ERROR]
    assert "(baselined)" in demoted[0].message


# -- CLI exit codes ---------------------------------------------------------


def test_cli_exit_one_on_errors(tmp_path, capsys):
    write_module(tmp_path, "repro/storage/fixture.py", _CLOCK)
    assert main([str(tmp_path)]) == 1
    assert "[determinism]" in capsys.readouterr().out


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    write_module(
        tmp_path,
        "repro/storage/fixture.py",
        """\
        def stamp(clock):
            return clock.now()

        __all__ = ["stamp"]
        """,
    )
    assert main([str(tmp_path)]) == 0


def test_cli_baseline_flag_demotes(tmp_path, capsys):
    write_module(tmp_path, "repro/storage/fixture.py", _CLOCK)
    baseline = tmp_path / "baseline.json"
    assert main([str(tmp_path), "--write-baseline", str(baseline)]) == 0
    assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
    # --strict re-promotes the baselined warnings to failures.
    assert (
        main([str(tmp_path), "--baseline", str(baseline), "--strict"]) == 1
    )


def test_cli_json_format(tmp_path, capsys):
    write_module(tmp_path, "repro/storage/fixture.py", _CLOCK)
    assert main([str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["errors"] == 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "determinism",
        "counter-api",
        "counter-parity",
        "banned-raise",
        "bare-except",
        "exception-base",
        "chaos-seam",
        "lock-order",
        "public-api",
    ):
        assert rule in out


def test_run_lint_sorts_findings(tmp_path):
    write_module(
        tmp_path,
        "repro/storage/fixture.py",
        """\
        import time

        def late():
            return time.monotonic()

        def early():
            return time.time()
        """,
    )
    findings = run_lint(paths=[tmp_path], checkers=[DeterminismChecker()])
    assert [f.line for f in findings] == sorted(f.line for f in findings)
