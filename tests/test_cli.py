"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestTable1Command:
    def test_prints_grid(self, capsys):
        code, out = run(capsys, "table1")
        assert code == 0
        assert "Table 1" in out
        assert "%" in out
        # Every regenerated threshold is in the paper's band.
        for line in out.splitlines():
            if "%" in line:
                for token in line.split():
                    if token.endswith("%"):
                        assert 80.0 <= float(token[:-1]) <= 100.0


class TestFigure1Command:
    def test_prints_curves(self, capsys):
        code, out = run(capsys, "figure1", "--points", "6")
        assert code == 0
        assert "hybrid-hash" in out
        data_lines = [
            l for l in out.splitlines()
            if l and l[0].isdigit()
        ]
        assert len(data_lines) == 6


class TestThroughputCommand:
    def test_ladder_orders_correctly(self, capsys):
        code, out = run(capsys, "throughput", "--seconds", "1.0")
        assert code == 0
        values = {}
        for line in out.splitlines():
            parts = line.rsplit(None, 1)
            if len(parts) == 2 and parts[1].isdigit():
                values[parts[0].strip()] = int(parts[1])
        assert values["conventional, 1 device"] <= 120
        assert values["group commit, 1 device"] > 5 * values[
            "conventional, 1 device"
        ]


class TestRecoveryCommand:
    def test_checkpointing_reduces_scan(self, capsys):
        code, out = run(capsys, "recovery", "--seconds", "1.0")
        assert code == 0
        scanned = [
            int(line.split()[-3])
            for line in out.splitlines()
            if line.strip().startswith(("never", "2.0", "0.5"))
        ]
        assert len(scanned) == 3
        assert scanned[0] >= scanned[-1]


class TestSqlCommand:
    def test_query_roundtrip(self, capsys):
        code, out = run(
            capsys, "sql",
            "SELECT dname, COUNT(*) AS n FROM emp "
            "JOIN dept ON emp.dept = dept.dept_id GROUP BY dname",
        )
        assert code == 0
        assert "Aggregate" in out  # the plan
        assert "row(s)" in out

    def test_limit(self, capsys):
        code, out = run(capsys, "sql", "SELECT * FROM emp", "--limit", "3")
        assert code == 0
        assert "more rows" in out


def test_no_command_shows_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()
