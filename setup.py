"""Setuptools shim: enables legacy editable installs on machines without
the ``wheel`` package (PEP 660 editable wheels need it; ``setup.py
develop`` does not)."""

from setuptools import setup

setup()
