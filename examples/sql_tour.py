#!/usr/bin/env python3
"""A SQL tour of the main-memory database.

Loads a small order-processing schema, then walks through the SQL fragment
the engine supports -- point and prefix lookups (the paper's Section 2
example queries), planned hash joins, grouped aggregation -- showing the
optimizer's plan and the Table 2-modelled cost for each query.

Run:  python examples/sql_tour.py
"""

import random

from repro import DataType, MainMemoryDatabase

QUERIES = [
    # Section 2, case 1: exact-match lookup through the B+-tree.
    "SELECT emp_id, salary FROM emp WHERE name = 'Jones_a'",
    # Section 2, case 2: the "J*" prefix query, served by the sequence set.
    "SELECT name FROM emp WHERE name LIKE 'Jon%'",
    # Selection pushdown + cost-based hash join (Section 4).
    "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.dept_id "
    "WHERE salary > 70000",
    # One-pass hash aggregation (Section 3.9).
    "SELECT dname, COUNT(*) AS heads, AVG(salary) AS avg_pay FROM emp "
    "JOIN dept ON emp.dept = dept.dept_id GROUP BY dname",
    # Distinct projection = grouping identical tuples (Section 3.9).
    "SELECT DISTINCT dept FROM emp WHERE salary >= 40000",
]


def build_database() -> MainMemoryDatabase:
    db = MainMemoryDatabase(memory_pages=1000)
    db.create_table(
        "emp",
        [
            ("emp_id", DataType.INTEGER),
            ("name", DataType.STRING),
            ("salary", DataType.INTEGER),
            ("dept", DataType.INTEGER),
        ],
    )
    db.create_table(
        "dept", [("dept_id", DataType.INTEGER), ("dname", DataType.STRING)]
    )
    rng = random.Random(1984)
    surnames = ["Jones", "Smith", "Johnson", "Jackson", "Miller", "Davis"]
    for i in range(300):
        name = "%s_%s" % (surnames[i % len(surnames)],
                          "abcdefghij"[i % 10])
        db.insert("emp", (i, name, 25_000 + rng.randrange(60_000), i % 8))
    for i in range(8):
        db.insert("dept", (i, ("toys", "tools", "books", "games", "food",
                               "music", "sport", "art")[i]))
    db.create_index("emp", "name", kind="btree")
    db.create_index("emp", "emp_id", kind="hash")
    db.analyze()
    return db


def main() -> None:
    db = build_database()
    for sql in QUERIES:
        print("=" * 72)
        print("SQL> %s" % sql)
        print("-" * 72)
        print(db.sql_explain(sql))
        db.reset_counters()
        result = db.sql(sql)
        print("-" * 72)
        print("  ".join(result.schema.names))
        for i, row in enumerate(result):
            if i >= 6:
                print("... (%d more rows)" % (result.cardinality - 6))
                break
            print("  ".join(str(v) for v in row))
        print(
            "%d row(s) -- %s" % (result.cardinality, db.cost_report("query"))
        )
        print()


if __name__ == "__main__":
    main()
