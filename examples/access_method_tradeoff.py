#!/usr/bin/env python3
"""Section 2, live: when does an AVL tree beat a B+-tree?

Three views of the same question:

1. the paper's closed-form Table 1 -- breakeven residence fractions over a
   (Z, Y) grid;
2. the cost curves for one setting, showing the crossover point;
3. a measurement: real AVL and B+-tree lookups replayed through a buffer
   pool at several memory sizes, counting actual page faults.

Run:  python examples/access_method_tradeoff.py
"""

import random

from repro.access.avl import AVLTree
from repro.access.btree import BPlusTree
from repro.cost.access_model import (
    AccessMethodParameters,
    avl_random_cost,
    avl_storage_pages,
    btree_random_cost,
    btree_storage_pages,
    random_breakeven_fraction,
    table1,
)
from repro.storage.buffer import BufferPool, ReplacementPolicy

N_KEYS = 5_000


def closed_form() -> None:
    print("Table 1 -- minimum memory-resident fraction for AVL to win:")
    print("  %4s %5s %10s %14s" % ("Z", "Y", "random", "sequential"))
    for row in table1(z_values=(10, 20, 30), y_values=(0.5, 0.75, 1.0)):
        print(
            "  %4.0f %5.2f %9.1f%% %13.1f%%"
            % (row["Z"], row["Y"], 100 * row["random_H"],
               100 * row["sequential_H"])
        )
    print(
        "\n  -> the paper's headline: B+-trees remain preferred unless "
        "80-90%+\n     of the structure is memory resident.\n"
    )


def cost_curves() -> None:
    params = AccessMethodParameters(z=20, y=0.75)
    s = avl_storage_pages(params)
    s_prime = btree_storage_pages(params)
    h_star = random_breakeven_fraction(params)
    print(
        "Cost per random lookup (Z=20, Y=0.75; AVL=%d pages, B+=%d pages):"
        % (s, s_prime)
    )
    print("  %8s %12s %12s %8s" % ("|M|/S", "AVL cost", "B+ cost", "winner"))
    for fraction in (0.0, 0.25, 0.5, 0.75, 0.9, h_star, 1.0):
        m = fraction * s
        avl = avl_random_cost(params, m)
        bt = btree_random_cost(params, m)
        tag = "breakeven" if abs(fraction - h_star) < 1e-9 else (
            "AVL" if avl < bt else "B+-tree"
        )
        print("  %7.1f%% %12.1f %12.1f %9s" % (100 * fraction, avl, bt, tag))
    print()


def measured_faults() -> None:
    avl = AVLTree()
    btree = BPlusTree(order=32)
    keys = list(range(N_KEYS))
    random.Random(1).shuffle(keys)
    for k in keys:
        avl.insert(k, k)
        btree.insert(k, k)
    internal, leaves = btree.node_counts()
    avl_pages = avl.node_count
    bt_pages = internal + leaves

    print(
        "Measured page faults per lookup (%d keys; AVL spreads over %d "
        "pages, B+-tree over %d):" % (N_KEYS, avl_pages, bt_pages)
    )
    print("  %8s %14s %14s" % ("|M|/S", "AVL faults", "B+ faults"))
    rng = random.Random(2)
    for fraction in (0.25, 0.5, 0.75, 0.95):
        results = []
        for tree, total in ((avl, avl_pages), (btree, bt_pages)):
            pool = BufferPool(
                max(1, int(fraction * total)),
                policy=ReplacementPolicy.RANDOM,
                seed=3,
            )
            # Warm the pool, then measure steady state.
            for _ in range(4000):
                for page in tree.path_pages(rng.randrange(N_KEYS)):
                    pool.access(page)
            pool.reset_stats()
            probes = 4000
            for _ in range(probes):
                for page in tree.path_pages(rng.randrange(N_KEYS)):
                    pool.access(page)
            results.append(pool.faults / probes)
        print("  %7.0f%% %14.2f %14.2f" % (100 * fraction, *results))
    print(
        "\n  -> steady state: the AVL tree keeps faulting until nearly all"
        "\n     of its page-per-node structure is resident, while the"
        "\n     B+-tree's few hot pages cache almost immediately."
    )


def main() -> None:
    closed_form()
    cost_curves()
    measured_faults()


if __name__ == "__main__":
    main()
