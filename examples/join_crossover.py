#!/usr/bin/env python3
"""Figure 1, live: run the four join algorithms and plot their crossovers.

Executes sort-merge, simple hash, GRACE hash, and hybrid hash on a real
(scaled-down) Table 2 instance at a sweep of memory grants, weights the
measured operation counters with the paper's machine constants, and renders
the resulting curves as an ASCII chart -- the shape of the paper's Figure 1
regenerated from *executed* joins rather than formulas.

Run:  python examples/join_crossover.py
"""

import math

from repro.cost.parameters import CostParameters
from repro.join import ALL_JOINS, JoinSpec
from repro.workload.generator import join_inputs

ALGOS = ["sort-merge", "simple-hash", "grace-hash", "hybrid-hash"]
MARKS = {"sort-merge": "S", "simple-hash": "s", "grace-hash": "G",
         "hybrid-hash": "H"}
RATIOS = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0]


def build():
    r, s = join_inputs(4000, 4000, key_domain=80_000, page_bytes=320)
    params = CostParameters(
        r_pages=r.page_count,
        s_pages=s.page_count,
        r_tuples_per_page=r.tuples_per_page,
        s_tuples_per_page=s.tuples_per_page,
    )
    return r, s, params


def measure(r, s, params, memory_pages):
    costs = {}
    for name in ALGOS:
        spec = JoinSpec(
            r=r, s=s, r_field="rkey", s_field="skey",
            memory_pages=memory_pages, params=params,
        )
        try:
            result = ALL_JOINS[name]().join(spec)
        except ValueError:
            costs[name] = None  # below the two-pass floor
            continue
        costs[name] = result.modelled_seconds
    return costs


def ascii_chart(rows):
    """Log-scale scatter of cost vs memory ratio."""
    values = [v for _, c in rows for v in c.values() if v]
    lo, hi = math.log10(min(values)), math.log10(max(values))
    height = 16
    grid = [[" "] * (len(rows) * 8) for _ in range(height + 1)]
    for col, (_, costs) in enumerate(rows):
        for name in ALGOS:
            v = costs[name]
            if not v:
                continue
            y = round((math.log10(v) - lo) / (hi - lo) * height)
            x = col * 8 + 3
            cell = grid[height - y][x]
            grid[height - y][x] = "*" if cell not in (" ", MARKS[name]) else MARKS[name]
    lines = ["".join(row).rstrip() for row in grid]
    axis = "".join(("%-8s" % ("%.2f" % ratio)) for ratio, _ in rows)
    return "\n".join(lines) + "\n" + " " * 3 + axis.rstrip() + "   |M|/(|R|F)"


def main() -> None:
    r, s, params = build()
    print(
        "Join inputs: |R|=%d pages, |S|=%d pages, %d tuples each; "
        "two-pass floor at %d pages of memory.\n"
        % (params.r_pages, params.s_pages, params.r_tuples,
           params.minimum_memory_pages)
    )

    rows = []
    print("%-8s %12s %12s %12s %12s" % ("ratio", *ALGOS))
    for ratio in RATIOS:
        memory = max(
            params.minimum_memory_pages, params.memory_for_ratio(ratio)
        )
        costs = measure(r, s, params, memory)
        rows.append((ratio, costs))
        print(
            "%-8.2f %12s %12s %12s %12s"
            % (
                ratio,
                *(
                    ("%.2f s" % costs[a]) if costs[a] else "(floor)"
                    for a in ALGOS
                ),
            )
        )

    print("\nModelled seconds (log scale)  [S]=sort-merge [s]=simple [G]=GRACE [H]=hybrid\n")
    print(ascii_chart(rows))

    print(
        "\nReading the chart: hybrid [H] tracks or beats everything; "
        "simple hash [s] is ruinous on the left but converges with hybrid "
        "at 1.0; GRACE [G] is flat; sort-merge [S] never wins -- the "
        "paper's Figure 1."
    )


if __name__ == "__main__":
    main()
