#!/usr/bin/env python3
"""Quickstart: a main-memory relational database in a few lines.

Builds a small employee/department database, creates the paper's four index
kinds, runs the Section 2 example queries, a planned join + aggregation,
and prints the Table 2-weighted cost report for the session.

Run:  python examples/quickstart.py
"""

from repro import DataType, MainMemoryDatabase
from repro.operators import AggregateFunction, AggregateSpec, Comparison
from repro.planner import JoinClause, Query


def main() -> None:
    db = MainMemoryDatabase(memory_pages=1000)

    # ---- DDL ------------------------------------------------------------
    db.create_table(
        "emp",
        [
            ("emp_id", DataType.INTEGER),
            ("name", DataType.STRING),
            ("salary", DataType.INTEGER),
            ("dept", DataType.INTEGER),
        ],
    )
    db.create_table(
        "dept",
        [("dept_id", DataType.INTEGER), ("dname", DataType.STRING)],
    )

    # ---- data -----------------------------------------------------------
    people = [
        (1, "Jones", 52_000, 1),
        (2, "Smith", 61_000, 1),
        (3, "Johnson", 48_000, 2),
        (4, "Jackson", 75_000, 2),
        (5, "Miller", 55_000, 3),
        (6, "James", 58_000, 3),
        (7, "Joyce", 66_000, 1),
    ]
    db.insert_many("emp", people)
    db.insert_many("dept", [(1, "toys"), (2, "tools"), (3, "books")])
    db.analyze()

    # ---- the Section 2 access methods -----------------------------------
    db.create_index("emp", "name", kind="btree")     # ordered + point
    db.create_index("emp", "salary", kind="avl")     # the MMDB candidate
    db.create_index("emp", "dept", kind="hash")      # equality only
    db.create_index("emp", "emp_id", kind="paged-binary")  # footnote 1

    # The paper's first example: retrieve (emp.salary) where emp.name = "Jones"
    jones = db.lookup("emp", "name", "Jones")
    print("emp.name = 'Jones' ->", jones)

    # Ordered access via the AVL index: salaries between 50k and 60k.
    mid = db.range_lookup("emp", "salary", 50_000, 60_000)
    print("salary in [50k, 60k] ->", [row[1] for row in mid])

    # ---- a planned query -------------------------------------------------
    query = Query(
        tables=["emp", "dept"],
        predicates=[("emp", Comparison("salary", ">", 50_000))],
        joins=[JoinClause("emp", "dept", "dept", "dept_id")],
        group_by=["dname"],
        aggregates=[
            AggregateSpec(AggregateFunction.COUNT, alias="heads"),
            AggregateSpec(AggregateFunction.AVG, "salary", "avg_salary"),
        ],
    )
    # On toy inputs the cost-based choice is nested loops (21 comparisons
    # beat building any hash table); at scale it flips to hybrid hash --
    # see examples/join_crossover.py and the planner benchmark.
    print("\nPlan (Section 4: cost-based, selections pushed down):")
    print(db.explain(query))

    print("\nWell-paid headcount by department:")
    for dname, heads, avg_salary in sorted(db.execute(query)):
        print("  %-6s  %d people, avg $%.0f" % (dname, heads, avg_salary))

    # ---- instrumentation --------------------------------------------------
    print("\nSession cost under the paper's Table 2 machine constants:")
    print(" ", db.cost_report("quickstart"))


if __name__ == "__main__":
    main()
