#!/usr/bin/env python3
"""Section 6's closing conjecture, demonstrated: versioning for analytics.

A transfer workload hammers the bank at ~1000 tps while a long-running
analytics job repeatedly audits a wide slice of the accounts.  Run twice:

* with the audit as an ordinary *locking* transaction (shared locks held
  across its whole simulated lifetime), writers visibly queue behind it;
* with the audit on a *multi-version snapshot*, writers never notice, and
  every audit still sees a perfectly consistent balance sheet.

Run:  python examples/versioned_analytics.py
"""

import random

from repro.recovery import (
    CommitPolicy,
    DatabaseState,
    LogManager,
    TransactionEngine,
    VersionManager,
)
from repro.sim import EventQueue, SimulatedClock

ACCOUNTS = 500
HORIZON = 3.0
AUDIT_WIDTH = ACCOUNTS  # full balance sheet: its total is invariant
CHUNK, THINK = 25, 0.002  # audit paging: 25 reads, then 2 ms of "CPU"


def run(mode: str):
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(ACCOUNTS, records_per_page=64, initial_value=100)
    log = LogManager(queue, policy=CommitPolicy.GROUP)
    engine = TransactionEngine(state, queue, log)
    versions = VersionManager(engine) if mode == "versioned" else None

    rng = random.Random(7)
    t = 0.0
    while t < HORIZON:
        a, b = sorted(rng.sample(range(ACCOUNTS), 2))
        amt = rng.randrange(1, 20)
        engine.submit_at(
            t,
            [
                ("write", a, lambda v, amt=amt: v - amt),
                ("write", b, lambda v, amt=amt: v + amt),
            ],
        )
        t += 0.001

    audits = []

    def start_audit():
        ids = list(range(AUDIT_WIDTH))
        if mode == "versioned":
            snap = versions.snapshot()
            acc = []

            def page(offset=0):
                acc.extend(snap.read_many(ids[offset:offset + CHUNK]))
                if offset + CHUNK < len(ids):
                    queue.schedule(THINK, lambda: page(offset + CHUNK))
                else:
                    audits.append(sum(acc))
                    snap.release()
                    versions.prune()

            page()
        else:
            script = []
            for offset in range(0, len(ids), CHUNK):
                script.extend(("read", i) for i in ids[offset:offset + CHUNK])
                script.append(("pause", THINK))
            engine.submit(script)

    at = 0.05
    while at < HORIZON:
        queue.schedule_at(at, start_audit)
        at += 0.05

    queue.run_until(HORIZON)
    writers = [x for x in engine.committed if len(x.script) == 2]
    latency = (
        1000 * sum(w.latency for w in writers) / len(writers) if writers else 0
    )
    return len(writers) / HORIZON, latency, audits


def main() -> None:
    print("Transfer stream at ~1000 tps; %d-account audits every 50 ms.\n"
          % AUDIT_WIDTH)
    for mode in ("locking", "versioned"):
        tps, latency, audits = run(mode)
        print("%-9s audits: writers %4.0f tps, mean commit latency %5.1f ms"
              % (mode, tps, latency))
        if mode == "versioned":
            balanced = all(total == ACCOUNTS * 100 for total in audits)
            print("          %d snapshot audits, all balanced: %s"
                  % (len(audits), balanced))
    print(
        "\nThe paper's closing line, measured: lock-free versioned reads"
        "\nkeep writers at full speed while every audit stays consistent."
    )


if __name__ == "__main__":
    main()
