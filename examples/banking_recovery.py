#!/usr/bin/env python3
"""Section 5, live: a bank that survives a crash.

Runs Jim Gray's debit/credit workload against the recovery engine under
group commit with a fuzzy checkpointer, crashes the "machine" mid-flight,
recovers from the snapshot + durable log, and audits the books:

* every durably committed transfer is reflected exactly once;
* every in-flight transaction has vanished without a trace;
* total money is conserved.

Before the crash demo it prints the Section 5.2 throughput ladder on a
small workload, sweeping the commit-policy knobs (policy, log devices,
group-commit latency bound, new-value compression) to show what each
buys.  Recovery then runs both serially and with four parallel redo
workers (Section 5.5) and compares.

Run:  python examples/banking_recovery.py
"""

from repro.recovery import (
    Checkpointer,
    CommitPolicy,
    DatabaseState,
    DiskSnapshot,
    LogManager,
    TransactionEngine,
    crash,
    recover,
)
from repro.recovery.restart import replay_committed
from repro.sim import EventQueue, SimulatedClock
from repro.workload.banking import BankingWorkload

ACCOUNTS = 1_000
OPENING_BALANCE = 100
CRASH_AT = 2.5  # seconds of simulated time

#: The commit-policy knobs the ladder sweeps: (label, LogManager kwargs).
LADDER = [
    ("conventional (force per commit)",
     dict(policy=CommitPolicy.CONVENTIONAL)),
    ("group commit", dict(policy=CommitPolicy.GROUP)),
    ("group commit, 50 ms latency bound",
     dict(policy=CommitPolicy.GROUP, max_commit_delay=0.05)),
    ("group commit, 2 log devices",
     dict(policy=CommitPolicy.GROUP, devices=2, pipeline=True)),
    ("stable memory", dict(policy=CommitPolicy.STABLE)),
    ("stable memory + compression",
     dict(policy=CommitPolicy.STABLE, compress=True)),
]


def tps_ladder(horizon: float = 1.0, arrival_rate: int = 2000) -> None:
    """Run a small fixed workload under each knob setting and print tps."""
    print("Commit-policy ladder (%d arrivals/s for %.1fs simulated):" %
          (arrival_rate, horizon))
    for label, knobs in LADDER:
        queue = EventQueue(SimulatedClock())
        state = DatabaseState(ACCOUNTS, records_per_page=64,
                              initial_value=OPENING_BALANCE)
        log = LogManager(queue, **knobs)
        engine = TransactionEngine(state, queue, log)
        bank = BankingWorkload(ACCOUNTS, transfer_fraction=1.0,
                               deposit_fraction=0.0, seed=17)
        t = 0.0
        while t < horizon:
            script, _ = bank.next_script()
            engine.submit_at(t, script)
            t += 1.0 / arrival_rate
        queue.run_until(horizon)
        stats = log.group_commit_stats()
        print("  %-36s %6.0f tps  (%.1f commits/group, latency %.1f ms)" % (
            label,
            engine.throughput(horizon),
            stats["mean_commits_per_group"],
            engine.mean_commit_latency() * 1000,
        ))
    print()


def main() -> None:
    tps_ladder()

    queue = EventQueue(SimulatedClock())
    state = DatabaseState(ACCOUNTS, records_per_page=64,
                          initial_value=OPENING_BALANCE)
    # The knobs under demo: group commit with a 50 ms latency bound.
    log = LogManager(queue, policy=CommitPolicy.GROUP, max_commit_delay=0.05)
    engine = TransactionEngine(state, queue, log)
    snapshot = DiskSnapshot()
    checkpointer = Checkpointer(engine, snapshot, interval=0.5)
    checkpointer.start()

    bank = BankingWorkload(ACCOUNTS, initial_balance=OPENING_BALANCE,
                           transfer_fraction=0.8, deposit_fraction=0.15,
                           seed=42)
    committed_deposits = []
    deposits_by_tid = {}

    t = 0.0
    submitted = 0
    while t < CRASH_AT + 1.0:  # keep arrivals coming right through the crash
        script, injected = bank.next_script()
        tid_holder = []

        def submit(script=script, injected=injected):
            txn = engine.submit(script)
            deposits_by_tid[txn.tid] = injected

        queue.schedule_at(t, submit, label="txn arrival")
        submitted += 1
        t += 0.0012

    print("Running %d transactions toward a crash at t=%.1fs..." %
          (submitted, CRASH_AT))
    queue.run_until(CRASH_AT)

    print("  committed so far : %d" % engine.committed_count)
    print("  throughput       : %.0f tps" % engine.throughput(CRASH_AT))
    print("  checkpoint sweeps: %d (%d page copies on disk)" %
          (checkpointer.sweeps, snapshot.page_count))
    live_total = state.total_balance()
    print("  in-memory total  : $%d (includes uncommitted flux)" % live_total)

    # ---- the lights go out -------------------------------------------------
    print("\n*** CRASH at t=%.1fs ***\n" % queue.clock.now)
    crash_state = crash(engine, checkpointer)

    outcome = recover(crash_state, initial_value=OPENING_BALANCE)
    print("Recovery (serial):")
    print("  snapshot pages reloaded : %d" % outcome.pages_reloaded)
    print("  log records scanned     : %d" % outcome.log_records_scanned)
    print("  updates redone          : %d" % outcome.updates_redone)
    print("  updates undone          : %d" % outcome.updates_undone)
    print("  simulated recovery time : %.3f s" % outcome.seconds)

    parallel = recover(crash_state, initial_value=OPENING_BALANCE, workers=4)
    assert parallel.state.values == outcome.state.values
    print("Recovery (4 parallel redo workers, identical image):")
    print("  simulated recovery time : %.3f s  (%.1fx faster)" % (
        parallel.seconds, outcome.seconds / parallel.seconds))

    # ---- audit ---------------------------------------------------------------
    oracle = replay_committed(crash_state, initial_value=OPENING_BALANCE)
    assert outcome.state.values == oracle.values, "recovery diverged!"

    committed_injection = sum(
        deposits_by_tid.get(tid, 0) for tid in outcome.committed_tids
    )
    expected_total = ACCOUNTS * OPENING_BALANCE + committed_injection
    actual_total = outcome.state.total_balance()
    print("\nAudit:")
    print("  durably committed txns  : %d" % len(outcome.committed_tids))
    print("  committed deposits      : $%d" % committed_injection)
    print("  expected total          : $%d" % expected_total)
    print("  recovered total         : $%d" % actual_total)
    assert actual_total == expected_total, "the books do not balance!"
    print("\nThe books balance: committed work survived, in-flight work "
          "vanished cleanly.")


if __name__ == "__main__":
    main()
