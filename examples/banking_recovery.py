#!/usr/bin/env python3
"""Section 5, live: a bank that survives a crash.

Runs Jim Gray's debit/credit workload against the recovery engine under
group commit with a fuzzy checkpointer, crashes the "machine" mid-flight,
recovers from the snapshot + durable log, and audits the books:

* every durably committed transfer is reflected exactly once;
* every in-flight transaction has vanished without a trace;
* total money is conserved.

Run:  python examples/banking_recovery.py
"""

from repro.recovery import (
    Checkpointer,
    CommitPolicy,
    DatabaseState,
    DiskSnapshot,
    LogManager,
    TransactionEngine,
    crash,
    recover,
)
from repro.recovery.restart import replay_committed
from repro.sim import EventQueue, SimulatedClock
from repro.workload.banking import BankingWorkload

ACCOUNTS = 1_000
OPENING_BALANCE = 100
CRASH_AT = 2.5  # seconds of simulated time


def main() -> None:
    queue = EventQueue(SimulatedClock())
    state = DatabaseState(ACCOUNTS, records_per_page=64,
                          initial_value=OPENING_BALANCE)
    log = LogManager(queue, policy=CommitPolicy.GROUP)
    engine = TransactionEngine(state, queue, log)
    snapshot = DiskSnapshot()
    checkpointer = Checkpointer(engine, snapshot, interval=0.5)
    checkpointer.start()

    bank = BankingWorkload(ACCOUNTS, initial_balance=OPENING_BALANCE,
                           transfer_fraction=0.8, deposit_fraction=0.15,
                           seed=42)
    committed_deposits = []
    deposits_by_tid = {}

    t = 0.0
    submitted = 0
    while t < CRASH_AT + 1.0:  # keep arrivals coming right through the crash
        script, injected = bank.next_script()
        tid_holder = []

        def submit(script=script, injected=injected):
            txn = engine.submit(script)
            deposits_by_tid[txn.tid] = injected

        queue.schedule_at(t, submit, label="txn arrival")
        submitted += 1
        t += 0.0012

    print("Running %d transactions toward a crash at t=%.1fs..." %
          (submitted, CRASH_AT))
    queue.run_until(CRASH_AT)

    print("  committed so far : %d" % engine.committed_count)
    print("  throughput       : %.0f tps" % engine.throughput(CRASH_AT))
    print("  checkpoint sweeps: %d (%d page copies on disk)" %
          (checkpointer.sweeps, snapshot.page_count))
    live_total = state.total_balance()
    print("  in-memory total  : $%d (includes uncommitted flux)" % live_total)

    # ---- the lights go out -------------------------------------------------
    print("\n*** CRASH at t=%.1fs ***\n" % queue.clock.now)
    crash_state = crash(engine, checkpointer)

    outcome = recover(crash_state, initial_value=OPENING_BALANCE)
    print("Recovery:")
    print("  snapshot pages reloaded : %d" % outcome.pages_reloaded)
    print("  log records scanned     : %d" % outcome.log_records_scanned)
    print("  updates redone          : %d" % outcome.updates_redone)
    print("  updates undone          : %d" % outcome.updates_undone)
    print("  simulated recovery time : %.3f s" % outcome.seconds)

    # ---- audit ---------------------------------------------------------------
    oracle = replay_committed(crash_state, initial_value=OPENING_BALANCE)
    assert outcome.state.values == oracle.values, "recovery diverged!"

    committed_injection = sum(
        deposits_by_tid.get(tid, 0) for tid in outcome.committed_tids
    )
    expected_total = ACCOUNTS * OPENING_BALANCE + committed_injection
    actual_total = outcome.state.total_balance()
    print("\nAudit:")
    print("  durably committed txns  : %d" % len(outcome.committed_tids))
    print("  committed deposits      : $%d" % committed_injection)
    print("  expected total          : $%d" % expected_total)
    print("  recovered total         : $%d" % actual_total)
    assert actual_total == expected_total, "the books do not balance!"
    print("\nThe books balance: committed work survived, in-flight work "
          "vanished cleanly.")


if __name__ == "__main__":
    main()
